//! **rsn-serve** — `rsnd`, a std-only analysis daemon for robust-RSN.
//!
//! The crate turns [`robust_rsn::AnalysisSession`] into a long-lived service:
//! a dependency-free HTTP/1.1 + JSON server that accepts networks in the
//! textual `.rsn` format and serves criticality analyses and hardening
//! solves to many concurrent clients.
//!
//! ```text
//! POST /v1/analyze   criticality summary      (JSON JobRequest → CriticalitySummary)
//! POST /v1/harden    hardening Pareto front   (JSON JobRequest → HardenResponse)
//! POST /v1/validate  fault-simulation report  (JSON JobRequest → ValidationReport)
//! POST /v1/whatif    incremental what-if      (JSON JobRequest → WhatifResponse)
//! GET  /metrics      plaintext serving metrics
//! GET  /healthz      liveness probe
//! ```
//!
//! Every non-200 response shares one structured body:
//! `{"error":{"code":...,"message":...,"retryable":...}}` ([`wire::WireError`]),
//! with `retryable` true exactly for 408 deadline and 503 overload answers.
//!
//! `/v1/whatif` is answered from a warm [`robust_rsn::Workspace`] held in an
//! LRU keyed by a content hash of the network text and spec knobs
//! ([`wscache`]), so a burst of what-if queries against one network parses
//! and fully sweeps it once, then pays only incremental deltas.
//!
//! Architecture (one module each):
//!
//! * [`http`] — the minimal HTTP/1.1 subset (one request per connection);
//! * [`wire`] — the JSON contract, request resolution and job execution;
//! * [`queue`] — the bounded submission queue behind the `503` backpressure;
//! * [`cache`] — the LRU result cache keyed by a content hash of the job;
//! * [`wscache`] — the LRU of warm `Workspace`s behind `/v1/whatif`;
//! * [`metrics`] — atomic counters/histograms and their plaintext rendering;
//! * [`server`] — acceptor, worker pool, panic isolation + worker respawn,
//!   graceful shutdown;
//! * [`client`] — the std-only blocking client (`rsn_tool submit`) with
//!   `Retry-After`-honoring backoff for 503s;
//! * [`chaos`] — the deterministic fault-injection schedule (`--chaos`);
//! * [`signal`] — SIGTERM/ctrl-c to shutdown-flag plumbing for the binary.
//!
//! Determinism: responses are byte-identical for a given resolved job — see
//! [`wire`] — which is what makes the result cache transparent.
//!
//! # Example
//!
//! ```
//! use rsn_serve::{Client, Endpoint, JobRequest, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! let addr = server.local_addr();
//! let handle = server.shutdown_handle();
//! let thread = std::thread::spawn(move || server.run());
//!
//! let client = Client::new(addr.to_string());
//! let job = JobRequest {
//!     network: "network demo { sib s { seg a len=4 instrument(kind=sensor); } }".into(),
//!     ..Default::default()
//! };
//! let response = client.submit(Endpoint::Analyze, &job)?;
//! assert_eq!(response.status, 200);
//! assert!(response.body.contains("total_damage"));
//!
//! handle.shutdown();
//! thread.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod signal;
pub mod wire;
pub mod wscache;

pub use chaos::Chaos;
pub use client::{parse_error, Client, ClientError, RetryPolicy, SubmitOutcome};
pub use metrics::Metrics;
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use wire::{
    Endpoint, ErrorResponse, HardenResponse, JobRequest, ResolvedJob, WhatifOp, WhatifResponse,
    WireError,
};
pub use wscache::WorkspaceCache;
