//! **rsn-serve** — `rsnd`, a std-only analysis daemon for robust-RSN.
//!
//! The crate turns [`robust_rsn::AnalysisSession`] into a long-lived service:
//! a dependency-free HTTP/1.1 + JSON server that accepts networks in the
//! textual `.rsn` format and serves criticality analyses and hardening
//! solves to many concurrent clients.
//!
//! ```text
//! POST /v1/analyze   criticality summary      (JSON JobRequest → CriticalitySummary)
//! POST /v1/harden    hardening Pareto front   (JSON JobRequest → HardenResponse)
//! POST /v1/validate  fault-simulation report  (JSON JobRequest → ValidationReport)
//! POST /v1/whatif    incremental what-if      (JSON JobRequest → WhatifResponse)
//! PUT  /v1/networks  register a network       (JSON JobRequest → NetworkPutResponse)
//! GET  /v1/networks  list registered networks (→ NetworkListResponse)
//! GET  /metrics      plaintext serving metrics
//! GET  /healthz      liveness probe
//! ```
//!
//! Jobs may carry inline `network` text or a `network_hash` referencing a
//! network previously registered via `PUT /v1/networks` — the hash is the
//! canonical content hash of the built scan graph
//! ([`robust_rsn::canonical_network_hash`]), so it is stable across
//! whitespace, reprinting, and daemon restarts. With `--store PATH` the
//! daemon persists both the registry and the result cache in a WAL-backed
//! [`rsn_store::Store`], surviving `kill -9` and answering warm results
//! byte-identically after a restart.
//!
//! Every non-200 response shares one structured body:
//! `{"error":{"code":...,"message":...,"retryable":...}}` ([`wire::WireError`]),
//! with `retryable` true exactly for 408 deadline and 503 overload answers.
//!
//! `/v1/whatif` is answered from a warm [`robust_rsn::Workspace`] held in an
//! LRU keyed by a content hash of the network text and spec knobs
//! ([`wscache`]), so a burst of what-if queries against one network parses
//! and fully sweeps it once, then pays only incremental deltas.
//!
//! Architecture (one module each):
//!
//! * [`http`] — the minimal HTTP/1.1 subset, including the incremental
//!   keep-alive/pipelining parser the event loop uses;
//! * [`wire`] — the JSON contract, request resolution and job execution;
//! * [`queue`] — the bounded submission queue behind the `503` backpressure;
//! * [`cache`] — the LRU result cache keyed by the canonical network hash;
//! * [`wscache`] — the LRU of warm `Workspace`s behind `/v1/whatif`;
//! * [`registry`] — the content-addressed network registry (parse once per
//!   network, persist across restarts);
//! * [`metrics`] — atomic counters/histograms and their plaintext rendering;
//! * [`poll`] — the `poll(2)` readiness shim the event loop stands on;
//! * [`server`] — the non-blocking event-loop front end, worker pool, panic
//!   isolation + worker respawn, graceful shutdown;
//! * [`client`] — the std-only blocking client (`rsn_tool submit`) with
//!   `Retry-After`-honoring backoff for 503s;
//! * [`chaos`] — the deterministic fault-injection schedule (`--chaos`);
//! * [`loadgen`] — the replayable open/closed-loop load generator behind
//!   `rsn_tool loadgen` (seeded job mixes, keep-alive connections,
//!   p50/p99/p999 against an SLO);
//! * [`signal`] — SIGTERM/ctrl-c to shutdown-flag plumbing for the binary.
//!
//! Determinism: responses are byte-identical for a given resolved job — see
//! [`wire`] — which is what makes the result cache transparent.
//!
//! # Example
//!
//! ```
//! use rsn_serve::{Client, Endpoint, JobRequest, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! let addr = server.local_addr();
//! let handle = server.shutdown_handle();
//! let thread = std::thread::spawn(move || server.run());
//!
//! let client = Client::new(addr.to_string());
//! let job = JobRequest {
//!     network: Some("network demo { sib s { seg a len=4 instrument(kind=sensor); } }".into()),
//!     ..Default::default()
//! };
//! let response = client.submit(Endpoint::Analyze, &job)?;
//! assert_eq!(response.status, 200);
//! assert!(response.body.contains("total_damage"));
//!
//! handle.shutdown();
//! thread.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod poll;
pub mod queue;
pub mod registry;
pub mod server;
pub mod signal;
pub mod wire;
pub mod wscache;

pub use chaos::Chaos;
pub use client::{parse_error, Client, ClientError, RetryPolicy, SubmitOutcome};
pub use loadgen::{LoadReport, LoadgenConfig, Mix};
pub use metrics::Metrics;
pub use registry::Registry;
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use wire::{
    merge_analyze_shards, AnalyzeExactDoubleResponse, AnalyzeShardResponse, Endpoint,
    ErrorResponse, HardenResponse, JobRequest, NetworkListResponse, NetworkPutResponse,
    ParsedNetwork, ResolvedJob, ShardModeDamage, WhatifOp, WhatifResponse, WireError,
};
pub use wscache::WorkspaceCache;
