//! The `rsnd` serving loop: acceptor, bounded queue, worker pool, cache,
//! graceful shutdown.
//!
//! One acceptor thread reads and parses each request (loopback-fast,
//! timeout-guarded) and either answers it inline (`/healthz`, `/metrics`) or
//! enqueues it on the [`BoundedQueue`]. A fixed pool of workers — sized by
//! [`robust_rsn::par::Parallelism`], so `RSN_THREADS` governs the daemon like
//! every other entry point — drains the queue, consults the LRU result
//! cache, and executes jobs via [`wire::execute`]. When the queue is full the
//! acceptor answers `503` with a `Retry-After` header instead of queueing
//! hidden latency. On shutdown the acceptor stops, the queue closes, and
//! workers drain every job already accepted before exiting.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use robust_rsn::{Parallelism, ShardPanic};

use crate::cache::LruCache;
use crate::chaos::{Chaos, Site};
use crate::http::{self, Request, Response};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};
use crate::wire::{self, Deadline, Endpoint, JobError, ResolvedJob};
use crate::wscache::WorkspaceCache;

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker-pool size (resolved like every analysis loop: explicit count
    /// or the `RSN_THREADS` environment variable).
    pub workers: Parallelism,
    /// Capacity of the submission queue; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Capacity of the LRU result cache; `0` disables caching.
    pub cache_capacity: usize,
    /// Capacity of the warm-[`Workspace`](robust_rsn::Workspace) LRU that
    /// backs `/v1/whatif`; `0` disables it (every what-if re-parses and
    /// re-sweeps). Workspaces hold the parsed network plus all per-mode
    /// reach caches, so this is sized far below `cache_capacity`.
    pub workspace_cache_capacity: usize,
    /// Thread count used *inside* each job's analysis. Sequential by default
    /// so concurrent jobs do not oversubscribe the worker pool.
    pub analysis_threads: Parallelism,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Upper bound on any requested `timeout_ms`.
    pub max_timeout_ms: u64,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Value of the `Retry-After` header on `503` responses, in seconds.
    pub retry_after_secs: u64,
    /// Socket read/write timeout for request parsing and response writing.
    pub io_timeout: Duration,
    /// Artificial delay before each job is processed. A chaos/test knob used
    /// to saturate the queue deterministically; `None` in production.
    pub worker_delay: Option<Duration>,
    /// Deterministic fault-injection schedule (`--chaos` / `RSND_CHAOS`);
    /// `None` in production — no schedule, no overhead.
    pub chaos: Option<Arc<Chaos>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: Parallelism::default(),
            queue_capacity: 64,
            cache_capacity: 128,
            workspace_cache_capacity: 8,
            analysis_threads: Parallelism::sequential(),
            default_timeout_ms: 30_000,
            max_timeout_ms: 120_000,
            max_body_bytes: 8 * 1024 * 1024,
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(10),
            worker_delay: None,
            chaos: None,
        }
    }
}

/// A clonable handle that asks a running [`Server`] to shut down gracefully.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown: stop accepting, drain in-flight jobs, exit.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A queued job: the parsed submission plus its connection and timing.
struct Job {
    stream: TcpStream,
    resolved: ResolvedJob,
    accepted_at: Instant,
    deadline: Deadline,
}

/// The analysis daemon. Bind with [`Server::bind`], then call
/// [`Server::run`] (blocking) from the thread that owns it.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            config,
            metrics: Arc::new(Metrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared metrics registry.
    #[must_use]
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that triggers graceful shutdown from another thread (or a
    /// signal handler's polling loop).
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: Arc::clone(&self.shutdown) }
    }

    /// Serves until shutdown is requested, then drains in-flight jobs and
    /// returns.
    ///
    /// Worker threads are supervised: job execution is isolated with
    /// `catch_unwind` (a panicking job answers a structured 500), and a
    /// worker that nevertheless dies is respawned by the accept loop
    /// (counted in `rsnd_workers_respawned_total`), so the daemon never
    /// loses serving capacity to a single bad job.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures; per-connection errors are
    /// answered over HTTP and never abort the loop.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let queue = Arc::new(BoundedQueue::<Job>::new(self.config.queue_capacity));
        let cache = Arc::new(Mutex::new(LruCache::new(self.config.cache_capacity)));
        let workspaces =
            Arc::new(Mutex::new(WorkspaceCache::new(self.config.workspace_cache_capacity)));

        let spawn_worker = |i: usize| {
            let queue = Arc::clone(&queue);
            let cache = Arc::clone(&cache);
            let workspaces = Arc::clone(&workspaces);
            let metrics = Arc::clone(&self.metrics);
            let config = self.config.clone();
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::Builder::new()
                .name(format!("rsnd-worker-{i}"))
                .spawn(move || {
                    worker_loop(&queue, &cache, &workspaces, &metrics, &config, &shutdown);
                })
                .expect("spawn worker thread")
        };
        let mut workers: Vec<JoinHandle<()>> =
            (0..self.config.workers.threads()).map(spawn_worker).collect();
        let mut next_worker_id = workers.len();

        while !self.shutdown.load(Ordering::SeqCst) {
            // Supervise: replace any worker that died (e.g. a panic that
            // escaped job isolation) so capacity never degrades silently.
            for worker in &mut workers {
                if worker.is_finished() {
                    let dead = std::mem::replace(worker, spawn_worker(next_worker_id));
                    next_worker_id += 1;
                    let _ = dead.join();
                    self.metrics.record_worker_respawned();
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.handle_connection(stream, &queue);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }

        // Graceful shutdown: no new submissions, drain what was accepted.
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        // A worker that died during shutdown may have left accepted jobs
        // queued; drain them inline so the graceful contract holds. (The
        // chaos worker-abort site is disabled once shutdown is flagged.)
        worker_loop(&queue, &cache, &workspaces, &self.metrics, &self.config, &self.shutdown);
        Ok(())
    }

    /// Reads one request and either answers it inline or enqueues it.
    fn handle_connection(&self, mut stream: TcpStream, queue: &Arc<BoundedQueue<Job>>) {
        let accepted_at = Instant::now();
        let _ = stream.set_read_timeout(Some(self.config.io_timeout));
        let _ = stream.set_write_timeout(Some(self.config.io_timeout));
        if let Some(chaos) = &self.config.chaos {
            if chaos.fires(Site::SlowRead) {
                std::thread::sleep(chaos.delay());
            }
        }

        let request = match http::read_request(&mut stream, self.config.max_body_bytes) {
            Ok(request) => request,
            Err(e) => {
                let err = JobError::new(e.status, "bad_request", e.message);
                self.respond(&mut stream, &Response::json(err.status, err.body()));
                return;
            }
        };

        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                self.metrics.record_request("healthz");
                self.respond(&mut stream, &Response::text(200, "ok\n".to_string()));
            }
            ("GET", "/metrics") => {
                self.metrics.record_request("metrics");
                self.respond(&mut stream, &Response::text(200, self.metrics.render()));
            }
            ("POST", "/v1/analyze") => {
                self.submit(stream, &request, Endpoint::Analyze, accepted_at, queue);
            }
            ("POST", "/v1/harden") => {
                self.submit(stream, &request, Endpoint::Harden, accepted_at, queue);
            }
            ("POST", "/v1/validate") => {
                self.submit(stream, &request, Endpoint::Validate, accepted_at, queue);
            }
            ("POST", "/v1/whatif") => {
                self.submit(stream, &request, Endpoint::Whatif, accepted_at, queue);
            }
            (
                _,
                "/healthz" | "/metrics" | "/v1/analyze" | "/v1/harden" | "/v1/validate"
                | "/v1/whatif",
            ) => {
                let err = JobError::new(405, "method_not_allowed", "wrong method for this path");
                self.respond(&mut stream, &Response::json(err.status, err.body()));
            }
            (_, path) => {
                let err = JobError::new(404, "not_found", format!("unknown path {path:?}"));
                self.respond(&mut stream, &Response::json(err.status, err.body()));
            }
        }
    }

    /// Parses, resolves and enqueues a submission, answering `503` +
    /// `Retry-After` when the queue is full.
    fn submit(
        &self,
        mut stream: TcpStream,
        request: &Request,
        endpoint: Endpoint,
        accepted_at: Instant,
        queue: &Arc<BoundedQueue<Job>>,
    ) {
        self.metrics.record_request(endpoint.as_str());
        let resolved = std::str::from_utf8(&request.body)
            .map_err(|_| JobError::new(400, "bad_request", "body is not valid utf-8"))
            .and_then(wire::parse_request)
            .and_then(|job_request| {
                let timeout = job_request
                    .timeout_ms
                    .unwrap_or(self.config.default_timeout_ms)
                    .min(self.config.max_timeout_ms);
                wire::resolve(endpoint, &job_request).map(|resolved| (resolved, timeout))
            });
        let (resolved, timeout_ms) = match resolved {
            Ok(pair) => pair,
            Err(err) => {
                self.respond(&mut stream, &Response::json(err.status, err.body()));
                return;
            }
        };

        let job = Job {
            stream,
            resolved,
            accepted_at,
            deadline: Deadline::after(Duration::from_millis(timeout_ms)),
        };
        match queue.try_push(job) {
            Ok(depth) => self.metrics.set_queue_depth(depth),
            Err(PushError::Full(mut job) | PushError::Closed(mut job)) => {
                self.metrics.record_queue_rejected();
                let err = JobError::new(
                    503,
                    "overloaded",
                    format!(
                        "submission queue is full ({} jobs); retry after {}s",
                        queue.capacity(),
                        self.config.retry_after_secs
                    ),
                );
                let response = Response::json(err.status, err.body())
                    .with_header("Retry-After", &self.config.retry_after_secs.to_string());
                self.respond(&mut job.stream, &response);
            }
        }
    }

    fn respond(&self, stream: &mut TcpStream, response: &Response) {
        if let Some(chaos) = &self.config.chaos {
            if chaos.fires(Site::SlowWrite) {
                std::thread::sleep(chaos.delay());
            }
        }
        self.metrics.record_response(response.status);
        // The peer may be gone; that is its problem, not the daemon's.
        let _ = http::write_response(stream, response);
    }
}

/// One worker: drain the queue until it is closed and empty. Job execution
/// is panic-isolated: a panicking job answers a structured 500
/// `internal_error` and the worker keeps serving.
fn worker_loop(
    queue: &BoundedQueue<Job>,
    cache: &Mutex<LruCache>,
    workspaces: &Mutex<WorkspaceCache>,
    metrics: &Metrics,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    loop {
        // The chaos worker-abort site kills the thread *between* jobs (no
        // job is ever lost) and only before shutdown, so the final drain
        // always completes. The escaped panic is what the acceptor's
        // respawn supervision exists for.
        if let Some(chaos) = &config.chaos {
            if !shutdown.load(Ordering::SeqCst) && chaos.fires(Site::WorkerAbort) {
                panic!("chaos: worker aborted between jobs");
            }
            if chaos.fires(Site::QueueStall) {
                std::thread::sleep(chaos.delay());
            }
        }
        let Some(mut job) = queue.pop() else { break };
        metrics.set_queue_depth(queue.len());
        if let Some(delay) = config.worker_delay {
            std::thread::sleep(delay);
        }
        let endpoint = job.resolved.endpoint.as_str();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_job(&job.resolved, &job.deadline, cache, workspaces, metrics, config)
        }));
        let response = match result {
            Ok(response) => response,
            Err(payload) => {
                metrics.record_job_panicked();
                let err = JobError::new(
                    500,
                    "internal_error",
                    format!(
                        "worker panicked while executing the job: {}",
                        ShardPanic::from_payload(payload).message()
                    ),
                );
                Response::json(err.status, err.body())
            }
        };
        if response.status == 408 {
            metrics.record_job_cancelled();
        }
        metrics.record_response(response.status);
        let _ = http::write_response(&mut job.stream, &response);
        metrics.record_latency(endpoint, job.accepted_at.elapsed());
    }
}

/// Cache lookup, execution, cache fill. Cache locks recover from poisoning
/// (`PoisonError::into_inner`): the LRU's invariants hold across a panic
/// observed mid-`get`/`put`, and losing a cached body at worst costs a
/// recomputation.
fn run_job(
    resolved: &ResolvedJob,
    deadline: &Deadline,
    cache: &Mutex<LruCache>,
    workspaces: &Mutex<WorkspaceCache>,
    metrics: &Metrics,
    config: &ServerConfig,
) -> Response {
    if let Err(err) = deadline.check("queued") {
        return Response::json(err.status, err.body());
    }
    if let Some(chaos) = &config.chaos {
        if chaos.fires(Site::JobPanic) {
            panic!("chaos: injected job panic");
        }
    }
    let key = resolved.canonical_key();
    if let Some(body) = cache.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
        metrics.record_cache_hit();
        return Response::json(200, body).with_header("X-Cache", "hit");
    }
    metrics.record_cache_miss();
    let executed = if resolved.endpoint == Endpoint::Whatif {
        run_whatif(resolved, deadline, workspaces, metrics, config)
    } else {
        wire::execute(resolved, config.analysis_threads, deadline)
    };
    match executed {
        Ok(body) => {
            cache.lock().unwrap_or_else(PoisonError::into_inner).put(&key, body.clone());
            Response::json(200, body).with_header("X-Cache", "miss")
        }
        Err(err) => Response::json(err.status, err.body()),
    }
}

/// A what-if job: answered from a warm [`Workspace`] when one is cached for
/// the job's network/spec, otherwise built once and cached for the next
/// request. The workspace lock is per-workspace — what-ifs against
/// *different* networks run concurrently; only same-network what-ifs
/// serialize (each is a masking/arithmetic delta, so that is cheap).
///
/// Edits commit atomically and `wire::execute_whatif` undoes its delta
/// before answering, so the shared workspace returns to pristine state on
/// every path short of a daemon bug — and on that path (a 500, or a panic
/// observed as lock poisoning) the entry is dropped rather than reused.
fn run_whatif(
    resolved: &ResolvedJob,
    deadline: &Deadline,
    workspaces: &Mutex<WorkspaceCache>,
    metrics: &Metrics,
    config: &ServerConfig,
) -> Result<String, JobError> {
    let ws_key = resolved.workspace_key();
    // A poisoned per-workspace lock means a previous holder panicked
    // mid-edit; treat the entry as absent and rebuild over it.
    let cached = workspaces
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&ws_key)
        .filter(|ws| !ws.is_poisoned());
    let shared = match cached {
        Some(ws) => {
            metrics.record_workspace_cache_hit();
            ws
        }
        None => {
            metrics.record_workspace_cache_miss();
            let ws = wire::build_workspace(resolved, config.analysis_threads, deadline)?;
            let arc = Arc::new(Mutex::new(ws));
            workspaces
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .put(&ws_key, Arc::clone(&arc));
            arc
        }
    };
    let result = {
        let mut workspace = shared.lock().unwrap_or_else(PoisonError::into_inner);
        wire::execute_whatif(resolved, &mut workspace, deadline)
    };
    if result.as_ref().is_err_and(|e| e.status == 500) {
        workspaces.lock().unwrap_or_else(PoisonError::into_inner).remove(&ws_key);
    }
    result
}
