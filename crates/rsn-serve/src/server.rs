//! The `rsnd` serving loop: a non-blocking event-loop front end over a
//! bounded queue and worker pool, with caches, a persistent store, and
//! graceful shutdown.
//!
//! One event-loop thread owns every socket. It multiplexes tens of
//! thousands of keep-alive connections over [`poll`](crate::poll), parses
//! pipelined HTTP/1.1 requests incrementally
//! ([`http::parse_request_bytes`]), answers `/healthz`, `/metrics` and
//! `GET /v1/networks` inline, and enqueues analysis jobs on the
//! [`BoundedQueue`]. A fixed pool of workers — sized by
//! [`robust_rsn::par::Parallelism`], so `RSN_THREADS` governs the daemon
//! like every other entry point — drains the queue, consults the LRU result
//! cache (and the persistent [`Store`], when configured), and executes jobs
//! via [`wire::execute_with`]. Finished responses travel back to the event
//! loop over a completion channel (a mutex-guarded vector plus a loopback
//! waker byte) and are written in request order per connection, so
//! pipelined clients always see answers in the order they asked.
//!
//! Backpressure is explicit end to end: a full queue answers `503` +
//! `Retry-After` instead of queueing hidden latency, and a connection with
//! [`ServerConfig::max_inflight_per_conn`] unanswered pipelined requests is
//! simply not parsed further until responses drain. On shutdown the loop
//! stops accepting, the queue closes, workers drain every job already
//! accepted, and the loop keeps pumping until every drained response has
//! been flushed to its socket.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use robust_rsn::{Parallelism, ShardPanic};
use rsn_model::format::StreamingParser;
use rsn_store::{Namespace, Store, StoreError};

use crate::cache::LruCache;
use crate::chaos::{Chaos, Site};
use crate::http::{self, Request, Response};
use crate::metrics::Metrics;
use crate::poll::{self, PollFd, READABLE, WRITABLE};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::Registry;
use crate::wire::{self, Deadline, Endpoint, JobError, NetworkListResponse, ResolvedJob};
use crate::wscache::WorkspaceCache;

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker-pool size (resolved like every analysis loop: explicit count
    /// or the `RSN_THREADS` environment variable).
    pub workers: Parallelism,
    /// Capacity of the submission queue; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Capacity of the LRU result cache; `0` disables caching.
    pub cache_capacity: usize,
    /// Capacity of the warm-[`Workspace`](robust_rsn::Workspace) LRU that
    /// backs `/v1/whatif`; `0` disables it (every what-if re-parses and
    /// re-sweeps). Workspaces hold the parsed network plus all per-mode
    /// reach caches, so this is sized far below `cache_capacity`.
    pub workspace_cache_capacity: usize,
    /// Thread count used *inside* each job's analysis. Sequential by default
    /// so concurrent jobs do not oversubscribe the worker pool.
    pub analysis_threads: Parallelism,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Upper bound on any requested `timeout_ms`.
    pub max_timeout_ms: u64,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Value of the `Retry-After` header on `503` responses, in seconds.
    pub retry_after_secs: u64,
    /// How long a connection may sit mid-request (a partial head or body
    /// buffered, nothing parseable yet) before it is answered `408` and
    /// closed.
    pub io_timeout: Duration,
    /// How long an *idle* keep-alive connection (no buffered bytes, nothing
    /// in flight) is kept open before being dropped.
    pub idle_timeout: Duration,
    /// Upper bound on concurrently open client connections; past it the
    /// listener is simply not polled, leaving new peers in the accept
    /// backlog until a slot frees up.
    pub max_conns: usize,
    /// Per-connection bound on unanswered pipelined requests; a connection
    /// at the bound is not parsed further until responses drain.
    pub max_inflight_per_conn: usize,
    /// Path of the persistent [`Store`] backing the network registry and
    /// the durable result cache; `None` (the default) keeps the daemon
    /// fully in-memory.
    pub store_path: Option<PathBuf>,
    /// Artificial delay before each job is processed. A chaos/test knob used
    /// to saturate the queue deterministically; `None` in production.
    pub worker_delay: Option<Duration>,
    /// Deterministic fault-injection schedule (`--chaos` / `RSND_CHAOS`);
    /// `None` in production — no schedule, no overhead.
    pub chaos: Option<Arc<Chaos>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: Parallelism::default(),
            queue_capacity: 64,
            cache_capacity: 128,
            workspace_cache_capacity: 8,
            analysis_threads: Parallelism::sequential(),
            default_timeout_ms: 30_000,
            max_timeout_ms: 120_000,
            max_body_bytes: 8 * 1024 * 1024,
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            max_conns: 30_000,
            max_inflight_per_conn: 32,
            store_path: None,
            worker_delay: None,
            chaos: None,
        }
    }
}

/// A clonable handle that asks a running [`Server`] to shut down gracefully.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown: stop accepting, drain in-flight jobs, exit.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A queued job: the parsed submission plus the connection/sequence slot its
/// response must land in.
struct Job {
    conn_id: u64,
    seq: u64,
    resolved: ResolvedJob,
    accepted_at: Instant,
    deadline: Deadline,
}

/// A finished job on its way back to the event loop.
struct Completion {
    conn_id: u64,
    seq: u64,
    endpoint: &'static str,
    accepted_at: Instant,
    response: Response,
}

/// The worker→loop completion channel: a mutex-guarded vector plus a
/// loopback socket the workers poke one byte into so the loop's `poll` wakes
/// immediately instead of on its housekeeping tick.
struct Completions {
    items: Mutex<Vec<Completion>>,
    waker: TcpStream,
}

impl Completions {
    fn push(&self, completion: Completion) {
        self.items.lock().unwrap_or_else(PoisonError::into_inner).push(completion);
        // A full waker buffer means a wake-up is already pending: ignore.
        let _ = (&self.waker).write(&[1]);
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.items.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Everything a worker thread needs, bundled for cheap cloning.
struct WorkerCtx {
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<Mutex<LruCache>>,
    workspaces: Arc<Mutex<WorkspaceCache>>,
    registry: Arc<Registry>,
    store: Option<Arc<Store>>,
    metrics: Arc<Metrics>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    completions: Arc<Completions>,
}

impl Clone for WorkerCtx {
    fn clone(&self) -> Self {
        Self {
            queue: Arc::clone(&self.queue),
            cache: Arc::clone(&self.cache),
            workspaces: Arc::clone(&self.workspaces),
            registry: Arc::clone(&self.registry),
            store: self.store.clone(),
            metrics: Arc::clone(&self.metrics),
            config: self.config.clone(),
            shutdown: Arc::clone(&self.shutdown),
            completions: Arc::clone(&self.completions),
        }
    }
}

/// A `PUT /v1/networks` upload being streamed through the push parser:
/// body chunks feed [`StreamingParser`] as they arrive off the socket and
/// are dropped, so peak memory is bounded by the parsed [`Structure`]
/// (plus one read buffer), not the body size — uploads may exceed
/// [`ServerConfig::max_body_bytes`].
///
/// [`Structure`]: rsn_model::Structure
struct StreamingUpload {
    /// The incremental parser; dropped on the first parse error.
    parser: Option<StreamingParser>,
    /// The first parse error, answered once the body is drained (the
    /// remaining bytes must still be consumed to keep the stream framed).
    error: Option<rsn_model::format::ParseError>,
    /// Declared body bytes still expected.
    remaining: u64,
    /// The response slot reserved for this request.
    seq: u64,
}

/// One client connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Sequence number assigned to the next parsed request.
    next_seq: u64,
    /// Sequence number of the next response to append to `write_buf`.
    next_write_seq: u64,
    /// Encoded responses that finished out of order, waiting their turn.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Once set, the connection closes after the response for this sequence
    /// number is flushed; no further requests are parsed.
    close_at: Option<u64>,
    /// Peer half-closed its write side; no more reads.
    eof: bool,
    /// When a partial (unparseable-yet) request started accumulating.
    partial_since: Option<Instant>,
    /// A streaming `PUT /v1/networks` body in flight; while set, incoming
    /// bytes feed the parser instead of the request buffer.
    streaming: Option<StreamingUpload>,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            next_seq: 0,
            next_write_seq: 0,
            ready: BTreeMap::new(),
            close_at: None,
            eof: false,
            partial_since: None,
            streaming: None,
            last_activity: now,
        }
    }

    /// Requests parsed but not yet answered into `write_buf`.
    fn outstanding(&self) -> u64 {
        self.next_seq - self.next_write_seq
    }

    /// Slots the response for `seq` and pumps every now-in-order response
    /// into the write buffer.
    fn push_response(&mut self, seq: u64, response: &Response, now: Instant) {
        let keep_alive = self.close_at != Some(seq);
        self.ready.insert(seq, http::encode_response(response, keep_alive));
        while let Some(bytes) = self.ready.remove(&self.next_write_seq) {
            self.write_buf.extend_from_slice(&bytes);
            self.next_write_seq += 1;
        }
        self.last_activity = now;
    }

    /// Whether everything owed to the peer has been handed to the kernel.
    fn flushed(&self) -> bool {
        self.write_buf.is_empty() && self.ready.is_empty() && self.outstanding() == 0
    }

    /// Whether the connection is done and should be dropped.
    fn finished(&self) -> bool {
        if !self.flushed() {
            return false;
        }
        match self.close_at {
            Some(close_at) => self.next_write_seq > close_at,
            None => self.eof,
        }
    }
}

/// What a poll-set slot refers to.
enum Token {
    Listener,
    Waker,
    Conn(u64),
}

/// The analysis daemon. Bind with [`Server::bind`], then call
/// [`Server::run`] (blocking) from the thread that owns it.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    store: Option<Arc<Store>>,
    registry: Arc<Registry>,
}

/// Maps a [`StoreError`] into the `io::Error` `bind` reports.
fn store_to_io(err: StoreError) -> io::Error {
    match err {
        StoreError::Io(e) => e,
        StoreError::Corrupt(msg) => io::Error::new(io::ErrorKind::InvalidData, msg),
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(source: &T) -> i32 {
    source.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_source: &T) -> i32 {
    0
}

/// A connected loopback pair: (blocking-ish writer for workers, non-blocking
/// reader for the event loop's poll set).
fn waker_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

impl Server {
    /// Binds the listener and, when [`ServerConfig::store_path`] is set,
    /// opens (or creates) the persistent store — replaying its WAL and
    /// loading every registered network before the first request is
    /// accepted. Recovery counts land in `rsnd_store_wal_replays_total` /
    /// `rsnd_store_corrupt_records_total`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; store-open failures surface as
    /// `InvalidData` (corrupt store) or the underlying IO error.
    pub fn bind(config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let store = match &config.store_path {
            Some(path) => {
                let (store, report) = Store::open(path).map_err(store_to_io)?;
                metrics.add_store_wal_replays(report.wal_records_replayed);
                metrics.add_store_corrupt_records(report.corrupt_records);
                Some(Arc::new(store))
            }
            None => None,
        };
        let registry =
            Arc::new(Registry::open(store.clone(), Arc::clone(&metrics)).map_err(store_to_io)?);
        Ok(Self {
            listener,
            local_addr,
            config,
            metrics,
            shutdown: Arc::new(AtomicBool::new(false)),
            store,
            registry,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared metrics registry.
    #[must_use]
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The content-addressed network registry (shared with the workers).
    #[must_use]
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// A handle that triggers graceful shutdown from another thread (or a
    /// signal handler's polling loop).
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: Arc::clone(&self.shutdown) }
    }

    /// Serves until shutdown is requested, then drains in-flight jobs
    /// (flushing every drained response) and returns.
    ///
    /// Worker threads are supervised: job execution is isolated with
    /// `catch_unwind` (a panicking job answers a structured 500), and a
    /// worker that nevertheless dies is respawned by the event loop
    /// (counted in `rsnd_workers_respawned_total`), so the daemon never
    /// loses serving capacity to a single bad job.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures; per-connection errors are
    /// answered over HTTP and never abort the loop.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (waker_tx, waker_rx) = waker_pair()?;
        let completions = Arc::new(Completions { items: Mutex::new(Vec::new()), waker: waker_tx });
        let ctx = WorkerCtx {
            queue: Arc::new(BoundedQueue::new(self.config.queue_capacity)),
            cache: Arc::new(Mutex::new(LruCache::new(self.config.cache_capacity))),
            workspaces: Arc::new(Mutex::new(WorkspaceCache::new(
                self.config.workspace_cache_capacity,
            ))),
            registry: Arc::clone(&self.registry),
            store: self.store.clone(),
            metrics: Arc::clone(&self.metrics),
            config: self.config.clone(),
            shutdown: Arc::clone(&self.shutdown),
            completions,
        };

        let workers: Vec<JoinHandle<()>> =
            (0..self.config.workers.threads()).map(|i| spawn_worker(i, &ctx)).collect();
        let next_worker_id = workers.len();

        let mut event_loop = EventLoop {
            listener: self.listener,
            waker_rx,
            config: self.config,
            metrics: self.metrics,
            shutdown: self.shutdown,
            registry: self.registry,
            ctx,
            conns: HashMap::new(),
            next_conn_id: 0,
            inflight: 0,
            workers,
            next_worker_id,
            draining: false,
        };
        event_loop.run()
        // `self.store` (the last strong Arc once workers joined) drops here,
        // checkpointing the WAL into the data file.
    }
}

fn spawn_worker(id: usize, ctx: &WorkerCtx) -> JoinHandle<()> {
    let ctx = ctx.clone();
    std::thread::Builder::new()
        .name(format!("rsnd-worker-{id}"))
        .spawn(move || worker_loop(&ctx))
        .expect("spawn worker thread")
}

/// The single-threaded owner of every socket.
struct EventLoop {
    listener: TcpListener,
    waker_rx: TcpStream,
    config: ServerConfig,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
    ctx: WorkerCtx,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    /// Jobs handed to the queue whose completions have not been applied yet.
    inflight: usize,
    workers: Vec<JoinHandle<()>>,
    next_worker_id: usize,
    draining: bool,
}

impl EventLoop {
    fn run(&mut self) -> io::Result<()> {
        let mut scratch = vec![0u8; 64 * 1024];
        let mut drain_started: Option<Instant> = None;
        loop {
            // Enter drain mode exactly once: stop accepting, close the
            // queue (workers finish what was admitted, then exit).
            if !self.draining && self.shutdown.load(Ordering::SeqCst) {
                self.draining = true;
                drain_started = Some(Instant::now());
                self.ctx.queue.close();
            }
            self.supervise_workers();
            self.apply_completions();
            if self.draining && self.drained(drain_started) {
                break;
            }

            let (mut fds, tokens) = self.poll_set();
            let _ = poll::poll(&mut fds, Duration::from_millis(50));

            let now = Instant::now();
            for (fd, token) in fds.iter().zip(&tokens) {
                match token {
                    Token::Listener if fd.is_readable() => self.accept_ready(now),
                    Token::Waker if fd.is_readable() => self.drain_waker(&mut scratch),
                    Token::Conn(id) if fd.is_readable() => {
                        self.read_ready(*id, &mut scratch, now);
                    }
                    _ => {}
                }
            }
            self.apply_completions();

            let now = Instant::now();
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                self.pump_parse(id, now);
                self.pump_write(id);
            }
            self.housekeeping(Instant::now());
            self.metrics.set_open_sockets(self.conns.len() as u64);
            let keepalive = self
                .conns
                .values()
                .filter(|c| c.next_write_seq > 0 && c.close_at.is_none() && !c.eof)
                .count();
            self.metrics.set_keepalive_conns(keepalive as u64);
        }

        // Every job is answered and flushed; release the workers.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        Ok(())
    }

    /// True once a drain has nothing left to do: no queued or executing
    /// jobs, every completion applied, every owed byte flushed — or the
    /// flush grace period (one io_timeout) has expired on a stuck peer.
    fn drained(&self, started: Option<Instant>) -> bool {
        if !self.ctx.queue.is_empty() || self.inflight > 0 {
            return false;
        }
        let all_flushed = self.conns.values().all(Conn::flushed);
        let grace_over =
            started.is_some_and(|t| t.elapsed() > self.config.io_timeout + Duration::from_secs(1));
        all_flushed || grace_over
    }

    /// Replaces dead worker threads. Pre-shutdown every death is abnormal
    /// (an escaped panic); during drain a replacement is only needed while
    /// admitted jobs are still queued.
    fn supervise_workers(&mut self) {
        for i in 0..self.workers.len() {
            if self.workers[i].is_finished() && (!self.draining || !self.ctx.queue.is_empty()) {
                let fresh = spawn_worker(self.next_worker_id, &self.ctx);
                self.next_worker_id += 1;
                let dead = std::mem::replace(&mut self.workers[i], fresh);
                let _ = dead.join();
                self.metrics.record_worker_respawned();
            }
        }
    }

    /// Builds this iteration's poll registrations.
    fn poll_set(&self) -> (Vec<PollFd>, Vec<Token>) {
        let mut fds = Vec::with_capacity(self.conns.len() + 2);
        let mut tokens = Vec::with_capacity(self.conns.len() + 2);
        if !self.draining && self.conns.len() < self.config.max_conns {
            fds.push(PollFd::new(raw_fd(&self.listener), READABLE));
            tokens.push(Token::Listener);
        }
        fds.push(PollFd::new(raw_fd(&self.waker_rx), READABLE));
        tokens.push(Token::Waker);
        for (id, conn) in &self.conns {
            let mut events = 0;
            // A streaming upload keeps reading its body even when
            // `Connection: close` has pinned `close_at` to its own slot.
            if !conn.eof && (conn.close_at.is_none() || conn.streaming.is_some()) {
                events |= READABLE;
            }
            if !conn.write_buf.is_empty() {
                events |= WRITABLE;
            }
            if events != 0 {
                fds.push(PollFd::new(raw_fd(&conn.stream), events));
                tokens.push(Token::Conn(*id));
            }
        }
        (fds, tokens)
    }

    /// Accepts every pending connection (up to the socket cap).
    fn accept_ready(&mut self, now: Instant) {
        while self.conns.len() < self.config.max_conns {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if let Some(chaos) = &self.config.chaos {
                        if chaos.fires(Site::SlowRead) {
                            std::thread::sleep(chaos.delay());
                        }
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    self.conns.insert(id, Conn::new(stream, now));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Swallows pending waker bytes (their only job was ending the poll).
    fn drain_waker(&mut self, scratch: &mut [u8]) {
        loop {
            match self.waker_rx.read(scratch) {
                Ok(0) => break, // waker peer gone; completions still drain on the tick
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Reads every available byte from connection `id`.
    fn read_ready(&mut self, id: u64, scratch: &mut [u8], now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.eof = true;
                    break;
                }
            }
        }
    }

    /// Applies finished jobs to their connections' response slots.
    fn apply_completions(&mut self) {
        for completion in self.ctx.completions.take() {
            self.inflight -= 1;
            self.metrics.record_response(completion.response.status);
            self.metrics.record_latency(completion.endpoint, completion.accepted_at.elapsed());
            let now = Instant::now();
            if let Some(conn) = self.conns.get_mut(&completion.conn_id) {
                conn.push_response(completion.seq, &completion.response, now);
            }
        }
    }

    /// Parses as many full pipelined requests as the buffer and the
    /// per-connection inflight bound allow, routing each one.
    fn pump_parse(&mut self, id: u64, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            // A streaming upload consumes body bytes regardless of the
            // guards below — its response slot is already reserved, and its
            // `Connection: close` may have set `close_at` to its own seq.
            if conn.streaming.is_some() {
                if !self.pump_streaming(id, now) {
                    return;
                }
                continue;
            }
            if conn.close_at.is_some()
                || conn.read_buf.is_empty()
                || conn.outstanding() >= self.config.max_inflight_per_conn as u64
            {
                return;
            }
            // A plain-text network PUT streams its body through the push
            // parser instead of buffering it, so uploads are not subject to
            // `max_body_bytes`. Head errors fall through to
            // `parse_request_bytes`, which reports them identically.
            if conn.read_buf.starts_with(b"PUT ") {
                if let Ok(Some(head)) = http::parse_request_head(&conn.read_buf) {
                    let streams = head.path == "/v1/networks"
                        && head.header("content-type").is_some_and(|v| v.starts_with("text/plain"));
                    if streams {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        if !head.keep_alive {
                            conn.close_at = Some(seq);
                        }
                        conn.read_buf.drain(..head.body_start);
                        conn.partial_since = None;
                        conn.streaming = Some(StreamingUpload {
                            parser: Some(StreamingParser::new()),
                            error: None,
                            remaining: head.content_length as u64,
                            seq,
                        });
                        self.metrics.record_request("networks");
                        continue;
                    }
                }
            }
            match http::parse_request_bytes(&conn.read_buf, self.config.max_body_bytes) {
                Ok(Some(parsed)) => {
                    conn.read_buf.drain(..parsed.consumed);
                    conn.partial_since = None;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    if !parsed.keep_alive {
                        conn.close_at = Some(seq);
                    }
                    self.route(id, seq, &parsed.request, now);
                }
                Ok(None) => {
                    conn.partial_since.get_or_insert(now);
                    return;
                }
                Err(e) => {
                    // The byte stream is unframed from here: answer a
                    // structured envelope for this slot and close after it.
                    conn.read_buf.clear();
                    conn.partial_since = None;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.close_at = Some(seq);
                    let err = JobError::new(e.status, "bad_request", e.message);
                    self.finish_response(id, seq, &Response::json(err.status, err.body()));
                    return;
                }
            }
        }
    }

    /// Feeds buffered bytes to the connection's in-flight streaming upload.
    /// Returns `true` once the upload completed (and was answered), `false`
    /// while more body bytes are needed.
    fn pump_streaming(&mut self, id: u64, now: Instant) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else { return false };
        let Some(up) = conn.streaming.as_mut() else { return true };
        let take = usize::try_from(up.remaining).unwrap_or(usize::MAX).min(conn.read_buf.len());
        if take > 0 {
            if let Some(parser) = up.parser.as_mut() {
                if let Err(e) = parser.push_bytes(&conn.read_buf[..take]) {
                    // Keep draining the declared body so the connection
                    // stays framed; the error is answered once it ends.
                    up.error = Some(e);
                    up.parser = None;
                }
            }
            conn.read_buf.drain(..take);
            up.remaining -= take as u64;
            conn.last_activity = now;
        }
        if up.remaining > 0 {
            if conn.eof && conn.read_buf.is_empty() {
                // The peer hung up mid-body; nothing more will arrive.
                let up = conn.streaming.take().expect("checked above");
                conn.partial_since = None;
                conn.close_at = Some(up.seq);
                let err = JobError::new(400, "bad_request", "connection closed before end of body");
                self.finish_response(id, up.seq, &Response::json(err.status, err.body()));
                return false;
            }
            // Restart the stall window on every chunk: a streaming body
            // making progress is alive no matter how long the total
            // transfer takes.
            if take > 0 {
                conn.partial_since = Some(now);
            } else {
                conn.partial_since.get_or_insert(now);
            }
            return false;
        }
        let up = conn.streaming.take().expect("checked above");
        conn.partial_since = None;
        let seq = up.seq;
        let response = self.streamed_upload_response(up);
        self.finish_response(id, seq, &response);
        true
    }

    /// Finalizes a drained streaming upload into its HTTP response:
    /// registers the parsed network or reports the parse/build error.
    fn streamed_upload_response(&self, up: StreamingUpload) -> Response {
        let fail = |err: JobError| Response::json(err.status, err.body());
        if let Some(e) = up.error {
            return fail(JobError::new(400, "bad_network", e.to_string()));
        }
        let parser = up.parser.expect("uploads without an error keep their parser");
        let (name, structure) = match parser.finish() {
            Ok(parts) => parts,
            Err(e) => return fail(JobError::new(400, "bad_network", e.to_string())),
        };
        let parsed = match wire::ParsedNetwork::from_parts(name, structure) {
            Ok(parsed) => parsed,
            Err(err) => return fail(err),
        };
        match self
            .ctx
            .registry
            .register_parsed(Arc::new(parsed))
            .and_then(|parsed| wire::networks_put_body(&parsed))
        {
            Ok(body) => Response::json(200, body),
            Err(err) => fail(err),
        }
    }

    /// Dispatches one parsed request: answered inline or queued for a
    /// worker.
    fn route(&mut self, conn_id: u64, seq: u64, request: &Request, accepted_at: Instant) {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                self.metrics.record_request("healthz");
                self.finish_response(conn_id, seq, &Response::text(200, "ok\n".to_string()));
            }
            ("GET", "/metrics") => {
                self.metrics.record_request("metrics");
                self.finish_response(conn_id, seq, &Response::text(200, self.metrics.render()));
            }
            ("GET", "/v1/networks") => {
                self.metrics.record_request("networks");
                let listing = NetworkListResponse { networks: self.registry.list() };
                let response = match serde_json::to_string(&listing) {
                    Ok(body) => Response::json(200, body),
                    Err(e) => {
                        let err = JobError::new(500, "internal_error", e.to_string());
                        Response::json(err.status, err.body())
                    }
                };
                self.finish_response(conn_id, seq, &response);
            }
            ("POST", "/v1/analyze") => {
                self.submit(conn_id, seq, request, Endpoint::Analyze, accepted_at);
            }
            ("POST", "/v1/harden") => {
                self.submit(conn_id, seq, request, Endpoint::Harden, accepted_at);
            }
            ("POST", "/v1/validate") => {
                self.submit(conn_id, seq, request, Endpoint::Validate, accepted_at);
            }
            ("POST", "/v1/whatif") => {
                self.submit(conn_id, seq, request, Endpoint::Whatif, accepted_at);
            }
            ("PUT", "/v1/networks") => {
                self.submit(conn_id, seq, request, Endpoint::Networks, accepted_at);
            }
            (
                _,
                "/healthz" | "/metrics" | "/v1/analyze" | "/v1/harden" | "/v1/validate"
                | "/v1/whatif" | "/v1/networks",
            ) => {
                let err = JobError::new(405, "method_not_allowed", "wrong method for this path");
                self.finish_response(conn_id, seq, &Response::json(err.status, err.body()));
            }
            (_, path) => {
                let err = JobError::new(404, "not_found", format!("unknown path {path:?}"));
                self.finish_response(conn_id, seq, &Response::json(err.status, err.body()));
            }
        }
    }

    /// Parses, resolves and enqueues a submission, answering `503` +
    /// `Retry-After` when the queue is full.
    fn submit(
        &mut self,
        conn_id: u64,
        seq: u64,
        request: &Request,
        endpoint: Endpoint,
        accepted_at: Instant,
    ) {
        self.metrics.record_request(endpoint.as_str());
        let resolved = std::str::from_utf8(&request.body)
            .map_err(|_| JobError::new(400, "bad_request", "body is not valid utf-8"))
            .and_then(wire::parse_request)
            .and_then(|job_request| {
                let timeout = job_request
                    .timeout_ms
                    .unwrap_or(self.config.default_timeout_ms)
                    .min(self.config.max_timeout_ms);
                wire::resolve(endpoint, &job_request).map(|resolved| (resolved, timeout))
            });
        let (resolved, timeout_ms) = match resolved {
            Ok(pair) => pair,
            Err(err) => {
                self.finish_response(conn_id, seq, &Response::json(err.status, err.body()));
                return;
            }
        };

        let job = Job {
            conn_id,
            seq,
            resolved,
            accepted_at,
            deadline: Deadline::after(Duration::from_millis(timeout_ms)),
        };
        match self.ctx.queue.try_push(job) {
            Ok(depth) => {
                self.inflight += 1;
                self.metrics.set_queue_depth(depth);
            }
            Err(PushError::Full(_) | PushError::Closed(_)) => {
                self.metrics.record_queue_rejected();
                let err = JobError::new(
                    503,
                    "overloaded",
                    format!(
                        "submission queue is full ({} jobs); retry after {}s",
                        self.ctx.queue.capacity(),
                        self.config.retry_after_secs
                    ),
                );
                let response = Response::json(err.status, err.body())
                    .with_header("Retry-After", &self.config.retry_after_secs.to_string());
                self.finish_response(conn_id, seq, &response);
            }
        }
    }

    /// Records and slots an inline response, then tries to flush it.
    fn finish_response(&mut self, conn_id: u64, seq: u64, response: &Response) {
        if let Some(chaos) = &self.config.chaos {
            if chaos.fires(Site::SlowWrite) {
                std::thread::sleep(chaos.delay());
            }
        }
        self.metrics.record_response(response.status);
        let now = Instant::now();
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.push_response(seq, response, now);
        }
        self.pump_write(conn_id);
    }

    /// Writes as much buffered response data as the socket accepts, and
    /// retires the connection once it is finished.
    fn pump_write(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        let mut dead = false;
        while !conn.write_buf.is_empty() {
            match conn.stream.write(&conn.write_buf) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.write_buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead || conn.finished() {
            self.conns.remove(&id);
        }
    }

    /// Enforces the mid-request and idle timeouts.
    fn housekeeping(&mut self, now: Instant) {
        // Mid-request stalls answer a structured 408 envelope, then close —
        // the event-loop counterpart of the old blocking read timeout.
        let stalled: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                (c.close_at.is_none() || c.streaming.is_some())
                    && !c.eof
                    && c.partial_since
                        .is_some_and(|since| now.duration_since(since) > self.config.io_timeout)
            })
            .map(|(id, _)| *id)
            .collect();
        for id in stalled {
            let Some(conn) = self.conns.get_mut(&id) else { continue };
            conn.read_buf.clear();
            conn.partial_since = None;
            // A stalled streaming upload answers on its own reserved slot;
            // a stalled request head gets a fresh one.
            let seq = match conn.streaming.take() {
                Some(up) => up.seq,
                None => {
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    seq
                }
            };
            conn.close_at = Some(seq);
            let err = JobError::new(408, "bad_request", "timed out reading from peer");
            self.finish_response(id, seq, &Response::json(err.status, err.body()));
        }
        // Idle keep-alive connections (and half-closed leftovers) are
        // reaped silently.
        self.conns.retain(|_, c| {
            let idle = c.read_buf.is_empty() && c.flushed();
            let expired = now.duration_since(c.last_activity) > self.config.idle_timeout;
            !(idle && (c.eof || expired))
        });
    }
}

/// One worker: drain the queue until it is closed and empty. Job execution
/// is panic-isolated: a panicking job answers a structured 500
/// `internal_error` and the worker keeps serving.
fn worker_loop(ctx: &WorkerCtx) {
    loop {
        // The chaos worker-abort site kills the thread *between* jobs (no
        // job is ever lost) and only before shutdown, so the final drain
        // always completes. The escaped panic is what the event loop's
        // respawn supervision exists for.
        if let Some(chaos) = &ctx.config.chaos {
            if !ctx.shutdown.load(Ordering::SeqCst) && chaos.fires(Site::WorkerAbort) {
                panic!("chaos: worker aborted between jobs");
            }
            if chaos.fires(Site::QueueStall) {
                std::thread::sleep(chaos.delay());
            }
        }
        let Some(job) = ctx.queue.pop() else { break };
        ctx.metrics.set_queue_depth(ctx.queue.len());
        if let Some(delay) = ctx.config.worker_delay {
            std::thread::sleep(delay);
        }
        let endpoint = job.resolved.endpoint.as_str();
        let result = catch_unwind(AssertUnwindSafe(|| run_job(&job, ctx)));
        let response = match result {
            Ok(response) => response,
            Err(payload) => {
                ctx.metrics.record_job_panicked();
                let err = JobError::new(
                    500,
                    "internal_error",
                    format!(
                        "worker panicked while executing the job: {}",
                        ShardPanic::from_payload(payload).message()
                    ),
                );
                Response::json(err.status, err.body())
            }
        };
        if response.status == 408 {
            ctx.metrics.record_job_cancelled();
        }
        ctx.completions.push(Completion {
            conn_id: job.conn_id,
            seq: job.seq,
            endpoint,
            accepted_at: job.accepted_at,
            response,
        });
    }
}

/// Registry resolution, cache lookup (memory, then store), execution, cache
/// fill. Cache locks recover from poisoning (`PoisonError::into_inner`): the
/// LRU's invariants hold across a panic observed mid-`get`/`put`, and losing
/// a cached body at worst costs a recomputation.
fn run_job(job: &Job, ctx: &WorkerCtx) -> Response {
    if let Err(err) = job.deadline.check("queued") {
        return Response::json(err.status, err.body());
    }
    if let Some(chaos) = &ctx.config.chaos {
        if chaos.fires(Site::JobPanic) {
            panic!("chaos: injected job panic");
        }
    }
    // Resolve the network once: hash references look up the registry
    // (404 `unknown_network` otherwise), inline text goes through the
    // parse memo, and registrations persist the text under its hash.
    let network = match &job.resolved.network_hash {
        Some(hex) => ctx.registry.lookup(hex),
        None if job.resolved.endpoint == Endpoint::Networks => {
            ctx.registry.register(&job.resolved.network)
        }
        None => ctx.registry.resolve_inline(&job.resolved.network),
    };
    let network = match network {
        Ok(network) => network,
        Err(err) => return Response::json(err.status, err.body()),
    };
    if job.resolved.endpoint == Endpoint::Networks {
        // Registration answers its receipt directly; the result cache is
        // for analysis bytes.
        return match wire::networks_put_body(&network) {
            Ok(body) => Response::json(200, body),
            Err(err) => Response::json(err.status, err.body()),
        };
    }

    let key = job.resolved.canonical_key_with(&network.hash);
    if let Some(body) = ctx.cache.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
        ctx.metrics.record_cache_hit();
        return Response::json(200, body).with_header("X-Cache", "hit");
    }
    if let Some(store) = &ctx.store {
        if let Ok(Some(bytes)) = store.get(Namespace::Results, key.as_bytes()) {
            if let Ok(body) = String::from_utf8(bytes) {
                ctx.metrics.record_store_read();
                ctx.metrics.record_cache_hit();
                ctx.cache.lock().unwrap_or_else(PoisonError::into_inner).put(&key, body.clone());
                return Response::json(200, body).with_header("X-Cache", "store");
            }
        }
    }
    ctx.metrics.record_cache_miss();
    let executed = if job.resolved.endpoint == Endpoint::Whatif {
        run_whatif(job, &network, ctx)
    } else {
        wire::execute_with(&job.resolved, &network, ctx.config.analysis_threads, &job.deadline)
    };
    match executed {
        Ok(body) => {
            ctx.cache.lock().unwrap_or_else(PoisonError::into_inner).put(&key, body.clone());
            if let Some(store) = &ctx.store {
                // A failed persist costs only warmth after a restart; the
                // computed response is still correct, so serve it.
                if let Ok(true) = store.put(Namespace::Results, key.as_bytes(), body.as_bytes()) {
                    ctx.metrics.record_store_write();
                }
            }
            Response::json(200, body).with_header("X-Cache", "miss")
        }
        Err(err) => Response::json(err.status, err.body()),
    }
}

/// A what-if job: answered from a warm [`Workspace`](robust_rsn::Workspace)
/// when one is cached for the job's network/spec, otherwise built once and
/// cached for the next request. The workspace lock is per-workspace —
/// what-ifs against *different* networks run concurrently; only same-network
/// what-ifs serialize (each is a masking/arithmetic delta, so that is
/// cheap).
///
/// Edits commit atomically and `wire::execute_whatif` undoes its delta
/// before answering, so the shared workspace returns to pristine state on
/// every path short of a daemon bug — and on that path (a 500, or a panic
/// observed as lock poisoning) the entry is dropped rather than reused.
fn run_whatif(
    job: &Job,
    network: &wire::ParsedNetwork,
    ctx: &WorkerCtx,
) -> Result<String, JobError> {
    let ws_key = job.resolved.workspace_key_with(&network.hash);
    // A poisoned per-workspace lock means a previous holder panicked
    // mid-edit; treat the entry as absent and rebuild over it.
    let cached = ctx
        .workspaces
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&ws_key)
        .filter(|ws| !ws.is_poisoned());
    let shared = match cached {
        Some(ws) => {
            ctx.metrics.record_workspace_cache_hit();
            ws
        }
        None => {
            ctx.metrics.record_workspace_cache_miss();
            let ws = wire::build_workspace_with(
                &job.resolved,
                network,
                ctx.config.analysis_threads,
                &job.deadline,
            )?;
            let arc = Arc::new(Mutex::new(ws));
            ctx.workspaces
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .put(&ws_key, Arc::clone(&arc));
            arc
        }
    };
    let result = {
        let mut workspace = shared.lock().unwrap_or_else(PoisonError::into_inner);
        wire::execute_whatif(&job.resolved, &mut workspace, &job.deadline)
    };
    if result.as_ref().is_err_and(|e| e.status == 500) {
        ctx.workspaces.lock().unwrap_or_else(PoisonError::into_inner).remove(&ws_key);
    }
    result
}
