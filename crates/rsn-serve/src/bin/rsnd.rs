//! `rsnd` — the robust-RSN analysis daemon.
//!
//! ```text
//! rsnd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!      [--store PATH] [--timeout-ms N] [--chaos SPEC] [--version]
//! ```
//!
//! Serves `POST /v1/analyze`, `POST /v1/harden`, `PUT/GET /v1/networks`,
//! `GET /metrics` and `GET /healthz` (see the `rsn-serve` crate docs for the
//! wire format). Prints `rsnd listening on HOST:PORT` once ready — scripts
//! wait for that line — and shuts down gracefully (draining in-flight jobs)
//! on SIGTERM or ctrl-c.
//!
//! `--store PATH` opens (or creates) the persistent WAL-backed store at
//! PATH: registered networks and computed results survive restarts — even a
//! `kill -9` — and warm responses are byte-identical after recovery.
//!
//! `--chaos SPEC` (or the `RSND_CHAOS` environment variable; the flag wins)
//! installs a deterministic fault-injection schedule, e.g.
//! `seed=7,panic=5,abort=40,stall=6,delay-ms=25` — see the `chaos` module
//! docs. Test-only; never set it in production.

use std::process::ExitCode;
use std::time::Duration;

use std::sync::Arc;

use robust_rsn::Parallelism;
use rsn_serve::{signal, Chaos, Server, ServerConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut chaos_spec = std::env::var("RSND_CHAOS").ok();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = Parallelism::new(parse(&value("--workers")?)?),
            "--queue" => config.queue_capacity = parse(&value("--queue")?)?,
            "--cache" => config.cache_capacity = parse(&value("--cache")?)?,
            "--store" => config.store_path = Some(value("--store")?.into()),
            "--timeout-ms" => config.default_timeout_ms = parse(&value("--timeout-ms")?)?,
            "--chaos" => chaos_spec = Some(value("--chaos")?),
            "--version" | "-V" => {
                println!("rsnd {}", env!("CARGO_PKG_VERSION"));
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if let Some(spec) = chaos_spec {
        let chaos = Chaos::from_spec(&spec)?;
        eprintln!("rsnd: chaos schedule active (seed {})", chaos.seed());
        config.chaos = Some(Arc::new(chaos));
    }

    // Best-effort: a keep-alive fleet of 10k+ sockets needs headroom over
    // the usual 1024-descriptor default.
    let _ = rsn_serve::poll::raise_nofile_limit(65_536);

    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("rsnd listening on {}", server.local_addr());

    signal::install();
    let handle = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if signal::triggered() {
            handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    server.run().map_err(|e| format!("serve failed: {e}"))?;
    println!("rsnd shut down cleanly");
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

const USAGE: &str = "usage: rsnd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] \
                     [--store PATH] [--timeout-ms N] [--chaos SPEC] [--version]";
