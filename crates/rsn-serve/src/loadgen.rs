//! A replayable load generator for `rsnd`.
//!
//! Fleet capacity planning needs traffic that is *reproducible*: the same
//! seed must replay the same job sequence so a latency regression can be
//! bisected instead of shrugged off as noise. The generator therefore
//! derives everything from pure functions of `(seed, request index)`:
//!
//! * the job **kind** ([`Mix::kind_at`]) — a weighted draw over
//!   analyze/whatif/validate/harden from the SplitMix64 stream;
//! * the **what-if target** — a round-robin walk of segment names collected
//!   from the network text;
//! * the **schedule** — open loop (`rate` = requests/second, send times
//!   fixed on a grid, latency measured from the *scheduled* send time so
//!   coordinated omission cannot hide a stall) or closed loop (`rate`
//!   = `None`, each connection fires its next request as soon as the
//!   previous response lands).
//!
//! Requests are striped over `connections` persistent keep-alive
//! connections (request `i` rides connection `i % connections`), speaking
//! the daemon's own framed HTTP subset via
//! [`http::parse_response_bytes`]. The network is registered once with
//! `PUT /v1/networks` and every job references its content hash, so the
//! measured path is the serving path, not network-text upload bandwidth.
//!
//! The [`LoadReport`] carries throughput plus p50/p90/p99/p999/max latency
//! and attainment against a millisecond SLO; `rsn_tool loadgen --json`
//! prints it verbatim and `scripts/bench_snapshot.sh` snapshots it as
//! `BENCH_serve.json`. Composing with `--chaos` (see [`crate::chaos`])
//! turns the same harness into a latency-under-faults probe.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::http;
use crate::wire::{Endpoint, JobRequest};

/// SplitMix64's finalizer: the deterministic stream behind every draw.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Relative weights of the four job kinds in the replayed traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Weight of `POST /v1/analyze` jobs.
    pub analyze: u32,
    /// Weight of `POST /v1/whatif` jobs (incremental, workspace-cached).
    pub whatif: u32,
    /// Weight of `POST /v1/validate` jobs (full simulation campaigns).
    pub validate: u32,
    /// Weight of `POST /v1/harden` jobs (greedy solver).
    pub harden: u32,
}

impl Default for Mix {
    /// The serving fleet's observed shape: analyze-heavy with a what-if
    /// burst tail and a trickle of expensive validate/harden jobs.
    fn default() -> Self {
        Self { analyze: 70, whatif: 20, validate: 5, harden: 5 }
    }
}

impl Mix {
    /// Parses a mix spec like `analyze=70,whatif=20,validate=5,harden=5`.
    /// Omitted kinds get weight 0; at least one weight must be positive.
    ///
    /// # Errors
    ///
    /// A message naming the offending entry.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut mix = Self { analyze: 0, whatif: 0, validate: 0, harden: 0 };
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("mix entry {part:?} is not kind=weight"))?;
            let value: u32 = value
                .parse()
                .map_err(|_| format!("mix weight {value:?} for {key:?} is not a number"))?;
            match key {
                "analyze" => mix.analyze = value,
                "whatif" => mix.whatif = value,
                "validate" => mix.validate = value,
                "harden" => mix.harden = value,
                other => return Err(format!("unknown mix kind {other:?}")),
            }
        }
        if mix.total() == 0 {
            return Err("mix has no positive weight".into());
        }
        Ok(mix)
    }

    fn total(self) -> u64 {
        u64::from(self.analyze)
            + u64::from(self.whatif)
            + u64::from(self.validate)
            + u64::from(self.harden)
    }

    /// The kind of request `i` under `seed` — a pure function, so a replay
    /// with the same seed issues the same sequence regardless of thread
    /// interleaving or which requests time out.
    #[must_use]
    pub fn kind_at(self, seed: u64, i: u64) -> Endpoint {
        let draw = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9)) % self.total();
        let mut upto = u64::from(self.analyze);
        if draw < upto {
            return Endpoint::Analyze;
        }
        upto += u64::from(self.whatif);
        if draw < upto {
            return Endpoint::Whatif;
        }
        upto += u64::from(self.validate);
        if draw < upto {
            return Endpoint::Validate;
        }
        Endpoint::Harden
    }
}

/// Configuration of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:7687`.
    pub addr: String,
    /// The network under load, in the textual `.rsn` format. Registered
    /// once; jobs reference its content hash.
    pub network: String,
    /// Total number of requests to replay.
    pub requests: usize,
    /// Persistent keep-alive connections to stripe requests over.
    pub connections: usize,
    /// Open-loop arrival rate in requests/second across all connections;
    /// `None` runs closed-loop (back-to-back per connection).
    pub rate: Option<f64>,
    /// Relative job-kind weights.
    pub mix: Mix,
    /// Seed of the replayable schedule (job kinds, what-if targets).
    pub seed: u64,
    /// Latency SLO in milliseconds; the report carries attainment against
    /// it and [`LoadReport::slo_met`] compares p99 to it.
    pub slo_ms: u64,
    /// Per-request IO timeout.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            network: String::new(),
            requests: 200,
            connections: 4,
            rate: None,
            mix: Mix::default(),
            seed: 2022,
            slo_ms: 500,
            timeout: Duration::from_secs(60),
        }
    }
}

/// Latency percentiles in milliseconds (fractional: microsecond clock).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
}

impl LatencySummary {
    /// Summarizes a latency sample given in microseconds.
    #[must_use]
    pub fn from_micros(mut micros: Vec<u64>) -> Self {
        if micros.is_empty() {
            return Self::default();
        }
        micros.sort_unstable();
        let at = |q: f64| {
            let idx = ((micros.len() - 1) as f64 * q).round() as usize;
            micros[idx] as f64 / 1000.0
        };
        let sum: u128 = micros.iter().map(|&v| u128::from(v)).sum();
        Self {
            p50_ms: at(0.50),
            p90_ms: at(0.90),
            p99_ms: at(0.99),
            p999_ms: at(0.999),
            max_ms: *micros.last().expect("non-empty") as f64 / 1000.0,
            mean_ms: (sum / micros.len() as u128) as f64 / 1000.0,
        }
    }
}

/// Requests issued per endpoint.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct EndpointCounts {
    /// `POST /v1/analyze`.
    pub analyze: usize,
    /// `POST /v1/whatif`.
    pub whatif: usize,
    /// `POST /v1/validate`.
    pub validate: usize,
    /// `POST /v1/harden`.
    pub harden: usize,
}

/// The result of one load-generation run — what `rsn_tool loadgen --json`
/// prints and `BENCH_serve.json` snapshots.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// Requests answered 200.
    pub ok: usize,
    /// Requests answered non-200 (the daemon's structured errors).
    pub errors: usize,
    /// Requests lost to IO/transport failures (connect, timeout, framing).
    pub transport_errors: usize,
    /// Times a connection had to be re-established mid-run.
    pub reconnects: usize,
    /// Replay seed (the run is reproducible from this plus the config).
    pub seed: u64,
    /// `"open"` or `"closed"`.
    pub loop_mode: String,
    /// Open-loop target rate, if any.
    pub target_rps: Option<f64>,
    /// Wall-clock of the whole run in milliseconds.
    pub elapsed_ms: u64,
    /// Completed requests per second of wall-clock.
    pub throughput_rps: f64,
    /// Latency summary over successful requests. Open loop measures from
    /// each request's *scheduled* send time (coordinated-omission safe);
    /// closed loop from the actual send.
    pub latency: LatencySummary,
    /// The SLO the run was judged against.
    pub slo_ms: u64,
    /// Fraction of successful requests inside the SLO.
    pub slo_attainment: f64,
    /// Per-endpoint request counts.
    pub counts: EndpointCounts,
}

impl LoadReport {
    /// Whether the run met the SLO at the 99th percentile.
    #[must_use]
    pub fn slo_met(&self) -> bool {
        self.latency.p99_ms <= self.slo_ms as f64
    }
}

/// One keep-alive connection to the daemon. Reconnects transparently (the
/// caller counts the reconnect) because an idle-timeout close between
/// requests is normal under open-loop pacing.
struct Conn {
    addr: String,
    timeout: Duration,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl Conn {
    fn new(addr: String, timeout: Duration) -> Self {
        Self { addr, timeout, stream: None, buf: Vec::new() }
    }

    /// Sends one framed request and reads one framed response, keeping the
    /// connection open. On transport failure the connection is dropped and
    /// one fresh attempt is made (a keep-alive peer may close between
    /// requests at any time; RFC 9112 §9.6 makes the retry safe for these
    /// idempotent jobs).
    fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        reconnects: &AtomicUsize,
    ) -> Result<http::Response, String> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: rsnd\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n",
            body.len()
        );
        let had_stream = self.stream.is_some();
        match self.try_roundtrip(&head, body) {
            Ok(response) => Ok(response),
            Err(first) => {
                // Drop the (possibly desynced) connection and retry once on
                // a fresh one. Only count a reconnect when we actually had a
                // connection to lose.
                self.stream = None;
                self.buf.clear();
                if had_stream {
                    reconnects.fetch_add(1, Ordering::Relaxed);
                }
                self.try_roundtrip(&head, body).map_err(|_| first)
            }
        }
    }

    fn try_roundtrip(&mut self, head: &str, body: &str) -> Result<http::Response, String> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
            stream.set_read_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
            stream.set_write_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
            self.stream = Some(stream);
            self.buf.clear();
        }
        let stream = self.stream.as_mut().expect("just connected");
        stream.write_all(head.as_bytes()).map_err(|e| format!("write: {e}"))?;
        stream.write_all(body.as_bytes()).map_err(|e| format!("write: {e}"))?;
        stream.flush().map_err(|e| format!("flush: {e}"))?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((response, consumed)) =
                http::parse_response_bytes(&self.buf).map_err(|e| format!("frame: {e}"))?
            {
                self.buf.drain(..consumed);
                return Ok(response);
            }
            let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-response".into());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Segment names usable as what-if targets, in scan order (bounded — the
/// schedule only needs a handful of distinct targets).
fn whatif_targets(network: &str) -> Result<Vec<String>, String> {
    let (_, structure) = rsn_model::format::parse_network(network).map_err(|e| e.to_string())?;
    let mut names = Vec::new();
    // Iterative walk: loadgen networks can be the giant deep-SIB shapes.
    let mut stack = vec![&structure];
    while let Some(s) = stack.pop() {
        if names.len() >= 16 {
            break;
        }
        match s {
            rsn_model::Structure::Segment(spec) => {
                if let Some(name) = &spec.name {
                    names.push(name.clone());
                }
            }
            rsn_model::Structure::Series(parts) => stack.extend(parts.iter().rev()),
            rsn_model::Structure::Parallel { branches, .. } => {
                stack.extend(branches.iter().rev());
            }
            rsn_model::Structure::Sib { inner, .. } => stack.push(inner),
            rsn_model::Structure::Wire => {}
        }
    }
    if names.is_empty() {
        return Err("loadgen needs at least one named segment for what-if targets".into());
    }
    Ok(names)
}

/// The JSON body of request `i` — pure in `(config, hash, targets, i)`.
fn job_body(config: &LoadgenConfig, hash: &str, targets: &[String], i: u64) -> (Endpoint, String) {
    let endpoint = config.mix.kind_at(config.seed, i);
    let mut job = JobRequest {
        network_hash: Some(hash.to_string()),
        seed: Some(config.seed),
        ..JobRequest::default()
    };
    match endpoint {
        Endpoint::Whatif => {
            job.op = Some("harden".into());
            let t = splitmix64(config.seed ^ target_stream(i)) as usize % targets.len();
            job.target = Some(targets[t].clone());
        }
        Endpoint::Harden => {
            // Greedy: deterministic and cheap — loadgen measures serving,
            // not solver wall-clock.
            job.solver = Some("greedy".into());
        }
        Endpoint::Analyze | Endpoint::Validate | Endpoint::Networks => {}
    }
    (endpoint, serde_json::to_string(&job).expect("job serializes"))
}

/// Mixes the request index into the what-if target stream (distinct from
/// the kind stream so targets do not correlate with kinds).
fn target_stream(i: u64) -> u64 {
    i.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x5851_f42d
}

/// Runs the configured load against a running daemon and summarizes it.
///
/// # Errors
///
/// A message when the daemon is unreachable, the network fails to register,
/// or the network has no named segments to target.
pub fn run(config: &LoadgenConfig) -> Result<LoadReport, String> {
    if config.requests == 0 || config.connections == 0 {
        return Err("loadgen needs requests >= 1 and connections >= 1".into());
    }
    let targets = whatif_targets(&config.network)?;

    // Register the network once; all jobs go by hash.
    let client = crate::Client::new(config.addr.clone()).with_timeout(config.timeout);
    let put = client.put_network(&config.network).map_err(|e| format!("registering: {e}"))?;
    if put.status != 200 {
        return Err(format!("registering network: rsnd returned {}", put.status));
    }
    let hash = serde_json::from_str::<crate::wire::NetworkPutResponse>(&put.body)
        .map_err(|e| format!("bad register response: {e}"))?
        .network_hash;

    let reconnects = AtomicUsize::new(0);
    let interval = config.rate.map(|r| Duration::from_secs_f64(1.0 / r.max(1e-9)));
    let connections = config.connections.min(config.requests);

    struct WorkerOut {
        micros: Vec<u64>,
        ok: usize,
        errors: usize,
        transport_errors: usize,
        counts: EndpointCounts,
    }

    let start = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for w in 0..connections {
            let reconnects = &reconnects;
            let targets = &targets;
            let hash = &hash;
            handles.push(scope.spawn(move || {
                let mut conn = Conn::new(config.addr.clone(), config.timeout);
                let mut out = WorkerOut {
                    micros: Vec::new(),
                    ok: 0,
                    errors: 0,
                    transport_errors: 0,
                    counts: EndpointCounts::default(),
                };
                let mut i = w;
                while i < config.requests {
                    let (endpoint, body) = job_body(config, hash, targets, i as u64);
                    match endpoint {
                        Endpoint::Analyze => out.counts.analyze += 1,
                        Endpoint::Whatif => out.counts.whatif += 1,
                        Endpoint::Validate => out.counts.validate += 1,
                        Endpoint::Harden | Endpoint::Networks => out.counts.harden += 1,
                    }
                    let path = match endpoint {
                        Endpoint::Analyze => "/v1/analyze",
                        Endpoint::Whatif => "/v1/whatif",
                        Endpoint::Validate => "/v1/validate",
                        Endpoint::Harden | Endpoint::Networks => "/v1/harden",
                    };
                    // Open loop: request i is *scheduled* at start + i·Δ and
                    // latency runs from that instant, so a stalled server
                    // accrues the queueing delay instead of silently
                    // thinning the arrival stream (coordinated omission).
                    let sent_at = match interval {
                        Some(dt) => {
                            let due = dt.saturating_mul(i as u32);
                            let now = start.elapsed();
                            if due > now {
                                std::thread::sleep(due - now);
                            }
                            due
                        }
                        None => start.elapsed(),
                    };
                    match conn.roundtrip("POST", path, &body, reconnects) {
                        Ok(response) => {
                            let latency = start.elapsed().saturating_sub(sent_at);
                            if response.status == 200 {
                                out.ok += 1;
                                out.micros
                                    .push(latency.as_micros().min(u128::from(u64::MAX)) as u64);
                            } else {
                                out.errors += 1;
                            }
                        }
                        Err(_) => out.transport_errors += 1,
                    }
                    i += connections;
                }
                out
            }));
        }
        handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
    });
    let elapsed = start.elapsed();

    let mut micros = Vec::with_capacity(config.requests);
    let mut ok = 0;
    let mut errors = 0;
    let mut transport_errors = 0;
    let mut counts = EndpointCounts::default();
    for out in outs {
        micros.extend_from_slice(&out.micros);
        ok += out.ok;
        errors += out.errors;
        transport_errors += out.transport_errors;
        counts.analyze += out.counts.analyze;
        counts.whatif += out.counts.whatif;
        counts.validate += out.counts.validate;
        counts.harden += out.counts.harden;
    }
    let slo_micros = config.slo_ms.saturating_mul(1000);
    let within = micros.iter().filter(|&&m| m <= slo_micros).count();
    let slo_attainment = if micros.is_empty() { 0.0 } else { within as f64 / micros.len() as f64 };
    Ok(LoadReport {
        requests: config.requests,
        ok,
        errors,
        transport_errors,
        reconnects: reconnects.load(Ordering::Relaxed),
        seed: config.seed,
        loop_mode: if interval.is_some() { "open".into() } else { "closed".into() },
        target_rps: config.rate,
        elapsed_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
        throughput_rps: if elapsed.as_secs_f64() > 0.0 {
            ok as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        latency: LatencySummary::from_micros(micros),
        slo_ms: config.slo_ms,
        slo_attainment,
        counts,
    })
}

/// Renders the report as the human-readable block `rsn_tool loadgen`
/// prints without `--json`.
#[must_use]
pub fn render(report: &LoadReport) -> String {
    let mut s = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(s, "loop mode:         {}", report.loop_mode);
    if let Some(rps) = report.target_rps {
        let _ = writeln!(s, "target rate:       {rps:.1} req/s");
    }
    let _ = writeln!(s, "requests:          {}", report.requests);
    let _ = writeln!(
        s,
        "completed:         {} ok, {} error, {} transport ({} reconnects)",
        report.ok, report.errors, report.transport_errors, report.reconnects
    );
    let _ = writeln!(
        s,
        "mix:               analyze={} whatif={} validate={} harden={}",
        report.counts.analyze, report.counts.whatif, report.counts.validate, report.counts.harden
    );
    let _ = writeln!(s, "elapsed:           {} ms", report.elapsed_ms);
    let _ = writeln!(s, "throughput:        {:.1} req/s", report.throughput_rps);
    let l = &report.latency;
    let _ = writeln!(
        s,
        "latency (ms):      p50 {:.2}  p90 {:.2}  p99 {:.2}  p999 {:.2}  max {:.2}  mean {:.2}",
        l.p50_ms, l.p90_ms, l.p99_ms, l.p999_ms, l.max_ms, l.mean_ms
    );
    let _ = writeln!(
        s,
        "slo:               {} ms — attainment {:.1}%, p99 {}",
        report.slo_ms,
        report.slo_attainment * 100.0,
        if report.slo_met() { "MET" } else { "MISSED" }
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_spec_roundtrip_and_errors() {
        let mix = Mix::from_spec("analyze=1,whatif=2,validate=3,harden=4").unwrap();
        assert_eq!(mix, Mix { analyze: 1, whatif: 2, validate: 3, harden: 4 });
        assert!(Mix::from_spec("analyze").unwrap_err().contains("kind=weight"));
        assert!(Mix::from_spec("analyze=x").unwrap_err().contains("not a number"));
        assert!(Mix::from_spec("frobnicate=3").unwrap_err().contains("frobnicate"));
        assert!(Mix::from_spec("analyze=0").unwrap_err().contains("no positive weight"));
    }

    #[test]
    fn schedule_is_deterministic_and_respects_the_mix() {
        let mix = Mix::default();
        let a: Vec<Endpoint> = (0..2000).map(|i| mix.kind_at(7, i)).collect();
        let b: Vec<Endpoint> = (0..2000).map(|i| mix.kind_at(7, i)).collect();
        assert_eq!(a, b, "same seed replays the same sequence");
        let c: Vec<Endpoint> = (0..2000).map(|i| mix.kind_at(8, i)).collect();
        assert_ne!(a, c, "a different seed reshuffles the sequence");
        // The empirical shares track the weights (±50 % slack at n=2000).
        let count = |kind| a.iter().filter(|&&k| k == kind).count();
        assert!(count(Endpoint::Analyze) > 1000, "analyze dominates");
        assert!(count(Endpoint::Whatif) > 200, "whatif present");
        assert!(count(Endpoint::Validate) > 20, "validate present");
        assert!(count(Endpoint::Harden) > 20, "harden present");
        // Pure weights: a single-kind mix degenerates to that kind.
        let only = Mix { analyze: 0, whatif: 0, validate: 1, harden: 0 };
        assert!((0..100).all(|i| only.kind_at(3, i) == Endpoint::Validate));
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let s = LatencySummary::from_micros((1..=10_000).collect());
        assert!(s.p50_ms <= s.p90_ms && s.p90_ms <= s.p99_ms);
        assert!(s.p99_ms <= s.p999_ms && s.p999_ms <= s.max_ms);
        assert!((s.max_ms - 10.0).abs() < 1e-9);
        let empty = LatencySummary::from_micros(Vec::new());
        assert!((empty.max_ms - 0.0).abs() < 1e-9);
    }

    #[test]
    fn report_json_roundtrips() {
        let report = LoadReport {
            requests: 10,
            ok: 9,
            errors: 1,
            transport_errors: 0,
            reconnects: 2,
            seed: 7,
            loop_mode: "open".into(),
            target_rps: Some(50.0),
            elapsed_ms: 123,
            throughput_rps: 73.2,
            latency: LatencySummary::from_micros(vec![100, 200, 300]),
            slo_ms: 500,
            slo_attainment: 1.0,
            counts: EndpointCounts { analyze: 7, whatif: 2, validate: 1, harden: 0 },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: LoadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests, 10);
        assert_eq!(back.reconnects, 2);
        assert!(back.slo_met());
    }
}
