//! Lock-free serving metrics and their plaintext exposition format.
//!
//! Everything is an [`AtomicU64`]; recording never blocks a worker. The
//! `/metrics` endpoint renders the registry in a Prometheus-style plaintext
//! format with a **stable line order**, so scrapes diff cleanly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bucket bounds (milliseconds) of the latency histograms; a final
/// implicit `+Inf` bucket catches the rest.
pub const LATENCY_BUCKETS_MS: [u64; 12] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000];

/// The queue-consuming endpoints with per-endpoint histograms.
pub const ENDPOINTS: [&str; 3] = ["analyze", "harden", "whatif"];

/// Statuses tracked individually; everything else lands in `other`.
const STATUSES: [u16; 7] = [200, 400, 404, 408, 413, 500, 503];

/// A cumulative histogram of request latencies.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS_MS.len()],
    inf: AtomicU64,
    sum_ms: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn observe(&self, latency: Duration) {
        let ms = u64::try_from(latency.as_millis()).unwrap_or(u64::MAX);
        match LATENCY_BUCKETS_MS.iter().position(|&b| ms <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.inf.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_ms.fetch_add(ms, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, out: &mut String, endpoint: &str) {
        let mut cumulative = 0;
        for (i, &bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "rsnd_request_latency_ms_bucket{{endpoint=\"{endpoint}\",le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.inf.load(Ordering::Relaxed);
        out.push_str(&format!(
            "rsnd_request_latency_ms_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "rsnd_request_latency_ms_sum{{endpoint=\"{endpoint}\"}} {}\n",
            self.sum_ms.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "rsnd_request_latency_ms_count{{endpoint=\"{endpoint}\"}} {}\n",
            self.count.load(Ordering::Relaxed)
        ));
    }
}

/// The daemon's metrics registry; one instance shared by every thread.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; ENDPOINTS.len()],
    requests_other: AtomicU64,
    responses: [AtomicU64; STATUSES.len()],
    responses_other: AtomicU64,
    queue_depth: AtomicU64,
    queue_rejected: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_panicked: AtomicU64,
    workers_respawned: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    workspace_cache_hits: AtomicU64,
    workspace_cache_misses: AtomicU64,
    store_reads: AtomicU64,
    store_writes: AtomicU64,
    store_wal_replays: AtomicU64,
    store_corrupt_records: AtomicU64,
    registry_networks: AtomicU64,
    open_sockets: AtomicU64,
    keepalive_conns: AtomicU64,
    latency: [LatencyHistogram; ENDPOINTS.len()],
}

impl Metrics {
    /// Creates an all-zero registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn endpoint_index(endpoint: &str) -> Option<usize> {
        ENDPOINTS.iter().position(|&e| e == endpoint)
    }

    /// Counts an accepted request for `endpoint`.
    pub fn record_request(&self, endpoint: &str) {
        match Self::endpoint_index(endpoint) {
            Some(i) => self.requests[i].fetch_add(1, Ordering::Relaxed),
            None => self.requests_other.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Counts a response with the given status code.
    pub fn record_response(&self, status: u16) {
        match STATUSES.iter().position(|&s| s == status) {
            Some(i) => self.responses[i].fetch_add(1, Ordering::Relaxed),
            None => self.responses_other.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Number of responses sent with the given status so far.
    #[must_use]
    pub fn responses_with_status(&self, status: u16) -> u64 {
        match STATUSES.iter().position(|&s| s == status) {
            Some(i) => self.responses[i].load(Ordering::Relaxed),
            None => self.responses_other.load(Ordering::Relaxed),
        }
    }

    /// Sets the current queue depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// The current queue depth gauge.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Counts a job refused because the queue was full.
    pub fn record_queue_rejected(&self) {
        self.queue_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job interrupted by its deadline (a 408 response).
    pub fn record_job_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs interrupted by their deadline so far.
    #[must_use]
    pub fn jobs_cancelled(&self) -> u64 {
        self.jobs_cancelled.load(Ordering::Relaxed)
    }

    /// Counts a job whose execution panicked (isolated to a 500 response).
    pub fn record_job_panicked(&self) {
        self.jobs_panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs whose execution panicked so far.
    #[must_use]
    pub fn jobs_panicked(&self) -> u64 {
        self.jobs_panicked.load(Ordering::Relaxed)
    }

    /// Counts a worker thread replaced after dying unexpectedly.
    pub fn record_worker_respawned(&self) {
        self.workers_respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker threads respawned so far.
    #[must_use]
    pub fn workers_respawned(&self) -> u64 {
        self.workers_respawned.load(Ordering::Relaxed)
    }

    /// Counts a cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache hits so far.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Counts a what-if answered from an already-warm workspace.
    pub fn record_workspace_cache_hit(&self) {
        self.workspace_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a what-if that had to parse and fully sweep its network.
    pub fn record_workspace_cache_miss(&self) {
        self.workspace_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Workspace-cache hits so far.
    #[must_use]
    pub fn workspace_cache_hits(&self) -> u64 {
        self.workspace_cache_hits.load(Ordering::Relaxed)
    }

    /// Workspace-cache misses so far.
    #[must_use]
    pub fn workspace_cache_misses(&self) -> u64 {
        self.workspace_cache_misses.load(Ordering::Relaxed)
    }

    /// Counts a value served from the persistent store.
    pub fn record_store_read(&self) {
        self.store_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a record committed to the persistent store's WAL.
    pub fn record_store_write(&self) {
        self.store_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Store reads so far.
    #[must_use]
    pub fn store_reads(&self) -> u64 {
        self.store_reads.load(Ordering::Relaxed)
    }

    /// Store writes so far.
    #[must_use]
    pub fn store_writes(&self) -> u64 {
        self.store_writes.load(Ordering::Relaxed)
    }

    /// Adds WAL frames replayed during store recovery (recorded once at
    /// boot from the store's `RecoveryReport`).
    pub fn add_store_wal_replays(&self, n: u64) {
        self.store_wal_replays.fetch_add(n, Ordering::Relaxed);
    }

    /// WAL frames replayed at boot.
    #[must_use]
    pub fn store_wal_replays(&self) -> u64 {
        self.store_wal_replays.load(Ordering::Relaxed)
    }

    /// Adds torn/corrupt frames discarded during store recovery.
    pub fn add_store_corrupt_records(&self, n: u64) {
        self.store_corrupt_records.fetch_add(n, Ordering::Relaxed);
    }

    /// Corrupt store frames discarded at boot.
    #[must_use]
    pub fn store_corrupt_records(&self) -> u64 {
        self.store_corrupt_records.load(Ordering::Relaxed)
    }

    /// Sets the registered-network gauge.
    pub fn set_registry_networks(&self, n: u64) {
        self.registry_networks.store(n, Ordering::Relaxed);
    }

    /// Networks currently registered.
    #[must_use]
    pub fn registry_networks(&self) -> u64 {
        self.registry_networks.load(Ordering::Relaxed)
    }

    /// Sets the open-socket gauge (accepted connections currently held by
    /// the event loop, the listener excluded).
    pub fn set_open_sockets(&self, n: u64) {
        self.open_sockets.store(n, Ordering::Relaxed);
    }

    /// Open sockets currently held by the event loop.
    #[must_use]
    pub fn open_sockets(&self) -> u64 {
        self.open_sockets.load(Ordering::Relaxed)
    }

    /// Sets the keep-alive connection gauge (open sockets that have
    /// completed at least one request and stayed open for more).
    pub fn set_keepalive_conns(&self, n: u64) {
        self.keepalive_conns.store(n, Ordering::Relaxed);
    }

    /// Keep-alive connections currently held by the event loop.
    #[must_use]
    pub fn keepalive_conns(&self) -> u64 {
        self.keepalive_conns.load(Ordering::Relaxed)
    }

    /// Records the end-to-end latency of a completed `endpoint` job.
    pub fn record_latency(&self, endpoint: &str, latency: Duration) {
        if let Some(i) = Self::endpoint_index(endpoint) {
            self.latency[i].observe(latency);
        }
    }

    /// Renders the registry in the plaintext exposition format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (i, endpoint) in ENDPOINTS.iter().enumerate() {
            out.push_str(&format!(
                "rsnd_requests_total{{endpoint=\"{endpoint}\"}} {}\n",
                self.requests[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "rsnd_requests_total{{endpoint=\"other\"}} {}\n",
            self.requests_other.load(Ordering::Relaxed)
        ));
        for (i, status) in STATUSES.iter().enumerate() {
            out.push_str(&format!(
                "rsnd_responses_total{{status=\"{status}\"}} {}\n",
                self.responses[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "rsnd_responses_total{{status=\"other\"}} {}\n",
            self.responses_other.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("rsnd_queue_depth {}\n", self.queue_depth.load(Ordering::Relaxed)));
        out.push_str(&format!(
            "rsnd_queue_rejected_total {}\n",
            self.queue_rejected.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("rsnd_jobs_cancelled_total {}\n", self.jobs_cancelled()));
        out.push_str(&format!("rsnd_jobs_panicked_total {}\n", self.jobs_panicked()));
        out.push_str(&format!("rsnd_workers_respawned_total {}\n", self.workers_respawned()));
        let (hits, misses) = (self.cache_hits(), self.cache_misses());
        out.push_str(&format!("rsnd_cache_hits_total {hits}\n"));
        out.push_str(&format!("rsnd_cache_misses_total {misses}\n"));
        let rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
        out.push_str(&format!("rsnd_cache_hit_rate {rate:.4}\n"));
        out.push_str(&format!("rsnd_workspace_cache_hits_total {}\n", self.workspace_cache_hits()));
        out.push_str(&format!(
            "rsnd_workspace_cache_misses_total {}\n",
            self.workspace_cache_misses()
        ));
        out.push_str(&format!("rsnd_store_reads_total {}\n", self.store_reads()));
        out.push_str(&format!("rsnd_store_writes_total {}\n", self.store_writes()));
        out.push_str(&format!("rsnd_store_wal_replays_total {}\n", self.store_wal_replays()));
        out.push_str(&format!(
            "rsnd_store_corrupt_records_total {}\n",
            self.store_corrupt_records()
        ));
        out.push_str(&format!("rsnd_registry_networks {}\n", self.registry_networks()));
        out.push_str(&format!("rsnd_open_sockets {}\n", self.open_sockets()));
        out.push_str(&format!("rsnd_keepalive_conns {}\n", self.keepalive_conns()));
        for (i, endpoint) in ENDPOINTS.iter().enumerate() {
            self.latency[i].render(&mut out, endpoint);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_show_up_in_the_rendering() {
        let m = Metrics::new();
        m.record_request("analyze");
        m.record_request("analyze");
        m.record_request("harden");
        m.record_request("metrics");
        m.record_response(200);
        m.record_response(503);
        m.record_response(418);
        m.set_queue_depth(3);
        m.record_queue_rejected();
        m.record_cache_hit();
        m.record_cache_miss();
        m.record_request("whatif");
        m.record_workspace_cache_hit();
        m.record_workspace_cache_hit();
        m.record_workspace_cache_miss();
        let text = m.render();
        assert!(text.contains("rsnd_requests_total{endpoint=\"analyze\"} 2"), "{text}");
        assert!(text.contains("rsnd_requests_total{endpoint=\"harden\"} 1"), "{text}");
        assert!(text.contains("rsnd_requests_total{endpoint=\"whatif\"} 1"), "{text}");
        assert!(text.contains("rsnd_workspace_cache_hits_total 2"), "{text}");
        assert!(text.contains("rsnd_workspace_cache_misses_total 1"), "{text}");
        assert!(text.contains("rsnd_requests_total{endpoint=\"other\"} 1"), "{text}");
        assert!(text.contains("rsnd_responses_total{status=\"200\"} 1"), "{text}");
        assert!(text.contains("rsnd_responses_total{status=\"503\"} 1"), "{text}");
        assert!(text.contains("rsnd_responses_total{status=\"other\"} 1"), "{text}");
        assert!(text.contains("rsnd_queue_depth 3"), "{text}");
        assert!(text.contains("rsnd_queue_rejected_total 1"), "{text}");
        assert!(text.contains("rsnd_cache_hit_rate 0.5000"), "{text}");
    }

    #[test]
    fn resilience_counters_show_up_in_the_rendering() {
        let m = Metrics::new();
        m.record_job_cancelled();
        m.record_job_cancelled();
        m.record_job_panicked();
        m.record_worker_respawned();
        assert_eq!(m.jobs_cancelled(), 2);
        assert_eq!(m.jobs_panicked(), 1);
        assert_eq!(m.workers_respawned(), 1);
        let text = m.render();
        assert!(text.contains("rsnd_jobs_cancelled_total 2"), "{text}");
        assert!(text.contains("rsnd_jobs_panicked_total 1"), "{text}");
        assert!(text.contains("rsnd_workers_respawned_total 1"), "{text}");
    }

    #[test]
    fn store_and_event_loop_metrics_show_up_in_the_rendering() {
        let m = Metrics::new();
        m.record_store_read();
        m.record_store_read();
        m.record_store_write();
        m.add_store_wal_replays(5);
        m.add_store_corrupt_records(1);
        m.set_registry_networks(3);
        m.set_open_sockets(10_000);
        m.set_keepalive_conns(9_998);
        let text = m.render();
        assert!(text.contains("rsnd_store_reads_total 2"), "{text}");
        assert!(text.contains("rsnd_store_writes_total 1"), "{text}");
        assert!(text.contains("rsnd_store_wal_replays_total 5"), "{text}");
        assert!(text.contains("rsnd_store_corrupt_records_total 1"), "{text}");
        assert!(text.contains("rsnd_registry_networks 3"), "{text}");
        assert!(text.contains("rsnd_open_sockets 10000"), "{text}");
        assert!(text.contains("rsnd_keepalive_conns 9998"), "{text}");
        assert_eq!(m.store_reads(), 2);
        assert_eq!(m.registry_networks(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record_latency("analyze", Duration::from_millis(1));
        m.record_latency("analyze", Duration::from_millis(30));
        m.record_latency("analyze", Duration::from_secs(60));
        let text = m.render();
        assert!(
            text.contains("rsnd_request_latency_ms_bucket{endpoint=\"analyze\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("rsnd_request_latency_ms_bucket{endpoint=\"analyze\",le=\"50\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("rsnd_request_latency_ms_bucket{endpoint=\"analyze\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("rsnd_request_latency_ms_count{endpoint=\"analyze\"} 3"), "{text}");
    }

    #[test]
    fn rendering_order_is_stable() {
        let m = Metrics::new();
        assert_eq!(m.render(), m.render());
        let text = m.render();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("rsnd_requests_total{endpoint=\"analyze\"}"));
    }
}
