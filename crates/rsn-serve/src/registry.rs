//! The content-addressed network registry.
//!
//! Parsing the network text and building its graph used to be paid by every
//! job. The registry pays it once per *network*: entries are
//! [`ParsedNetwork`]s keyed by their canonical content hash
//! ([`robust_rsn::canonical_network_hash`]), shared behind `Arc` across
//! worker threads. Registration (`PUT /v1/networks`) persists the network
//! text into the [`Store`]'s `Registry` namespace, so a restarted daemon
//! reloads every registered network and keeps answering
//! `network_hash`-referenced jobs without the client resending the text.
//!
//! Inline submissions flow through the registry too: a memo keyed by the
//! FNV-1a hash of the raw text (with a full-text equality check, so a 64-bit
//! collision degrades to a re-parse rather than the wrong network) makes a
//! burst of identical inline jobs parse once, without granting inline texts
//! a place in the persistent listing.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, PoisonError};

use rsn_store::{Namespace, Store, StoreError};

use crate::cache::fnv1a;
use crate::metrics::Metrics;
use crate::wire::{JobError, NetworkListEntry, ParsedNetwork};

/// Soft cap on the inline-text memo: beyond this many distinct texts the
/// memo is cleared wholesale (the registry proper is unaffected).
const INLINE_MEMO_CAP: usize = 4096;

struct Inner {
    /// Registered networks by canonical hash hex (also holds parsed entries
    /// for inline memo hits, under the same identity).
    by_hash: HashMap<String, Arc<ParsedNetwork>>,
    /// Persistent listing: hash hex → network name, sorted for `GET`.
    names: BTreeMap<String, String>,
    /// Inline-text memo: fnv1a(text) → entries with that text hash.
    text_memo: HashMap<u64, Vec<(String, Arc<ParsedNetwork>)>>,
}

/// A shared, optionally store-backed registry of parsed networks.
pub struct Registry {
    store: Option<Arc<Store>>,
    metrics: Arc<Metrics>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("registered", &inner.names.len())
            .field("persistent", &self.store.is_some())
            .finish()
    }
}

impl Registry {
    /// Creates a registry, loading every persisted network from `store`'s
    /// `Registry` namespace (when given). Texts that no longer parse —
    /// which would indicate a foreign or damaged store — are skipped rather
    /// than failing the boot.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the initial namespace scan fails.
    pub fn open(store: Option<Arc<Store>>, metrics: Arc<Metrics>) -> Result<Self, StoreError> {
        let mut inner =
            Inner { by_hash: HashMap::new(), names: BTreeMap::new(), text_memo: HashMap::new() };
        if let Some(store) = &store {
            for (key, value) in store.scan(Namespace::Registry)? {
                metrics.record_store_read();
                let (Ok(hex), Ok(text)) = (String::from_utf8(key), String::from_utf8(value)) else {
                    continue;
                };
                let Ok(parsed) = ParsedNetwork::from_text(&text) else {
                    continue;
                };
                inner.names.insert(hex.clone(), parsed.name().to_string());
                inner.by_hash.insert(hex, Arc::new(parsed));
            }
        }
        metrics.set_registry_networks(inner.names.len() as u64);
        Ok(Self { store, metrics, inner: Mutex::new(inner) })
    }

    /// Number of registered (persistent) networks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().names.len()
    }

    /// Returns `true` when no network is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a registered network by its canonical hash hex.
    #[must_use]
    pub fn get(&self, hash_hex: &str) -> Option<Arc<ParsedNetwork>> {
        let inner = self.lock();
        if !inner.names.contains_key(hash_hex) {
            return None;
        }
        inner.by_hash.get(hash_hex).cloned()
    }

    /// Resolves a `network_hash`-referenced job to its parsed network.
    ///
    /// # Errors
    ///
    /// [`JobError`] with status 404 and code `unknown_network` when no
    /// network with this hash was registered.
    pub fn lookup(&self, hash_hex: &str) -> Result<Arc<ParsedNetwork>, JobError> {
        self.get(hash_hex).ok_or_else(|| {
            JobError::new(
                404,
                "unknown_network",
                format!("no registered network with hash {hash_hex:?}"),
            )
        })
    }

    /// Parses inline `text` through the memo: repeated submissions of the
    /// same text share one [`ParsedNetwork`] (and therefore one parse, one
    /// graph build and one hash). Does not register the network.
    ///
    /// # Errors
    ///
    /// [`JobError`] with status 400 (`bad_network`) when the text does not
    /// parse.
    pub fn resolve_inline(&self, text: &str) -> Result<Arc<ParsedNetwork>, JobError> {
        let text_hash = fnv1a(text.as_bytes());
        {
            let inner = self.lock();
            if let Some(entries) = inner.text_memo.get(&text_hash) {
                for (memo_text, parsed) in entries {
                    if memo_text == text {
                        return Ok(Arc::clone(parsed));
                    }
                }
            }
        }
        let parsed = Arc::new(ParsedNetwork::from_text(text)?);
        let mut inner = self.lock();
        // Share identity with a registered copy of the same network when
        // one exists — cache keys already coincide via the canonical hash.
        let hex = parsed.hash.to_hex();
        let parsed = match inner.by_hash.get(&hex) {
            Some(existing) => Arc::clone(existing),
            None => {
                inner.by_hash.insert(hex, Arc::clone(&parsed));
                parsed
            }
        };
        if inner.text_memo.len() >= INLINE_MEMO_CAP {
            inner.text_memo.clear();
            // Inline-only parsed entries are reachable solely through the
            // memo; drop them with it so distinct inline networks cannot
            // grow `by_hash` without bound. Registered networks stay.
            let inner = &mut *inner;
            inner.by_hash.retain(|hex, _| inner.names.contains_key(hex));
        }
        inner.text_memo.entry(text_hash).or_default().push((text.to_string(), Arc::clone(&parsed)));
        Ok(parsed)
    }

    /// Registers `text`: parses it (through the memo), persists the text
    /// under its canonical hash, and adds it to the listing. Idempotent —
    /// re-registering the same network is a no-op returning the same entry.
    ///
    /// # Errors
    ///
    /// [`JobError`] with status 400 (`bad_network`) for unparsable text and
    /// 500 (`store_error`) when persisting fails.
    pub fn register(&self, text: &str) -> Result<Arc<ParsedNetwork>, JobError> {
        let parsed = self.resolve_inline(text)?;
        let hex = parsed.hash.to_hex();
        if let Some(store) = &self.store {
            let written = store
                .put(Namespace::Registry, hex.as_bytes(), parsed.text.as_bytes())
                .map_err(|e| {
                    JobError::new(500, "store_error", format!("persisting network failed: {e}"))
                })?;
            if written {
                self.metrics.record_store_write();
            }
        }
        let mut inner = self.lock();
        inner.names.insert(hex, parsed.name().to_string());
        self.metrics.set_registry_networks(inner.names.len() as u64);
        Ok(parsed)
    }

    /// Registers an already-parsed network (the streaming-upload path,
    /// where the raw text was never buffered): persists its canonical text
    /// under its canonical hash and adds it to the listing. Shares identity
    /// with an existing entry of the same hash. The inline-text memo is left
    /// alone — there is no client-supplied text to memoize.
    ///
    /// # Errors
    ///
    /// [`JobError`] with status 500 (`store_error`) when persisting fails.
    pub fn register_parsed(
        &self,
        parsed: Arc<ParsedNetwork>,
    ) -> Result<Arc<ParsedNetwork>, JobError> {
        let hex = parsed.hash.to_hex();
        let parsed = {
            let mut inner = self.lock();
            match inner.by_hash.get(&hex) {
                Some(existing) => Arc::clone(existing),
                None => {
                    inner.by_hash.insert(hex.clone(), Arc::clone(&parsed));
                    parsed
                }
            }
        };
        if let Some(store) = &self.store {
            let written = store
                .put(Namespace::Registry, hex.as_bytes(), parsed.text.as_bytes())
                .map_err(|e| {
                    JobError::new(500, "store_error", format!("persisting network failed: {e}"))
                })?;
            if written {
                self.metrics.record_store_write();
            }
        }
        let mut inner = self.lock();
        inner.names.insert(hex, parsed.name().to_string());
        self.metrics.set_registry_networks(inner.names.len() as u64);
        Ok(parsed)
    }

    /// The sorted listing of registered networks.
    #[must_use]
    pub fn list(&self) -> Vec<NetworkListEntry> {
        self.lock()
            .names
            .iter()
            .map(|(hash, name)| NetworkListEntry { network_hash: hash.clone(), name: name.clone() })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const NET: &str = "network r { seg a len=3 instrument(kind=sensor); seg b len=2; }";

    static NEXT: AtomicUsize = AtomicUsize::new(0);

    fn temp_store() -> (Arc<Store>, std::path::PathBuf) {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("rsn-registry-test-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.db");
        let (store, _) = Store::open(&path).unwrap();
        (Arc::new(store), path)
    }

    #[test]
    fn inline_resolution_is_memoized() {
        let registry = Registry::open(None, Arc::new(Metrics::new())).unwrap();
        let a = registry.resolve_inline(NET).unwrap();
        let b = registry.resolve_inline(NET).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second resolve must hit the memo");
        assert!(registry.is_empty(), "inline texts are not registered");
        assert!(registry.get(&a.hash.to_hex()).is_none());
    }

    #[test]
    fn register_then_lookup_roundtrips_and_lists() {
        let metrics = Arc::new(Metrics::new());
        let registry = Registry::open(None, Arc::clone(&metrics)).unwrap();
        let entry = registry.register(NET).unwrap();
        assert_eq!(registry.len(), 1);
        let looked = registry.lookup(&entry.hash.to_hex()).unwrap();
        assert!(Arc::ptr_eq(&entry, &looked));
        let listing = registry.list();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].name, "r");
        assert_eq!(listing[0].network_hash, entry.hash.to_hex());
        assert_eq!(metrics.registry_networks(), 1);
        // Unknown hashes are a structured 404.
        let err = registry.lookup(&"0".repeat(64)).unwrap_err();
        assert_eq!((err.status, err.code.as_str()), (404, "unknown_network"));
    }

    #[test]
    fn registration_persists_across_reopen() {
        let metrics = Arc::new(Metrics::new());
        let (store, path) = temp_store();
        let registry = Registry::open(Some(Arc::clone(&store)), Arc::clone(&metrics)).unwrap();
        let entry = registry.register(NET).unwrap();
        let hex = entry.hash.to_hex();
        drop(registry);
        drop(store);

        let (store, _) = Store::open(&path).unwrap();
        let reopened = Registry::open(Some(Arc::new(store)), Arc::new(Metrics::new())).unwrap();
        assert_eq!(reopened.len(), 1);
        let reloaded = reopened.lookup(&hex).unwrap();
        assert_eq!(reloaded.hash, entry.hash);
        assert_eq!(reloaded.text, NET);
    }

    #[test]
    fn reregistration_is_idempotent() {
        let metrics = Arc::new(Metrics::new());
        let (store, _) = temp_store();
        let registry = Registry::open(Some(store), Arc::clone(&metrics)).unwrap();
        registry.register(NET).unwrap();
        let writes = metrics.store_writes();
        registry.register(NET).unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(metrics.store_writes(), writes, "identical re-put writes nothing");
    }

    #[test]
    fn random_networks_roundtrip_through_store_with_stable_hashes() {
        // Property-style sweep: registering a random SP network, reopening
        // the store, and looking the entry back up must preserve both the
        // text and the canonical hash, for every seed.
        let (store, path) = temp_store();
        let registry = Registry::open(Some(store), Arc::new(Metrics::new())).unwrap();
        // Keyed by hash: seeds that happen to normalize to the same graph
        // are legitimately the same registry entry.
        let mut expected = BTreeMap::new();
        for seed in 0..24u64 {
            let s =
                rsn_benchmarks::random_structure(&rsn_benchmarks::RandomParams::default(), seed);
            let text = rsn_model::format::print_network(&format!("prop{seed}"), &s);
            let entry = registry.register(&text).unwrap();
            // Idempotence: re-registering the reprinted text is the same entry.
            let again = registry.register(&entry.text).unwrap();
            assert_eq!(again.hash, entry.hash, "seed {seed}");
            expected.insert(entry.hash.to_hex(), entry.text.clone());
        }
        drop(registry);

        let (store, _) = Store::open(&path).unwrap();
        let reopened = Registry::open(Some(Arc::new(store)), Arc::new(Metrics::new())).unwrap();
        assert_eq!(reopened.len(), expected.len());
        for (hex, text) in expected {
            let entry = reopened.lookup(&hex).unwrap();
            assert_eq!(entry.hash.to_hex(), hex);
            assert_eq!(entry.text, text);
        }
    }

    #[test]
    fn inline_memo_overflow_prunes_unregistered_entries() {
        let registry = Registry::open(None, Arc::new(Metrics::new())).unwrap();
        let kept = registry.register(NET).unwrap();
        // Push enough distinct inline texts through to trip the memo cap.
        for len in 1..=(INLINE_MEMO_CAP + 1) {
            let text = format!("network inline {{ seg a len={len} instrument(kind=sensor); }}");
            registry.resolve_inline(&text).unwrap();
        }
        let inner = registry.lock();
        assert!(
            inner.by_hash.len() <= INLINE_MEMO_CAP + 1,
            "unregistered inline entries must be pruned, saw {}",
            inner.by_hash.len()
        );
        assert!(inner.by_hash.contains_key(&kept.hash.to_hex()), "registered entries survive");
        drop(inner);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn bad_text_is_a_structured_400() {
        let registry = Registry::open(None, Arc::new(Metrics::new())).unwrap();
        let err = registry.register("not a network").unwrap_err();
        assert_eq!((err.status, err.code.as_str()), (400, "bad_network"));
    }
}
