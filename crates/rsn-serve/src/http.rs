//! A minimal HTTP/1.1 subset over `std::net` streams.
//!
//! `rsnd` speaks exactly as much HTTP as its clients need: `Content-Length`
//! bodies, no chunked transfer encoding, HTTP/1.1 keep-alive with pipelined
//! requests on the server's event loop ([`parse_request_bytes`] is the
//! incremental, buffer-driven parser it uses), plus the older blocking
//! one-request-per-connection helpers for the client side. Both the server
//! and the [`client`](crate::client) use this module, so the wire behaviour
//! is symmetric by construction.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line plus headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parse/IO failure while reading a request, mapped to a status code.
#[derive(Debug)]
pub struct HttpError {
    /// Status code the server should answer with.
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self { status, message: message.into() }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.status)
    }
}

impl std::error::Error for HttpError {}

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased as received.
    pub method: String,
    /// Request path including any query string, e.g. `/v1/analyze`.
    pub path: String,
    /// Header name/value pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw request body.
    pub body: Vec<u8>,
}

impl Request {
    /// The first header value with the given (lowercase) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// An HTTP response ready for [`write_response`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status and body.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Self { status, headers: Vec::new(), content_type: "application/json", body }
    }

    /// A plaintext response with the given status and body.
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Self { status, headers: Vec::new(), content_type: "text/plain; charset=utf-8", body }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The first header value with the given name. Server-built responses
    /// keep the name as written; [`read_response`] lowercases names, so
    /// client-side lookups use lowercase.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// The canonical reason phrase for the status codes this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Reads one request from `stream`, honouring its configured read timeout.
///
/// # Errors
///
/// [`HttpError`] with status 400 for malformed requests, 408 for timeouts,
/// and 413 when the head or body exceeds `max_body` / the head cap.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    let body_start;
    loop {
        let n = stream.read(&mut buf).map_err(map_io)?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed before end of headers"));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_head_end(&head) {
            body_start = pos;
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(413, "request head too large"));
        }
    }

    let head_text = std::str::from_utf8(&head[..body_start])
        .map_err(|_| HttpError::new(400, "request head is not valid utf-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::new(400, format!("malformed request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, format!("unsupported protocol {version:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = content_length(&headers)?.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }

    let mut body = head[body_start + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(map_io)?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed before end of body"));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    Ok(Request { method: method.to_ascii_uppercase(), path: path.to_string(), headers, body })
}

/// A request parsed out of a connection buffer by [`parse_request_bytes`]:
/// the request itself, how many buffer bytes it consumed, and whether the
/// connection should stay open for more requests afterwards.
#[derive(Clone, Debug)]
pub struct ParsedRequest {
    /// The parsed request.
    pub request: Request,
    /// Bytes of the buffer this request occupied (head + body).
    pub consumed: usize,
    /// Keep-alive decision: `true` for HTTP/1.1 unless the request said
    /// `Connection: close`; `false` for HTTP/1.0 unless it said
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Incrementally parses the next pipelined request out of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a prefix of a request
/// (more bytes are needed), and `Ok(Some(_))` once a full head and body are
/// present — the caller drains `consumed` bytes and may call again for the
/// next pipelined request.
///
/// # Errors
///
/// [`HttpError`] with status 400 for malformed heads and 413 when the head
/// exceeds the head cap or the declared body exceeds `max_body`. Errors are
/// unrecoverable for the connection: the byte stream is no longer framed.
pub fn parse_request_bytes(
    buf: &[u8],
    max_body: usize,
) -> Result<Option<ParsedRequest>, HttpError> {
    let Some(head) = parse_request_head(buf)? else {
        return Ok(None);
    };
    if head.content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {} bytes exceeds the {max_body}-byte limit", head.content_length),
        ));
    }
    if buf.len() < head.body_start + head.content_length {
        return Ok(None);
    }
    let body = buf[head.body_start..head.body_start + head.content_length].to_vec();
    let consumed = head.body_start + head.content_length;
    let ParsedHead { method, path, headers, keep_alive, .. } = head;
    let request = Request { method, path, headers, body };
    Ok(Some(ParsedRequest { request, consumed, keep_alive }))
}

/// A request head parsed out of a connection buffer by
/// [`parse_request_head`] — everything known before the body arrives, for
/// callers that stream the body instead of buffering it.
#[derive(Clone, Debug)]
pub struct ParsedHead {
    /// Upper-cased request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// Declared body length (0 when absent).
    pub content_length: usize,
    /// Offset into the buffer where the body begins.
    pub body_start: usize,
    /// Keep-alive decision (see [`ParsedRequest::keep_alive`]).
    pub keep_alive: bool,
}

impl ParsedHead {
    /// The first value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Incrementally parses the next request head out of `buf`, without
/// requiring (or bounding) the body. Returns `Ok(None)` while the head is
/// still incomplete. [`parse_request_bytes`] builds on this; callers that
/// stream large bodies use it directly and consume `body_start` bytes
/// themselves.
///
/// # Errors
///
/// [`HttpError`] with status 400 for malformed heads and 413 when the head
/// exceeds the head cap.
pub fn parse_request_head(buf: &[u8]) -> Result<Option<ParsedHead>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(413, "request head too large"));
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::new(413, "request head too large"));
    }
    let head_text = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "request head is not valid utf-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::new(400, format!("malformed request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, format!("unsupported protocol {version:?}")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length: usize = content_length(&headers)?.unwrap_or(0);
    let connection =
        headers.iter().find(|(k, _)| k == "connection").map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = if version == "HTTP/1.0" {
        connection.as_deref() == Some("keep-alive")
    } else {
        connection.as_deref() != Some("close")
    };
    Ok(Some(ParsedHead {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        content_length,
        body_start: head_end + 4,
        keep_alive,
    }))
}

/// Serializes `response` to wire bytes, with `Connection: keep-alive` or
/// `close` per `keep_alive`.
#[must_use]
pub fn encode_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(response.body.as_bytes());
    bytes
}

/// Writes `response` to `stream` with `Connection: close` semantics.
///
/// # Errors
///
/// Propagates IO errors from the stream.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    stream.write_all(&encode_response(response, false))?;
    stream.flush()
}

/// Incrementally parses the next `Content-Length`-framed response out of a
/// client buffer — the keep-alive/pipelining counterpart of
/// [`read_response`]. Returns the response plus bytes consumed, or
/// `Ok(None)` when the buffer holds only a prefix.
///
/// # Errors
///
/// [`HttpError`] with status 400 for malformed responses.
pub fn parse_response_bytes(buf: &[u8]) -> Result<Option<(Response, usize)>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "response head is not valid utf-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::new(400, format!("malformed status line {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let content_length: usize = content_length(&headers)?
        .ok_or_else(|| HttpError::new(400, "keep-alive response without content-length"))?;
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
        .map_err(|_| HttpError::new(400, "response body is not valid utf-8"))?;
    Ok(Some((Response { status, headers, content_type: "", body }, body_start + content_length)))
}

/// Reads a full `Connection: close` response from `stream` (client side).
///
/// # Errors
///
/// [`HttpError`] with status 400 for malformed responses or stream errors.
pub fn read_response(stream: &mut TcpStream) -> Result<Response, HttpError> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(map_io)?;
    let head_end =
        find_head_end(&raw).ok_or_else(|| HttpError::new(400, "truncated response head"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| HttpError::new(400, "response head is not valid utf-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::new(400, format!("malformed status line {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| HttpError::new(400, "response body is not valid utf-8"))?;
    Ok(Response { status, headers, content_type: "", body })
}

/// Resolves the `Content-Length` of a parsed header list.
///
/// RFC 9112 §6.3: a message with more than one `Content-Length` field (or a
/// single field whose value is not one valid integer) has ambiguous framing
/// — on a keep-alive connection a smuggled second value silently desyncs
/// every pipelined message that follows. Such messages are rejected with 400
/// and the connection must be closed.
fn content_length(headers: &[(String, String)]) -> Result<Option<usize>, HttpError> {
    let mut it = headers.iter().filter(|(k, _)| k == "content-length");
    let Some((_, v)) = it.next() else { return Ok(None) };
    if it.next().is_some() {
        return Err(HttpError::new(400, "duplicate content-length header"));
    }
    // A comma-joined list ("5, 5") fails the integer parse and is rejected
    // the same way: the framing is not unambiguous.
    let n = v.parse().map_err(|_| HttpError::new(400, format!("bad content-length {v:?}")))?;
    Ok(Some(n))
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

fn map_io(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            HttpError::new(408, "timed out reading from peer")
        }
        _ => HttpError::new(400, format!("io error: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream, 1024 * 1024);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            roundtrip(b"POST /v1/analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/analyze");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = roundtrip(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        let err = roundtrip(b"NOPE\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn rejects_oversized_bodies() {
        let err = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn incremental_parser_handles_pipelined_requests() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        buf.extend_from_slice(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        let first = parse_request_bytes(&buf, 1024).unwrap().unwrap();
        assert_eq!(first.request.method, "POST");
        assert_eq!(first.request.body, b"hello");
        assert!(first.keep_alive, "HTTP/1.1 defaults to keep-alive");
        buf.drain(..first.consumed);
        let second = parse_request_bytes(&buf, 1024).unwrap().unwrap();
        assert_eq!(second.request.path, "/metrics");
        assert!(!second.keep_alive, "Connection: close turns keep-alive off");
        buf.drain(..second.consumed);
        assert!(buf.is_empty());
        assert!(parse_request_bytes(&buf, 1024).unwrap().is_none());
    }

    #[test]
    fn incremental_parser_waits_for_partial_requests() {
        let full = b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..full.len() {
            assert!(
                parse_request_bytes(&full[..cut], 1024).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        assert!(parse_request_bytes(full, 1024).unwrap().is_some());
    }

    #[test]
    fn duplicate_content_length_is_rejected_everywhere() {
        // RFC 9112 §6.3: conflicting Content-Length fields desync framing on
        // a pipelined connection. A first-match-wins parser would read 5
        // bytes here and treat the rest of "hello-smuggled" as the next
        // pipelined request; all three parse sites must 400 instead.
        let raw =
            b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 14\r\n\r\nhello-smuggled";
        let err = parse_request_bytes(raw, 1024).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("content-length"), "{}", err.message);
        let err = roundtrip(raw).unwrap_err();
        assert_eq!(err.status, 400);
        // Identical duplicates are just as ambiguous — reject, don't merge.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(parse_request_bytes(raw, 1024).unwrap_err().status, 400);
        // Client side: a duplicate-length response must not desync the
        // keep-alive response stream either.
        let resp = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nokok";
        assert_eq!(parse_response_bytes(resp).unwrap_err().status, 400);
        // A comma-joined value is not a single valid integer.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello";
        assert_eq!(parse_request_bytes(raw, 1024).unwrap_err().status, 400);
    }

    #[test]
    fn incremental_parser_rejects_garbage_and_oversize() {
        assert_eq!(parse_request_bytes(b"NOPE\r\n\r\n", 1024).unwrap_err().status, 400);
        let oversized = b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        assert_eq!(parse_request_bytes(oversized, 1024).unwrap_err().status, 413);
        // A head that never terminates trips the cap even without \r\n\r\n.
        let endless = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert_eq!(parse_request_bytes(&endless, 1024).unwrap_err().status, 413);
        // HTTP/1.0 defaults to close unless it opts in.
        let old = parse_request_bytes(b"GET / HTTP/1.0\r\n\r\n", 1024).unwrap().unwrap();
        assert!(!old.keep_alive);
        let old = parse_request_bytes(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 1024)
            .unwrap()
            .unwrap();
        assert!(old.keep_alive);
    }

    #[test]
    fn encoded_responses_parse_back_incrementally() {
        let resp = Response::json(200, "{\"ok\":true}".to_string()).with_header("X-Cache", "hit");
        let mut bytes = encode_response(&resp, true);
        bytes.extend_from_slice(&encode_response(&Response::text(503, "busy".into()), false));
        let (first, consumed) = parse_response_bytes(&bytes).unwrap().unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.body, "{\"ok\":true}");
        assert_eq!(first.header("connection"), Some("keep-alive"));
        assert_eq!(first.header("x-cache"), Some("hit"));
        bytes.drain(..consumed);
        let (second, consumed) = parse_response_bytes(&bytes).unwrap().unwrap();
        assert_eq!(second.status, 503);
        assert_eq!(second.header("connection"), Some("close"));
        bytes.drain(..consumed);
        assert!(parse_response_bytes(&bytes).unwrap().is_none());
    }

    #[test]
    fn response_roundtrips_through_the_client_parser() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let resp =
                Response::json(200, "{\"ok\":true}".to_string()).with_header("X-Cache", "hit");
            write_response(&mut stream, &resp).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let resp = read_response(&mut stream).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"ok\":true}");
        // The client parser lowercases header names.
        assert_eq!(resp.header("x-cache"), Some("hit"));
    }
}
