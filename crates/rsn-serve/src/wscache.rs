//! An LRU of warm [`Workspace`]s shared across requests.
//!
//! Historically `rsnd` re-parsed the network text and re-ran the full
//! criticality sweep for every job — even when a burst of what-if queries
//! targeted the same network with the same spec. This cache fixes that:
//! workspaces are keyed by an FNV-1a content hash of the analysis-relevant
//! inputs (`ResolvedJob::workspace_key`: seed, weights source, aggregation,
//! SIB policy, network text), so every what-if against the same
//! configuration reuses one parsed, fully-swept [`Workspace`] and pays only
//! the incremental delta.
//!
//! Entries are `Arc<Mutex<Workspace>>`: the cache lock is held only for the
//! map lookup, never during an analysis, and a workspace evicted while a
//! worker still holds its `Arc` simply finishes that job and drops. Like the
//! result cache, the full key string is stored alongside the hash so a
//! 64-bit collision degrades to a miss instead of answering from the wrong
//! network.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use robust_rsn::Workspace;

use crate::cache::fnv1a;

struct Entry {
    key: String,
    workspace: Arc<Mutex<Workspace>>,
    last_used: u64,
}

/// A least-recently-used map from workspace keys to warm workspaces.
pub struct WorkspaceCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, Entry>,
}

impl std::fmt::Debug for WorkspaceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspaceCache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .finish()
    }
}

impl WorkspaceCache {
    /// Creates a cache holding at most `capacity` workspaces; `0` disables
    /// caching entirely.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity, tick: 0, entries: HashMap::new() }
    }

    /// Number of cached workspaces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the workspace for `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Arc<Mutex<Workspace>>> {
        self.tick += 1;
        let entry = self.entries.get_mut(&fnv1a(key.as_bytes()))?;
        if entry.key != key {
            return None; // 64-bit hash collision: treat as a miss.
        }
        entry.last_used = self.tick;
        Some(Arc::clone(&entry.workspace))
    }

    /// Stores `workspace` under `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn put(&mut self, key: &str, workspace: Arc<Mutex<Workspace>>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let hash = fnv1a(key.as_bytes());
        if !self.entries.contains_key(&hash) && self.entries.len() >= self.capacity {
            if let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(hash, Entry { key: key.to_string(), workspace, last_used: self.tick });
    }

    /// Drops the workspace stored under `key`, if any — used when a request
    /// cycle could not restore a shared workspace to its pristine state.
    pub fn remove(&mut self, key: &str) {
        let hash = fnv1a(key.as_bytes());
        if self.entries.get(&hash).is_some_and(|e| e.key == key) {
            self.entries.remove(&hash);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robust_rsn::Workspace;
    use rsn_model::{InstrumentKind, Structure};

    fn workspace(name: &str) -> Arc<Mutex<Workspace>> {
        let s = Structure::series(vec![Structure::instrument_seg("a", 2, InstrumentKind::Generic)]);
        let (net, built) = s.build(name).unwrap();
        let ws = Workspace::builder(net).with_structure(&built).build_workspace().unwrap();
        Arc::new(Mutex::new(ws))
    }

    #[test]
    fn get_after_put_returns_the_same_workspace() {
        let mut cache = WorkspaceCache::new(2);
        let ws = workspace("t");
        cache.put("k", Arc::clone(&ws));
        let got = cache.get("k").unwrap();
        assert!(Arc::ptr_eq(&ws, &got));
        assert!(cache.get("other").is_none());
    }

    #[test]
    fn evicts_least_recently_used_and_supports_remove() {
        let mut cache = WorkspaceCache::new(2);
        cache.put("a", workspace("a"));
        cache.put("b", workspace("b"));
        assert!(cache.get("a").is_some()); // refresh "a"
        cache.put("c", workspace("c")); // evicts "b"
        assert!(cache.get("b").is_none());
        assert_eq!(cache.len(), 2);
        cache.remove("a");
        assert!(cache.get("a").is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_follows_exact_recency_order() {
        let mut cache = WorkspaceCache::new(3);
        for key in ["a", "b", "c"] {
            cache.put(key, workspace(key));
        }
        // Recency (least → most recent) is now a, b, c. Touch in an order
        // that inverts it, then overflow one entry at a time and check the
        // victims come out exactly least-recently-used first.
        assert!(cache.get("c").is_some());
        assert!(cache.get("b").is_some());
        assert!(cache.get("a").is_some()); // recency: c, b, a
        cache.put("d", workspace("d")); // evicts c
        assert!(cache.get("c").is_none());
        assert!(cache.get("b").is_some()); // recency: a, d, b
        cache.put("e", workspace("e")); // evicts a
        assert!(cache.get("a").is_none());
        assert_eq!(cache.len(), 3);
        // Re-putting an existing key refreshes it instead of growing.
        cache.put("d", workspace("d2"));
        cache.put("f", workspace("f")); // evicts b (d was refreshed)
        assert!(cache.get("b").is_none());
        assert!(cache.get("d").is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = WorkspaceCache::new(0);
        cache.put("a", workspace("a"));
        assert!(cache.is_empty());
    }
}
