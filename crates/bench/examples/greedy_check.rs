//! Probe: greedy d10/c10 quality per uncritical-weight bound.
use robust_rsn::{
    analyze, solve_greedy, AnalysisOptions, CostModel, CriticalitySpec, HardeningProblem,
    PaperSpecParams,
};
use rsn_sp::tree_from_structure;

fn main() {
    for bound in [1u64, 3, 10] {
        println!("== max_uncritical_weight = {bound} ==");
        for name in ["TreeFlat", "TreeUnbalanced", "p34392", "MBIST_1_5_5", "MBIST_1_5_20"] {
            let spec = rsn_benchmarks::by_name(name).unwrap();
            let (net, built) = spec.generate().build(name).unwrap();
            let tree = tree_from_structure(&net, &built);
            let params = PaperSpecParams { max_uncritical_weight: bound, ..Default::default() };
            let w = CriticalitySpec::paper_random(&net, &params, 2022);
            let crit = analyze(&net, &tree, &w, &AnalysisOptions::default());
            let p = HardeningProblem::new(&net, &crit, &CostModel::default());
            let g = solve_greedy(&p);
            let d10 = g.min_cost_with_damage_at_most(p.total_damage() / 10).unwrap();
            let c10 = g.min_damage_with_cost_at_most(p.max_cost() / 10).unwrap();
            println!("  {name:<16} maxdmg {:>9} | d10: cost {:>6} ({:>4.1}%, {} prims) | c10: residual {:>5.1}%",
                p.total_damage(),
                d10.cost, 100.0*d10.cost as f64/p.max_cost() as f64, d10.hardened_count(),
                100.0*c10.damage as f64/p.total_damage() as f64);
        }
    }
}
