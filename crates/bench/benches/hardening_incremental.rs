//! Criterion benchmark: incremental what-if hardening on a warm
//! [`Workspace`] versus paying a full per-mode sweep per query.
//!
//! Each "what-if" answers *"harden primitive j — how much damage is
//! left?"* over a batch of the most critical primitives of a Table I
//! design. The `full_sweep` baseline is what a stateless server does:
//! rebuild the analysis from scratch (one full sweep) for every query.
//! The `incremental` path reuses one warm workspace — `harden` is an O(1)
//! mask flip and `undo` restores the baseline — which is exactly what
//! `rsnd` serves behind `POST /v1/whatif`.

use criterion::{criterion_group, criterion_main, Criterion};
use robust_rsn::{PaperSpecParams, Parallelism, Workspace};
use rsn_benchmarks::by_name;

const WHATIFS_PER_BATCH: usize = 6;

fn whatif_hardening(c: &mut Criterion) {
    for name in ["p34392", "MBIST_1_5_20"] {
        let spec = by_name(name).unwrap();
        let (net, built) = spec.generate().build(name).unwrap();
        let mut group = c.benchmark_group(format!("hardening_incremental/{name}"));

        let build = || {
            Workspace::builder(net.clone())
                .with_structure(&built)
                .with_paper_spec(PaperSpecParams::default(), 1)
                .with_parallelism(Parallelism::sequential())
                .build_workspace()
                .unwrap()
        };
        let mut warm = build();
        let targets: Vec<_> =
            warm.summary(WHATIFS_PER_BATCH).ranked.iter().map(|r| r.node).collect();

        group.bench_function("full_sweep", |b| {
            b.iter(|| {
                let mut fold = 0u64;
                for &target in &targets {
                    let mut ws = build();
                    ws.harden(target).unwrap();
                    fold ^= ws.total_damage();
                }
                fold
            })
        });

        group.bench_function("incremental", |b| {
            b.iter(|| {
                let mut fold = 0u64;
                for &target in &targets {
                    warm.harden(target).unwrap();
                    fold ^= warm.total_damage();
                    warm.undo().unwrap();
                }
                fold
            })
        });
        group.finish();
    }
}

criterion_group!(benches, whatif_hardening);
criterion_main!(benches);
