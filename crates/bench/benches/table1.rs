//! **Table I harness** — regenerates the paper's single experimental table:
//! robust RSN synthesis with SPEA2 under varying optimization criteria.
//!
//! For every design it reports, next to the paper's published values:
//! columns 4–5 (max cost / max damage of the initial assessment), the
//! (cost, damage) pair of the cheapest solution with damage ≤ 10 % (columns
//! 7–8), the (cost, damage) pair of the best solution with cost ≤ 10 %
//! (columns 9–10), and the wall-clock time (column 11).
//!
//! Absolute numbers differ from the paper (the original benchmark files and
//! cost model are unpublished — see DESIGN.md §3); the **shape** is what
//! must match: a few percent of the max cost suffices to remove ≥ 90 % of
//! the damage, and 10 % of the cost removes the bulk of it.
//!
//! Environment:
//! * `TABLE1_SCALE=full` — all 24 designs (the six 100k+-segment rows take
//!   tens of minutes each); default runs the designs up to
//!   `TABLE1_MAX_SEGS` segments with the paper's per-design generation
//!   counts (cap with `TABLE1_MAX_GENS`).
//! * `TABLE1_MAX_SEGS` (default 31000), `TABLE1_MAX_GENS` (default: none).
//! * `TABLE1_ONLY=name` — run a single design.
//! * `TABLE1_JSON=path` — also write machine-readable results.

use std::time::Instant;

use rsn_bench::{fmt_mmss, optimize, prepare, spea2_config};
use rsn_benchmarks::table_i;

#[derive(serde::Serialize)]
struct Row {
    name: String,
    segments: usize,
    muxes: usize,
    max_cost: u64,
    max_damage: u64,
    generations: usize,
    cost_at_damage10: Option<u64>,
    damage_at_damage10: Option<u64>,
    cost_at_cost10: Option<u64>,
    damage_at_cost10: Option<u64>,
    seconds: f64,
    paper_max_cost: u64,
    paper_max_damage: u64,
    paper_at_damage10: (u64, u64),
    paper_at_cost10: (u64, u64),
    paper_seconds: u32,
}

fn main() {
    // Ignore criterion-style CLI arguments (e.g. `--bench`).
    let full = std::env::var("TABLE1_SCALE").is_ok_and(|v| v == "full");
    let max_segs: usize =
        std::env::var("TABLE1_MAX_SEGS").ok().and_then(|v| v.parse().ok()).unwrap_or(31_000);
    let max_gens: usize =
        std::env::var("TABLE1_MAX_GENS").ok().and_then(|v| v.parse().ok()).unwrap_or(usize::MAX);
    let only = std::env::var("TABLE1_ONLY").ok();

    println!("TABLE I — ROBUST RSN SYNTHESIS, SPEA-II VARYING OPTIMIZATION CRITERIA");
    println!("(measured vs. paper; paper values in parentheses; '-' = constraint not reached)");
    println!(
        "{:<16} {:>8} {:>6} | {:>12} {:>14} | {:>5} | {:>18} {:>20} | {:>18} {:>20} | {:>8}",
        "design",
        "#segs",
        "#mux",
        "max cost",
        "max damage",
        "gens",
        "cost (dmg<=10%)",
        "damage (dmg<=10%)",
        "cost (cost<=10%)",
        "damage (cost<=10%)",
        "time"
    );

    let mut rows = Vec::new();
    for spec in table_i() {
        if let Some(only) = &only {
            if spec.name != only.as_str() {
                continue;
            }
        } else if !full && spec.segments > max_segs {
            continue;
        }
        let generations = if full { spec.generations } else { spec.generations.min(max_gens) };
        let start = Instant::now();
        let instance = prepare(&spec);
        let config = spea2_config(&spec, generations);
        let front = optimize(&instance, &config);
        let elapsed = start.elapsed();

        let max_cost = instance.problem.max_cost();
        let max_damage = instance.problem.total_damage();
        let at_d10 = front.min_cost_with_damage_at_most(max_damage / 10);
        let at_c10 = front.min_damage_with_cost_at_most(max_cost / 10);
        let fmt_pair = |v: Option<(u64, u64)>, paper: (u64, u64), idx: usize| match v {
            Some(pair) => format!("{} ({})", [pair.0, pair.1][idx], [paper.0, paper.1][idx]),
            None => format!("- ({})", [paper.0, paper.1][idx]),
        };
        let d10 = at_d10.map(|s| (s.cost, s.damage));
        let c10 = at_c10.map(|s| (s.cost, s.damage));
        println!(
            "{:<16} {:>8} {:>6} | {:>12} {:>14} | {:>5} | {:>18} {:>20} | {:>18} {:>20} | {:>8}",
            spec.name,
            spec.segments,
            spec.muxes,
            format!("{} ({})", max_cost, spec.paper.max_cost),
            format!("{} ({})", max_damage, spec.paper.max_damage),
            generations,
            fmt_pair(d10, spec.paper.at_damage10, 0),
            fmt_pair(d10, spec.paper.at_damage10, 1),
            fmt_pair(c10, spec.paper.at_cost10, 0),
            fmt_pair(c10, spec.paper.at_cost10, 1),
            format!(
                "{} ({})",
                fmt_mmss(elapsed),
                fmt_mmss(std::time::Duration::from_secs(spec.paper.time_s.into()))
            ),
        );
        rows.push(Row {
            name: spec.name.to_string(),
            segments: spec.segments,
            muxes: spec.muxes,
            max_cost,
            max_damage,
            generations,
            cost_at_damage10: d10.map(|p| p.0),
            damage_at_damage10: d10.map(|p| p.1),
            cost_at_cost10: c10.map(|p| p.0),
            damage_at_cost10: c10.map(|p| p.1),
            seconds: elapsed.as_secs_f64(),
            paper_max_cost: spec.paper.max_cost,
            paper_max_damage: spec.paper.max_damage,
            paper_at_damage10: spec.paper.at_damage10,
            paper_at_cost10: spec.paper.at_cost10,
            paper_seconds: spec.paper.time_s,
        });
    }

    // Shape summary: the paper's headline claims, checked quantitatively.
    println!("\nshape checks (paper claims):");
    let mut ok = 0usize;
    let mut total = 0usize;
    for r in &rows {
        if let (Some(cost), Some(damage)) = (r.cost_at_damage10, r.damage_at_damage10) {
            total += 1;
            let frac = cost as f64 / r.max_cost as f64;
            let dmg_ok = damage <= r.max_damage / 10;
            if frac <= 0.5 && dmg_ok {
                ok += 1;
            }
            println!(
                "  {:<16} hardening {:>5.1}% of max cost removes {:>5.1}% of the damage",
                r.name,
                100.0 * frac,
                100.0 * (1.0 - damage as f64 / r.max_damage as f64)
            );
        }
    }
    println!("  -> {ok}/{total} designs reach <=10% damage for a small fraction of the max cost");

    if let Ok(path) = std::env::var("TABLE1_JSON") {
        std::fs::write(&path, serde_json::to_string_pretty(&rows).expect("serializable"))
            .expect("writable json path");
        println!("json results written to {path}");
    }
}
