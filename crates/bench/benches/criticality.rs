//! Criterion benchmark: criticality-analysis scaling (experiment A2).
//!
//! Measures the O(N) hierarchical analysis against the O(N²) per-fault
//! reference over growing MBIST-style networks, plus the analysis cost on
//! real Table I designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use robust_rsn::{analyze, analyze_naive, AnalysisOptions, CriticalitySpec, PaperSpecParams};
use rsn_benchmarks::{by_name, mbist::mbist};
use rsn_sp::tree_from_structure;

fn analysis_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("criticality/scaling");
    for memories in [5usize, 20, 80] {
        let s = mbist(2, memories, 10, 8);
        let (net, built) = s.build("scale").unwrap();
        let tree = tree_from_structure(&net, &built);
        let weights = CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), 1);
        let n = net.stats().segments;
        group.bench_with_input(BenchmarkId::new("fast", n), &n, |b, _| {
            b.iter(|| analyze(&net, &tree, &weights, &AnalysisOptions::default()))
        });
        if n <= 500 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| analyze_naive(&net, &tree, &weights, &AnalysisOptions::default()))
            });
        }
    }
    group.finish();
}

fn analysis_on_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("criticality/table1");
    for name in ["TreeFlat_Ex", "p34392", "MBIST_1_5_20"] {
        let spec = by_name(name).unwrap();
        let (net, built) = spec.generate().build(name).unwrap();
        let tree = tree_from_structure(&net, &built);
        let weights = CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), 1);
        group.bench_function(name, |b| {
            b.iter(|| analyze(&net, &tree, &weights, &AnalysisOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, analysis_scaling, analysis_on_benchmarks);
criterion_main!(benches);
