//! Criterion micro-benchmark: the reachability kernels on the largest
//! Table I benchmark network (`p93791`, 1241 segments / 653 multiplexers).
//!
//! Groups:
//!
//! * `reach_kernel/mode_damage` — one fault mode end to end (4 reachability
//!   maps + damage sweep): bitset kernel vs boolean reference;
//! * `reach_kernel/graph_analysis` — the full single-threaded damage-vector
//!   sweep: `bitset` is the production path (now the mode-major batch
//!   kernel, 64 lane-packed modes per traversal), `boolean` the scalar
//!   `Vec<bool>` reference;
//! * `reach_kernel/batch` — the batched full sweep on its own label (the
//!   ≥4× acceptance criterion of the mode-major rewrite is `p93791` here
//!   against the scalar bitset median recorded before the rewrite);
//! * `double_fault/exact` — the exact all-pairs double-fault sweep on the
//!   mid-size Table I designs (lane-packed pair enumeration);
//! * `reach_kernel/fault_set` — multi-fault evaluation: an explicit pair
//!   plus a broken SIB control cell (frozen-select enumeration), and the
//!   sampled double-fault estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use robust_rsn::graph_analysis::{reference, ReachKernel};
use robust_rsn::{
    analyze_graph_with, double_fault_damage_with, fault_set_damage_with,
    sampled_double_fault_damage_with, AnalysisOptions, CriticalitySpec, PaperSpecParams,
    Parallelism, SibCellPolicy,
};
use rsn_benchmarks::by_name;
use rsn_model::{enumerate_single_faults, ControlSource, Fault, ScanNetwork};

fn largest_network() -> (ScanNetwork, CriticalitySpec) {
    let spec = by_name("p93791").expect("registered design");
    let (net, _) = spec.generate().build("p93791").expect("valid structure");
    let weights = CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), 1);
    (net, weights)
}

fn mode_damage(c: &mut Criterion) {
    let (net, weights) = largest_network();
    let kernel = ReachKernel::new(&net, &weights);
    let mut scratch = kernel.scratch();
    let broken = net.segments().nth(net.segments().count() / 2).expect("a segment");
    let frozen_mux = net.muxes().next().expect("a mux");
    let mut group = c.benchmark_group("reach_kernel/mode_damage");
    group.bench_function("bitset/broken", |b| {
        b.iter(|| kernel.mode_damage(&mut scratch, &[broken], &[]))
    });
    group.bench_function("boolean/broken", |b| {
        b.iter(|| reference::mode_damage(&net, &weights, &[broken], &[]))
    });
    group.bench_function("bitset/frozen", |b| {
        b.iter(|| kernel.mode_damage(&mut scratch, &[], &[(frozen_mux, 0)]))
    });
    group.bench_function("boolean/frozen", |b| {
        b.iter(|| reference::mode_damage(&net, &weights, &[], &[(frozen_mux, 0)]))
    });
    group.finish();
}

fn graph_analysis(c: &mut Criterion) {
    let (net, weights) = largest_network();
    let options = AnalysisOptions::default();
    let mut group = c.benchmark_group("reach_kernel/graph_analysis");
    group.sample_size(10);
    group.bench_function("bitset", |b| {
        b.iter(|| analyze_graph_with(&net, &weights, &options, Parallelism::sequential()))
    });
    group.bench_function("boolean", |b| {
        b.iter(|| reference::analyze_graph_ref(&net, &weights, &options))
    });
    group.finish();
}

fn batch_sweep(c: &mut Criterion) {
    let options = AnalysisOptions::default();
    let mut group = c.benchmark_group("reach_kernel/batch");
    group.sample_size(10);
    for name in ["q12710", "a586710", "p34392", "p93791"] {
        let spec = by_name(name).expect("registered design");
        let (net, _) = spec.generate().build(name).expect("valid structure");
        let weights = CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), 1);
        group.bench_function(name, |b| {
            b.iter(|| analyze_graph_with(&net, &weights, &options, Parallelism::sequential()))
        });
        group.bench_function(format!("{name}_scalar"), |b| {
            b.iter(|| reference::analyze_graph_ref(&net, &weights, &options))
        });
    }
    let (net, weights) = largest_network();
    group.bench_function("p93791_threads4", |b| {
        b.iter(|| analyze_graph_with(&net, &weights, &options, Parallelism::new(4)))
    });
    group.finish();
}

fn double_fault_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("double_fault/exact");
    group.sample_size(10);
    for name in ["q12710", "p34392"] {
        let spec = by_name(name).expect("registered design");
        let (net, _) = spec.generate().build(name).expect("valid structure");
        let weights = CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), 1);
        group.bench_function(name, |b| {
            b.iter(|| {
                double_fault_damage_with(
                    &net,
                    &weights,
                    &[],
                    SibCellPolicy::Combined,
                    Parallelism::sequential(),
                )
                .expect("exact sweep completes")
            })
        });
    }
    group.finish();
}

fn fault_set(c: &mut Criterion) {
    let (net, weights) = largest_network();
    let pool = enumerate_single_faults(&net);
    let pair = [pool[pool.len() / 3], pool[2 * pool.len() / 3]];
    // A broken SIB control cell exercises the frozen-select enumeration.
    let cell = net
        .muxes()
        .find_map(|m| match net.node(m).kind.as_mux().expect("mux").control {
            ControlSource::Cell { segment, .. } => Some(segment),
            ControlSource::Direct => None,
        })
        .expect("a cell-controlled mux");
    let mut group = c.benchmark_group("reach_kernel/fault_set");
    group.bench_function("pair", |b| {
        b.iter(|| {
            fault_set_damage_with(
                &net,
                &weights,
                &pair,
                SibCellPolicy::Combined,
                Parallelism::sequential(),
            )
            .expect("within combination bound")
        })
    });
    group.bench_function("broken_control_cell", |b| {
        b.iter(|| {
            fault_set_damage_with(
                &net,
                &weights,
                &[Fault::broken_segment(cell)],
                SibCellPolicy::Combined,
                Parallelism::sequential(),
            )
            .expect("within combination bound")
        })
    });
    group.sample_size(10).bench_function("sampled_double/32", |b| {
        b.iter(|| {
            sampled_double_fault_damage_with(
                &net,
                &weights,
                &[],
                SibCellPolicy::Combined,
                32,
                7,
                Parallelism::sequential(),
            )
            .expect("within combination bound")
        })
    });
    group.finish();
}

criterion_group!(benches, mode_damage, graph_analysis, batch_sweep, double_fault_exact, fault_set);
criterion_main!(benches);
