//! Criterion benchmark: decomposition-tree construction — structural
//! lowering vs. graph SP recognition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsn_benchmarks::by_name;
use rsn_sp::{recognize, tree_from_structure};

fn tree_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree");
    for name in ["TreeBalanced", "q12710", "p34392", "MBIST_1_5_5"] {
        let spec = by_name(name).unwrap();
        let (net, built) = spec.generate().build(name).unwrap();
        group.bench_with_input(BenchmarkId::new("from_structure", name), &name, |b, _| {
            b.iter(|| tree_from_structure(&net, &built))
        });
        group.bench_with_input(BenchmarkId::new("recognize", name), &name, |b, _| {
            b.iter(|| recognize(&net).unwrap())
        });
    }
    group.finish();
}

fn network_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    for name in ["p93791", "MBIST_1_20_20"] {
        let spec = by_name(name).unwrap();
        let structure = spec.generate();
        group.bench_function(name, |b| b.iter(|| structure.build(name).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, tree_construction, network_build);
criterion_main!(benches);
