//! Criterion benchmark: bit-level simulator shift throughput, retargeting
//! cost on SIB hierarchies, and the full fault-simulation validation
//! campaign on Table I designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use robust_rsn::{
    validate_criticality_with, AnalysisOptions, CriticalitySpec, PaperSpecParams, Parallelism,
};
use rsn_benchmarks::mbist::mbist;
use rsn_model::{Config, Simulator};

fn shift_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/shift");
    for memories in [5usize, 20] {
        let s = mbist(1, memories, 8, 16);
        let (net, _) = s.build("sim").unwrap();
        // Open every SIB so the full path is active.
        let mut sim = Simulator::new(&net);
        let mut cfg = Config::new(&net);
        for m in net.muxes() {
            cfg.set_select(&net, m, 1).unwrap();
        }
        sim.retarget(&cfg, net.muxes().count() + 1).unwrap();
        let path = sim.active_path().unwrap();
        let bits = path.bit_len();
        group.throughput(Throughput::Elements(bits as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &n| {
            let data = vec![true; n];
            b.iter(|| sim.shift(&data).unwrap())
        });
    }
    group.finish();
}

fn retarget_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/retarget");
    for depth in [2usize, 4, 6] {
        // A chain of nested SIBs `depth` levels deep.
        let mut inner = rsn_model::Structure::anon_seg(4);
        for level in 0..depth {
            inner = rsn_model::Structure::sib(format!("l{level}"), inner);
        }
        let (net, _) = inner.build("nest").unwrap();
        let mut cfg = Config::new(&net);
        for m in net.muxes() {
            cfg.set_select(&net, m, 1).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(&net);
                sim.retarget(&cfg, depth + 2).unwrap()
            })
        });
    }
    group.finish();
}

fn validation_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/validate");
    for name in ["q12710", "TreeBalanced", "a586710"] {
        let spec = rsn_benchmarks::by_name(name).expect("registered Table I design");
        let (net, _) = spec.generate().build(spec.name).unwrap();
        let weights = CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), 2022);
        let options = AnalysisOptions::default();
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let report =
                    validate_criticality_with(&net, &weights, &options, Parallelism::sequential());
                assert!(report.is_clean(), "campaign disagreed on {name}");
                report.replays
            })
        });
    }
    group.finish();
}

criterion_group!(benches, shift_throughput, retarget_cost, validation_campaign);
criterion_main!(benches);
