//! **Ablation harness** (experiments A1/A3 of DESIGN.md):
//!
//! * A1 — optimizer quality: SPEA2 vs. NSGA-II vs. greedy ratio baseline vs.
//!   certified exact front (hypervolume, higher is better);
//! * A3 — fault-mode aggregation and SIB-cell policy: how the modeling
//!   choices of §IV-B shift the damage distribution.
//!
//! Run with `cargo bench -p rsn-bench --bench ablation`. `ABLATION_GENS`
//! overrides the EA budget (default 150).

use moea::Nsga2Config;
use robust_rsn::{
    analyze, bypass_augment, solve_exact, solve_greedy, solve_nsga2, solve_random, AnalysisOptions,
    AugmentGranularity, CostModel, CriticalitySpec, HardeningProblem, ModeAggregation,
    PaperSpecParams, SibCellPolicy,
};
use std::time::Instant;

use rsn_bench::{optimize, prepare, spea2_config, EXPERIMENT_SEED};
use rsn_benchmarks::{by_name, table_i};
use rsn_sp::tree_from_structure;

fn main() {
    let gens: usize =
        std::env::var("ABLATION_GENS").ok().and_then(|v| v.parse().ok()).unwrap_or(150);

    println!("A1 — optimizer comparison (normalized hypervolume, 1.0 = best observed)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "design", "SPEA2", "NSGA-II", "greedy", "random", "exact"
    );
    for name in ["TreeFlat", "TreeUnbalanced", "q12710", "MBIST_1_5_5"] {
        let spec = by_name(name).expect("registered design");
        let instance = prepare(&spec);
        let p = &instance.problem;
        let reference = (p.max_cost() + 1, p.total_damage() + 1);
        let hv = |front: &robust_rsn::HardeningFront| front.hypervolume(reference.0, reference.1);

        let spea2 = optimize(&instance, &spea2_config(&spec, gens));
        let nsga2 = solve_nsga2(
            p,
            &Nsga2Config {
                population_size: spec.population(),
                generations: gens,
                ..Default::default()
            },
            EXPERIMENT_SEED,
        );
        let greedy = solve_greedy(p);
        let random = solve_random(p, spec.population() * gens, EXPERIMENT_SEED);
        let exact = solve_exact(p, 4_000_000).ok();
        let values =
            [hv(&spea2), hv(&nsga2), hv(&greedy), hv(&random), exact.as_ref().map_or(f64::NAN, hv)];
        let best = values.iter().copied().filter(|v| v.is_finite()).fold(0.0, f64::max);
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10}",
            name,
            values[0] / best,
            values[1] / best,
            values[2] / best,
            values[3] / best,
            if values[4].is_nan() { "n/a".to_string() } else { format!("{:.4}", values[4] / best) }
        );
    }

    println!("\nA3 — fault-mode aggregation & SIB-cell policy (total damage, relative to Worst/Combined)");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>16}",
        "design", "Worst/Comb", "Sum/Comb", "Mean/Comb", "Worst/SegOnly"
    );
    for name in ["MBIST_1_5_5", "MBIST_2_5_5", "TreeBalanced"] {
        let spec = by_name(name).expect("registered design");
        let s = spec.generate();
        let (net, built) = s.build(name).expect("valid");
        let tree = tree_from_structure(&net, &built);
        let weights =
            CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), EXPERIMENT_SEED);
        let damage = |mode, sib_policy| {
            let crit = analyze(&net, &tree, &weights, &AnalysisOptions { mode, sib_policy });
            crit.total_damage()
        };
        let base = damage(ModeAggregation::Worst, SibCellPolicy::Combined);
        let rel = |v: u64| v as f64 / base as f64;
        println!(
            "{:<16} {:>14} {:>14.3} {:>14.3} {:>16.3}",
            name,
            base,
            rel(damage(ModeAggregation::Sum, SibCellPolicy::Combined)),
            rel(damage(ModeAggregation::Mean, SibCellPolicy::Combined)),
            rel(damage(ModeAggregation::Worst, SibCellPolicy::SegmentOnly)),
        );
    }

    println!("\nA4 — criticality concentration (how few primitives carry 90% of the damage)");
    println!("{:<16} {:>10} {:>16} {:>14}", "design", "#prims", "prims for 90%", "fraction");
    for spec in table_i() {
        if spec.segments > 7_000 {
            continue;
        }
        let instance = prepare(&spec);
        let crit = {
            let weights = &instance.weights;
            analyze(&instance.net, &instance.tree, weights, &AnalysisOptions::default())
        };
        let ranked = crit.ranked();
        let total: u64 = crit.total_damage();
        let mut acc = 0u64;
        let mut count = 0usize;
        for (_, d) in &ranked {
            if acc * 10 >= total * 9 {
                break;
            }
            acc += d;
            count += 1;
        }
        println!(
            "{:<16} {:>10} {:>16} {:>13.1}%",
            spec.name,
            ranked.len(),
            count,
            100.0 * count as f64 / ranked.len() as f64
        );
        let _ = HardeningProblem::new(&instance.net, &crit, &CostModel::default());
    }

    println!("\nA5 — selective hardening vs. fault-tolerant topology augmentation [4]");
    println!(
        "{:<16} {:>12} {:>14} {:>16} {:>18}",
        "design", "FT +muxes", "FT cost", "FT residual dmg", "hardening cost*"
    );
    println!("  (*cheapest hardening solution matching the FT network's residual damage)");
    for name in ["TreeFlat", "TreeUnbalanced", "q12710", "MBIST_1_5_5"] {
        let spec = by_name(name).expect("registered design");
        let structure = spec.generate();
        let cost_model = CostModel::default();

        // Fault-tolerant baseline: add bypass connectivities, then measure
        // the residual damage of the *augmented* network (its added
        // multiplexers are fault sites of their own).
        let aug = bypass_augment(&structure, AugmentGranularity::Element);
        let (ft_net, ft_built) = aug.structure.build("ft").expect("valid augmentation");
        let ft_tree = tree_from_structure(&ft_net, &ft_built);
        let ft_weights =
            CriticalitySpec::paper_random(&ft_net, &PaperSpecParams::default(), EXPERIMENT_SEED);
        let ft_crit = analyze(&ft_net, &ft_tree, &ft_weights, &AnalysisOptions::default());
        // Hardware price of the augmentation: the added multiplexers.
        let mux_cost = 3u64; // CostModel::default() Area { mux: 3 }
        let ft_cost = aug.added_muxes as u64 * mux_cost;
        let ft_damage = ft_crit.total_damage();

        // Selective hardening on the *original* network, pushed to the same
        // residual damage level (both specs use the same seed, so weights
        // for the shared instruments coincide).
        let instance = prepare(&spec);
        let target = ft_damage.min(instance.problem.total_damage());
        let greedy = solve_greedy(&instance.problem);
        let hardening_cost = greedy.min_cost_with_damage_at_most(target.max(1)).map(|s| s.cost);
        println!(
            "{:<16} {:>12} {:>14} {:>16} {:>18}",
            name,
            aug.added_muxes,
            ft_cost,
            ft_damage,
            hardening_cost.map_or("-".into(), |c| c.to_string()),
        );
        let _ = cost_model;
    }

    println!("\nA7 — crossover-operator ablation (normalized hypervolume; paper uses one-point)");
    println!("{:<16} {:>10} {:>10} {:>10}", "design", "one-point", "two-point", "uniform");
    for name in ["TreeFlat", "q12710"] {
        let spec = by_name(name).expect("registered design");
        let instance = prepare(&spec);
        let p = &instance.problem;
        let reference = (p.max_cost() + 1, p.total_damage() + 1);
        let run = |kind| {
            let mut cfg = spea2_config(&spec, gens);
            cfg.variation.crossover = kind;
            robust_rsn::solve_spea2(p, &cfg, EXPERIMENT_SEED, |_| {})
                .hypervolume(reference.0, reference.1)
        };
        let values = [
            run(moea::CrossoverKind::OnePoint),
            run(moea::CrossoverKind::TwoPoint),
            run(moea::CrossoverKind::Uniform),
        ];
        let best = values.iter().copied().fold(0.0, f64::max);
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>10.4}",
            name,
            values[0] / best,
            values[1] / best,
            values[2] / best
        );
    }

    println!("\nA6 — double-fault robustness (beyond the paper's single-fault model)");
    println!(
        "{:<16} {:>22} {:>22} {:>10}",
        "design", "avg 2-fault dmg (none)", "avg 2-fault dmg (d10)", "reduction"
    );
    for name in ["TreeFlat", "TreeUnbalanced", "q12710", "MBIST_1_5_5"] {
        let spec = by_name(name).expect("registered design");
        let instance = prepare(&spec);
        let greedy = solve_greedy(&instance.problem);
        let chosen = greedy
            .min_cost_with_damage_at_most(instance.problem.total_damage() / 10)
            .expect("greedy front reaches 10%");
        let samples = 150;
        let before = robust_rsn::sampled_double_fault_damage(
            &instance.net,
            &instance.weights,
            &[],
            SibCellPolicy::Combined,
            samples,
            EXPERIMENT_SEED,
        )
        .expect("within combination bound");
        let after = robust_rsn::sampled_double_fault_damage(
            &instance.net,
            &instance.weights,
            &chosen.hardened,
            SibCellPolicy::Combined,
            samples,
            EXPERIMENT_SEED,
        )
        .expect("within combination bound");
        println!(
            "{:<16} {:>22.0} {:>22.0} {:>9.1}%",
            name,
            before,
            after,
            100.0 * (1.0 - after / before.max(1e-9))
        );
    }

    println!("\nA2 — scalability of the hierarchical analysis (§VI claim)");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "design", "#segs", "#mux", "build", "tree", "analysis"
    );
    let mut scalability_rows = vec!["MBIST_5_20_20", "MBIST_20_20_20", "MBIST_5_100_20"];
    if std::env::var("ABLATION_HUGE").is_ok() {
        scalability_rows.push("MBIST_5_100_100");
        scalability_rows.push("MBIST_100_100_5");
    }
    for name in scalability_rows {
        let spec = by_name(name).expect("registered design");
        let structure = spec.generate();
        let t0 = Instant::now();
        let (net, built) = structure.build(name).expect("valid");
        let t_build = t0.elapsed();
        let t1 = Instant::now();
        let tree = tree_from_structure(&net, &built);
        let t_tree = t1.elapsed();
        let weights =
            CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), EXPERIMENT_SEED);
        let t2 = Instant::now();
        let crit = analyze(&net, &tree, &weights, &AnalysisOptions::default());
        let t_analyze = t2.elapsed();
        println!(
            "{:<16} {:>10} {:>10} {:>11.2?} {:>11.2?} {:>11.2?}",
            name, spec.segments, spec.muxes, t_build, t_tree, t_analyze
        );
        assert!(crit.total_damage() > 0);
    }
}
