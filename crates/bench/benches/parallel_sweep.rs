//! Criterion benchmark: thread-count sweep of the sharded analysis loops.
//!
//! Measures the graph-exact criticality analysis and SPEA2 population
//! evaluation at 1, 2, 4 and 8 threads on an MBIST-style network. The
//! results are bit-identical across the sweep (asserted against the
//! sequential baseline); only the wall-clock time changes.
//!
//! `parallel/spea2/N` reports the cost of ONE generation — a single
//! `evaluate_batch` over a population-sized offspring batch, which is the
//! unit the optimizer repeats and the part `HardeningProblem` shards across
//! threads. (It used to time a whole 10-generation `solve_spea2` run, which
//! buried the per-generation eval cost under selection and variation.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use moea::{BitGenome, Problem, Spea2Config};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use robust_rsn::{
    analyze_graph_with, AnalysisOptions, AnalysisSession, CostModel, CriticalitySpec,
    PaperSpecParams, Parallelism, Solver,
};
use rsn_benchmarks::mbist::mbist;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn graph_analysis_sweep(c: &mut Criterion) {
    let s = mbist(2, 20, 10, 8);
    let (net, _) = s.build("sweep").unwrap();
    let weights = CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), 1);
    let options = AnalysisOptions::default();
    let baseline = analyze_graph_with(&net, &weights, &options, Parallelism::sequential());
    let mut group = c.benchmark_group("parallel/analyze_graph");
    group.throughput(Throughput::Elements(baseline.primitives().len() as u64));
    for threads in THREADS {
        let par = Parallelism::new(threads);
        let got = analyze_graph_with(&net, &weights, &options, par);
        for &j in baseline.primitives() {
            assert_eq!(got.damage(j), baseline.damage(j), "thread count changed a result");
        }
        group.bench_with_input(BenchmarkId::from_parameter(threads), &par, |b, &par| {
            b.iter(|| analyze_graph_with(&net, &weights, &options, par))
        });
    }
    group.finish();
}

fn spea2_sweep(c: &mut Criterion) {
    let s = mbist(2, 20, 10, 8);
    let (net, built) = s.build("sweep").unwrap();
    let cfg = Spea2Config {
        population_size: 60,
        archive_size: 60,
        generations: 10,
        ..Default::default()
    };
    let mut group = c.benchmark_group("parallel/spea2");
    group.sample_size(10);
    let mut fronts = Vec::new();
    for threads in THREADS {
        let session = AnalysisSession::builder(net.clone())
            .with_structure(&built)
            .with_paper_spec(PaperSpecParams::default(), 1)
            .with_cost_model(CostModel::default())
            .with_threads(threads)
            .build();
        let front = session.solve(Solver::Spea2 { config: cfg, seed: 7 }).unwrap();
        fronts.push(front.solutions().to_vec());
        let problem = session.hardening_problem(&CostModel::default()).unwrap();
        // One generation's offspring batch, identical for every thread count.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let batch: Vec<BitGenome> = (0..cfg.population_size)
            .map(|_| BitGenome::random(problem.genome_len(), problem.initial_density(), &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| problem.evaluate_batch(&batch))
        });
    }
    for w in fronts.windows(2) {
        assert_eq!(w[0], w[1], "thread count changed the SPEA2 front");
    }
    group.finish();
}

criterion_group!(benches, graph_analysis_sweep, spea2_sweep);
criterion_main!(benches);
