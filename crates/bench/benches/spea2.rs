//! Criterion benchmark: optimizer throughput — SPEA2 and NSGA-II generations
//! per second on hardening problems of increasing genome length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moea::{Nsga2Config, Spea2Config};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rsn_bench::prepare;
use rsn_benchmarks::by_name;

fn spea2_generations(c: &mut Criterion) {
    let mut group = c.benchmark_group("spea2/25-generations");
    group.sample_size(10);
    for name in ["TreeFlat", "q12710", "p34392"] {
        let spec = by_name(name).unwrap();
        let instance = prepare(&spec);
        let cfg = Spea2Config {
            population_size: 100,
            archive_size: 100,
            generations: 25,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                moea::spea2(&instance.problem, &cfg, &mut rng)
            })
        });
    }
    group.finish();
}

fn nsga2_generations(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2/25-generations");
    group.sample_size(10);
    for name in ["TreeFlat", "q12710"] {
        let spec = by_name(name).unwrap();
        let instance = prepare(&spec);
        let cfg = Nsga2Config { population_size: 100, generations: 25, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                moea::nsga2(&instance.problem, &cfg, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, spea2_generations, nsga2_generations);
criterion_main!(benches);
