//! End-to-end tests of the `rsn-tool` command-line interface.

use std::process::Command;

fn rsn_tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rsn_tool"))
}

fn demo_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/networks/soc_demo.rsn")
}

#[test]
fn stats_reports_network_figures() {
    let out = rsn_tool().args(["stats", demo_path()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("segments:    10"), "{text}");
    assert!(text.contains("muxes:       4"), "{text}");
    assert!(text.contains("instruments: 7"), "{text}");
}

#[test]
fn tree_renders_the_decomposition() {
    let out = rsn_tool().args(["tree", demo_path()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("P (closed by core0.mux)"), "{text}");
    assert!(text.contains("`-- "), "{text}");
}

#[test]
fn analyze_ranks_primitives() {
    let out = rsn_tool().args(["analyze", demo_path(), "--seed", "7"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total single-fault damage:"), "{text}");
    assert!(text.contains("primitive"), "{text}");
}

#[test]
fn harden_with_greedy_prints_constrained_solutions() {
    let out = rsn_tool()
        .args(["harden", demo_path(), "--solver", "greedy", "--kind-weights"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("initial assessment"), "{text}");
    assert!(text.contains("minimize cost, damage <= 10%"), "{text}");
    assert!(text.contains("minimize damage, cost <= 10%"), "{text}");
}

#[test]
fn harden_with_exact_solver_works_on_small_networks() {
    let out = rsn_tool().args(["harden", demo_path(), "--solver", "exact"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn bench_runs_a_registered_design() {
    let out = rsn_tool().args(["bench", "TreeFlat", "--solver", "greedy"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("initial assessment"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = rsn_tool().args(["frobnicate", "x"]).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage:"), "{text}");
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = rsn_tool().args(["stats", demo_path(), "--frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown flag"), "{text}");
    assert!(text.contains("usage:"), "{text}");
}

#[test]
fn version_flag_prints_the_version() {
    for flag in ["--version", "-V"] {
        let out = rsn_tool().arg(flag).output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.starts_with("rsn-tool "), "{text}");
        assert!(text.contains(env!("CARGO_PKG_VERSION")), "{text}");
    }
}

#[test]
fn submit_without_addr_is_a_clean_error() {
    let out = rsn_tool().args(["submit", demo_path()]).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--addr"), "{text}");
}

#[test]
fn submit_against_a_dead_daemon_is_a_clean_error() {
    // Bind-then-drop guarantees a port nothing is listening on.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let out = rsn_tool().args(["submit", demo_path(), "--addr", &addr]).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("io error talking to rsnd"), "{text}");
}

#[test]
fn serve_and_submit_round_trip_over_loopback() {
    use rsn_serve::{Server, ServerConfig};
    let server = Server::bind(ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());

    let out = rsn_tool()
        .args(["submit", demo_path(), "--addr", &addr, "--endpoint", "analyze", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"total_damage\""), "{text}");
    assert!(text.contains("\"ranked\""), "{text}");

    let out = rsn_tool()
        .args([
            "submit",
            demo_path(),
            "--addr",
            &addr,
            "--endpoint",
            "harden",
            "--solver",
            "greedy",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"solutions\""), "{text}");
    assert!(text.contains("\"solver\":\"greedy\""), "{text}");

    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = rsn_tool().args(["stats", "/nonexistent.rsn"]).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("reading"), "{text}");
}

#[test]
fn fig1_network_parses_and_analyzes() {
    let fig1 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/networks/fig1.rsn");
    let out = rsn_tool().args(["analyze", fig1, "--kind-weights"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn icl_files_load_via_graph_recognition() {
    let icl = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/networks/sib_chain.icl");
    let out = rsn_tool().args(["stats", icl]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("segments:    4"), "{text}");
    assert!(text.contains("muxes:       2"), "{text}");
    let out =
        rsn_tool().args(["harden", icl, "--solver", "exact", "--kind-weights"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn diagnose_identifies_an_injected_fault() {
    let out = rsn_tool().args(["diagnose", demo_path(), "--fault", "core0.cell"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SegmentBroken at core0.cell"), "{text}");
}

#[test]
fn diagnose_supports_stuck_mux_faults() {
    let out =
        rsn_tool().args(["diagnose", demo_path(), "--fault", "trace_sel:0"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("diagnosis"), "{text}");
}

#[test]
fn export_icl_roundtrips_through_import() {
    let out = rsn_tool().args(["export-icl", demo_path()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let icl = String::from_utf8_lossy(&out.stdout);
    let net = rsn_model::icl::import_icl(&icl).unwrap();
    assert_eq!(net.stats().segments, 10);
    assert_eq!(net.stats().muxes, 4);
}

#[test]
fn diagnose_rejects_unknown_nodes() {
    let out = rsn_tool().args(["diagnose", demo_path(), "--fault", "ghost"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("ghost"));
}

#[test]
fn gen_emits_a_parseable_giant_network_of_the_requested_size() {
    for shape in ["deep-sib", "rings", "chiplets"] {
        let out =
            rsn_tool().args(["gen", shape, "--segments", "2000", "--seed", "3"]).output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        let (_, s) = rsn_model::format::parse_network(&text).expect("generated text parses");
        assert!(s.count_segments() >= 2000, "{shape}: {} segments", s.count_segments());
        // Same seed, same bytes: the generator is replayable.
        let again =
            rsn_tool().args(["gen", shape, "--segments", "2000", "--seed", "3"]).output().unwrap();
        assert_eq!(out.stdout, again.stdout, "{shape} generation is deterministic");
    }
    let out = rsn_tool().args(["gen", "moebius", "--segments", "10"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("moebius"));
}

#[test]
fn sweep_runs_the_graph_kernel_on_generated_networks() {
    let dir = std::env::temp_dir().join("rsn_tool_sweep_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rings.rsn");
    let gen =
        rsn_tool().args(["gen", "rings", "--segments", "500", "--seed", "1"]).output().unwrap();
    assert!(gen.status.success());
    std::fs::write(&path, &gen.stdout).unwrap();
    let out = rsn_tool()
        .args(["sweep", path.to_str().unwrap(), "--threads", "2", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"segments\":500"), "{text}");
    assert!(text.contains("\"total_damage\":"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loadgen_spawns_a_daemon_and_reports_latency_percentiles() {
    let out = rsn_tool()
        .args([
            "loadgen",
            demo_path(),
            "--spawn",
            "--requests",
            "20",
            "--connections",
            "2",
            "--seed",
            "9",
            "--slo-ms",
            "30000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("throughput:"), "{text}");
    assert!(text.contains("p999"), "{text}");
    assert!(text.contains("MET"), "{text}");
}

#[test]
fn loadgen_without_addr_or_spawn_is_an_error() {
    let out = rsn_tool().args(["loadgen", demo_path(), "--requests", "5"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr"), "names the fix");
    // --chaos only makes sense for a daemon we spawn ourselves.
    let out = rsn_tool()
        .args(["loadgen", demo_path(), "--addr", "127.0.0.1:1", "--chaos", "panic=2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--spawn"), "names the fix");
}
