//! Shared harness utilities for the benchmark suite: the end-to-end pipeline
//! (generate → build → decompose → specify → analyze → optimize) and result
//! formatting used by the Table I and ablation harnesses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use moea::{Spea2Config, Variation};
use robust_rsn::{
    analyze, solve_spea2, AnalysisOptions, CostModel, CriticalitySpec, HardeningFront,
    HardeningProblem, PaperSpecParams,
};
use rsn_benchmarks::BenchmarkSpec;
use rsn_model::ScanNetwork;
use rsn_sp::{tree_from_structure, DecompTree};

/// Seed used for every deterministic experiment in the harness.
pub const EXPERIMENT_SEED: u64 = 2022;

/// A fully prepared problem instance for one benchmark design.
#[derive(Debug)]
pub struct Instance {
    /// The network.
    pub net: ScanNetwork,
    /// Its decomposition tree.
    pub tree: DecompTree,
    /// The §VI randomized specification.
    pub weights: CriticalitySpec,
    /// The hardening problem (damage vector + costs).
    pub problem: HardeningProblem,
    /// Wall-clock time of generation + build + tree + analysis.
    pub prep_time: Duration,
}

/// Generates and analyzes one Table I design end to end.
///
/// # Panics
///
/// Panics if the registered generator produces an invalid network (covered
/// by the test suite).
#[must_use]
pub fn prepare(spec: &BenchmarkSpec) -> Instance {
    let start = Instant::now();
    let structure = spec.generate();
    let (net, built) = structure.build(spec.name).expect("registered generators are valid");
    let tree = tree_from_structure(&net, &built);
    let weights = CriticalitySpec::paper_random(&net, &PaperSpecParams::default(), EXPERIMENT_SEED);
    let crit = analyze(&net, &tree, &weights, &AnalysisOptions::default());
    let problem = HardeningProblem::new(&net, &crit, &CostModel::default());
    let prep_time = start.elapsed();
    Instance { net, tree, weights, problem, prep_time }
}

/// The paper's SPEA2 configuration for a design, with `generations`
/// optionally overridden (scaled-down runs).
#[must_use]
pub fn spea2_config(spec: &BenchmarkSpec, generations: usize) -> Spea2Config {
    Spea2Config {
        population_size: spec.population(),
        archive_size: spec.population(),
        generations,
        variation: Variation { crossover_rate: 0.95, mutation_rate: 0.01, ..Default::default() },
    }
}

/// Runs the paper's optimizer on a prepared instance.
#[must_use]
pub fn optimize(instance: &Instance, config: &Spea2Config) -> HardeningFront {
    solve_spea2(&instance.problem, config, EXPERIMENT_SEED, |_| {})
}

/// Formats a duration as `m:ss` like Table I column 11.
#[must_use]
pub fn fmt_mmss(d: Duration) -> String {
    let s = d.as_secs();
    format!("{:02}:{:02}", s / 60, s % 60)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_benchmarks::by_name;

    #[test]
    fn prepare_produces_a_consistent_instance() {
        let spec = by_name("TreeFlat").unwrap();
        let inst = prepare(&spec);
        assert_eq!(inst.net.stats().segments, 24);
        assert_eq!(inst.problem.primitives().len(), 48);
        assert!(inst.problem.total_damage() > 0);
        assert!(inst.tree.validate(&inst.net).is_ok());
        assert!(!inst.weights.is_empty());
    }

    #[test]
    fn mmss_formats_like_the_paper() {
        assert_eq!(fmt_mmss(Duration::from_secs(7)), "00:07");
        assert_eq!(fmt_mmss(Duration::from_secs(92 * 60 + 1)), "92:01");
    }
}
