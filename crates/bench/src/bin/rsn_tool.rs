//! `rsn-tool` — command-line front end for the robust-RSN pipeline.
//!
//! ```text
//! rsn-tool stats     <network.rsn>                  network statistics
//! rsn-tool tree      <network.rsn>                  decomposition tree (ASCII)
//! rsn-tool analyze   <network.rsn> [--seed N] [--exact-double]
//!                                  criticality ranking; --exact-double adds
//!                                  exact damage statistics over every
//!                                  unordered pair of single faults
//! rsn-tool harden    <network.rsn> [--seed N] [--generations N]
//!                                  [--solver spea2|nsga2|greedy|exact]
//!                                  [--damage-cap PCT] [--cost-cap PCT]
//!                                  [--threads N]
//!                                  pareto front + constrained solutions
//! rsn-tool bench     <table-i-design-name> [--generations N]
//!                                  run a registered Table I design
//! rsn-tool validate  <network.rsn|design> [--threads N] [--json]
//!                                  replay every single-fault mode in the
//!                                  bit-level simulator and cross-validate
//!                                  the criticality analysis (nonzero exit
//!                                  on any disagreement)
//! rsn-tool export-icl <network.rsn>                flat ICL module on stdout
//! rsn-tool diagnose  <network.rsn> --fault <node>[:port]
//!                                  inject a fault, print the accessibility
//!                                  signature and the dictionary candidates
//! rsn-tool serve     [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!                                  [--store PATH]
//!                                  run the rsnd analysis daemon in-process
//! rsn-tool submit    <network.rsn> --addr HOST:PORT
//!                                  [--endpoint analyze|harden|validate|whatif]
//!                                  [--network-hash SHA256]
//!                                  [--seed N] [--solver ...] [--generations N]
//!                                  [--op harden|exclude|set_weights] [--target NAME]
//!                                  [--obs-weight N] [--set-weight N]
//!                                  [--retries N] [--timeout-ms N] [--json]
//!                                  submit to a running daemon, print the JSON;
//!                                  503s are retried with Retry-After-honoring
//!                                  jittered backoff (submissions are
//!                                  idempotent); --json wraps the response in
//!                                  {"attempts":..,"status":..,"response":..};
//!                                  with --network-hash the file argument is
//!                                  dropped and the job references a network
//!                                  previously registered via `networks put`
//! rsn-tool networks  put <network.rsn> --addr HOST:PORT
//!                                  register a network with the daemon and
//!                                  print its canonical content hash
//! rsn-tool networks  list --addr HOST:PORT
//!                                  list the daemon's registered networks
//! rsn-tool gen       <deep-sib|rings|chiplets> [--segments N] [--seed N]
//!                                  print a giant generated network (at
//!                                  least N segments) on stdout
//! rsn-tool sweep     <network.rsn> [--seed N] [--threads N] [--json]
//!                                  full batched single-fault sweep via the
//!                                  graph kernel (no decomposition tree —
//!                                  works on 100k+-segment networks)
//! rsn-tool loadgen   [network.rsn|design] (--addr HOST:PORT | --spawn)
//!                                  [--network-shape deep-sib|rings|chiplets]
//!                                  [--segments N]
//!                                  [--requests N] [--connections N]
//!                                  [--rate RPS] [--mix SPEC] [--seed N]
//!                                  [--slo-ms N] [--chaos SPEC] [--json]
//!                                  replay a seeded analyze/whatif/validate/
//!                                  harden mix against rsnd over keep-alive
//!                                  connections and report throughput plus
//!                                  p50/p99/p999 latency against the SLO;
//!                                  --network-shape generates the network
//!                                  with the giant `gen` shapes (sized by
//!                                  --segments) instead of reading a file,
//!                                  driving the generators through the
//!                                  serving path end to end; --addr may
//!                                  point at rsnd or an rsnc cluster
//!                                  coordinator; --spawn boots an
//!                                  in-process daemon (composable with
//!                                  --chaos for latency-under-faults runs)
//! rsn-tool --version               print the version
//! ```
//!
//! Networks are read in the textual format of `rsn_model::format`; weights
//! use the paper's randomized §VI specification seeded by `--seed`
//! (default 2022), or instrument-kind defaults with `--kind-weights`.

use std::process::ExitCode;

use moea::{Nsga2Config, Spea2Config};
use robust_rsn::{
    accessibility_under, analyze, double_fault_damage_with, report, solve_exact, solve_greedy,
    solve_nsga2, solve_spea2, AnalysisOptions, CostModel, CriticalitySpec, Diagnosis,
    FaultDictionary, HardeningFront, HardeningProblem, PaperSpecParams, Parallelism,
};
use rsn_model::{format::parse_network, icl::import_icl, ScanNetwork, Structure};
use rsn_serve::{parse_error, Client, Endpoint, JobRequest, RetryPolicy, Server, ServerConfig};
use rsn_sp::{recognize, render::render_tree, tree_from_structure, DecompTree, Leaf};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    seed: u64,
    generations: usize,
    solver: String,
    damage_cap_pct: u64,
    cost_cap_pct: u64,
    kind_weights: bool,
    fault: Option<String>,
    threads: Option<usize>,
    json: bool,
    addr: Option<String>,
    endpoint: String,
    workers: usize,
    queue: usize,
    cache: usize,
    retries: u32,
    timeout_ms: Option<u64>,
    op: Option<String>,
    target: Option<String>,
    obs_weight: Option<u64>,
    set_weight: Option<u64>,
    network_hash: Option<String>,
    store: Option<String>,
    exact_double: bool,
    segments: usize,
    requests: usize,
    connections: usize,
    rate: Option<f64>,
    mix: Option<String>,
    slo_ms: u64,
    spawn: bool,
    chaos: Option<String>,
    network_shape: Option<String>,
}

impl Options {
    /// `--threads N` if given, else the `RSN_THREADS` environment variable
    /// (0 or unset = one thread per core). Never changes any result — only
    /// how the evaluation loops are sharded.
    fn parallelism(&self) -> Parallelism {
        self.threads.map_or_else(Parallelism::from_env, Parallelism::new)
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    if matches!(command.as_str(), "--version" | "-V") {
        println!("rsn-tool {}", env!("CARGO_PKG_VERSION"));
        return Ok(());
    }
    // `serve` runs a daemon and takes no target file; `submit` may replace
    // its file with `--network-hash`; everything else reads a network (or a
    // Table I design name, or a `networks` subcommand) as its first
    // positional argument.
    let mut positionals: Vec<String> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    for arg in args {
        if arg.starts_with("--") || !rest.is_empty() {
            rest.push(arg);
        } else {
            positionals.push(arg);
        }
    }
    let mut positionals = positionals.into_iter();
    // `loadgen` may generate its network via `--network-shape` instead of
    // reading a file, so its positional is optional too.
    let target = if command == "serve" {
        String::new()
    } else if command == "submit" || command == "loadgen" {
        positionals.next().unwrap_or_default()
    } else {
        positionals.next().ok_or_else(usage)?
    };
    // `networks put <file>` takes the network file as a second positional.
    let extra = positionals.next();
    let mut opts = Options {
        seed: 2022,
        generations: 300,
        solver: "spea2".into(),
        damage_cap_pct: 10,
        cost_cap_pct: 10,
        kind_weights: false,
        fault: None,
        threads: None,
        json: false,
        addr: None,
        endpoint: "analyze".into(),
        workers: 0,
        queue: 64,
        cache: 128,
        retries: 4,
        timeout_ms: None,
        op: None,
        target: None,
        obs_weight: None,
        set_weight: None,
        network_hash: None,
        store: None,
        exact_double: false,
        segments: 100_000,
        requests: 200,
        connections: 4,
        rate: None,
        mix: None,
        slo_ms: 500,
        spawn: false,
        chaos: None,
        network_shape: None,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--seed" => opts.seed = parse(&value("--seed")?)?,
            "--generations" => opts.generations = parse(&value("--generations")?)?,
            "--solver" => opts.solver = value("--solver")?,
            "--damage-cap" => opts.damage_cap_pct = parse(&value("--damage-cap")?)?,
            "--cost-cap" => opts.cost_cap_pct = parse(&value("--cost-cap")?)?,
            "--kind-weights" => opts.kind_weights = true,
            "--fault" => opts.fault = Some(value("--fault")?),
            "--threads" => opts.threads = Some(parse(&value("--threads")?)?),
            "--json" => opts.json = true,
            "--addr" => opts.addr = Some(value("--addr")?),
            "--endpoint" => opts.endpoint = value("--endpoint")?,
            "--workers" => opts.workers = parse(&value("--workers")?)?,
            "--queue" => opts.queue = parse(&value("--queue")?)?,
            "--cache" => opts.cache = parse(&value("--cache")?)?,
            "--retries" => opts.retries = parse(&value("--retries")?)?,
            "--timeout-ms" => opts.timeout_ms = Some(parse(&value("--timeout-ms")?)?),
            "--op" => opts.op = Some(value("--op")?),
            "--target" => opts.target = Some(value("--target")?),
            "--obs-weight" => opts.obs_weight = Some(parse(&value("--obs-weight")?)?),
            "--set-weight" => opts.set_weight = Some(parse(&value("--set-weight")?)?),
            "--network-hash" => opts.network_hash = Some(value("--network-hash")?),
            "--store" => opts.store = Some(value("--store")?),
            "--exact-double" => opts.exact_double = true,
            "--segments" => opts.segments = parse(&value("--segments")?)?,
            "--requests" => opts.requests = parse(&value("--requests")?)?,
            "--connections" => opts.connections = parse(&value("--connections")?)?,
            "--rate" => opts.rate = Some(parse(&value("--rate")?)?),
            "--mix" => opts.mix = Some(value("--mix")?),
            "--slo-ms" => opts.slo_ms = parse(&value("--slo-ms")?)?,
            "--spawn" => opts.spawn = true,
            "--chaos" => opts.chaos = Some(value("--chaos")?),
            "--network-shape" => opts.network_shape = Some(value("--network-shape")?),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }

    match command.as_str() {
        "stats" => {
            let (net, _, _) = load(&target)?;
            let s = net.stats();
            println!("network:     {}", net.name());
            println!("segments:    {}", s.segments);
            println!("muxes:       {}", s.muxes);
            println!("fan-outs:    {}", s.fanouts);
            println!("instruments: {}", s.instruments);
            println!("scan cells:  {}", s.scan_cells);
            Ok(())
        }
        "tree" => {
            let (net, tree, _) = load(&target)?;
            print!("{}", render_tree(&tree, &net, |_| None));
            Ok(())
        }
        "analyze" => {
            let (net, tree, _) = load(&target)?;
            let spec = weights(&net, &opts);
            let crit = analyze(&net, &tree, &spec, &AnalysisOptions::default());
            println!("total single-fault damage: {}", crit.total_damage());
            print!("{}", report::criticality_table(&net, &crit, 25));
            if opts.exact_double {
                let options = AnalysisOptions::default();
                let summary = double_fault_damage_with(
                    &net,
                    &spec,
                    &[],
                    options.sib_policy,
                    opts.parallelism(),
                )
                .map_err(|e| e.to_string())?;
                println!("exact double-fault damage over {} pairs:", summary.pairs);
                println!("  mean {:.2}  max {}  min {}", summary.mean, summary.max, summary.min);
            }
            Ok(())
        }
        "harden" => {
            let (net, tree, _) = load(&target)?;
            harden(&net, &tree, &opts)
        }
        "export-icl" => {
            let (net, _, _) = load(&target)?;
            print!("{}", rsn_model::icl::export_icl(&net));
            Ok(())
        }
        "diagnose" => {
            let (net, _, _) = load(&target)?;
            let spec = opts.fault.as_deref().ok_or("diagnose needs --fault <node>[:port]")?;
            let (node_name, port) = match spec.split_once(':') {
                Some((n, p)) => (n, Some(p.parse::<u16>().map_err(|_| format!("bad port {p:?}"))?)),
                None => (spec, None),
            };
            let node = net
                .nodes()
                .find(|(_, n)| n.name.as_deref() == Some(node_name))
                .map(|(id, _)| id)
                .ok_or_else(|| format!("unknown node {node_name:?}"))?;
            let fault = match port {
                Some(p) => rsn_model::Fault::mux_stuck_at(node, p),
                None => rsn_model::Fault::broken_segment(node),
            };
            if !fault.is_applicable(&net) {
                return Err(format!("{fault:?} is not applicable to {node_name}"));
            }
            let observed = accessibility_under(&net, &[fault]);
            println!("accessibility under {fault:?}:");
            for (i, inst) in net.instruments() {
                println!(
                    "  {:<20} observable={:<5} settable={}",
                    inst.label(i),
                    observed.observable[i.index()],
                    observed.settable[i.index()]
                );
            }
            let dict = FaultDictionary::build(&net);
            println!(
                "dictionary: {} distinct signatures, resolution {:.0}%",
                dict.distinct_signatures(),
                100.0 * dict.resolution()
            );
            match dict.diagnose(&observed) {
                Diagnosis::FaultFree => println!("diagnosis: fault-free signature"),
                Diagnosis::Unknown => println!("diagnosis: outside the single-fault model"),
                Diagnosis::Candidates(c) => {
                    println!("diagnosis candidates:");
                    for f in c {
                        println!("  {:?} at {}", f.kind, net.node(f.node).label(f.node));
                    }
                }
            }
            Ok(())
        }
        "bench" => {
            let spec = rsn_benchmarks::by_name(&target)
                .ok_or_else(|| format!("unknown Table I design {target:?}"))?;
            let structure = spec.generate();
            let (net, built) = structure.build(spec.name).map_err(|e| e.to_string())?;
            let tree = tree_from_structure(&net, &built);
            harden(&net, &tree, &opts)
        }
        "validate" => validate(&target, &opts),
        "serve" => serve(&opts),
        "submit" => submit(&target, &opts),
        "networks" => networks(&target, extra.as_deref(), &opts),
        "gen" => gen(&target, &opts),
        "sweep" => sweep(&target, &opts),
        "loadgen" => loadgen(&target, &opts),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

/// Generates one of the fleet-scale shapes with at least `--segments`
/// segments and prints it in the textual `.rsn` format.
fn gen(shape: &str, opts: &Options) -> Result<(), String> {
    let (name, structure) = giant_shape(shape, opts.segments, opts.seed)?;
    print!("{}", rsn_model::format::print_network(&name, &structure));
    Ok(())
}

/// Resolves a `gen` shape name to a generated structure of at least
/// `segments` segments.
fn giant_shape(shape: &str, segments: usize, seed: u64) -> Result<(String, Structure), String> {
    let segments = segments.max(1);
    let (name, structure) = match shape {
        "deep-sib" => {
            // segments = 2*depth + 1 at one register per level.
            let depth = (segments / 2).max(1);
            (format!("deep{depth}"), rsn_benchmarks::giant::deep_sib_tree(depth, 1, seed))
        }
        "rings" => {
            // segments = 10*rings at ring_size 9.
            let rings = segments.div_ceil(10).max(1);
            (format!("rings{rings}"), rsn_benchmarks::giant::ring_of_rings(rings, 9, seed))
        }
        "chiplets" => {
            // segments = 1000*chiplets at 999 segments per chiplet.
            let chiplets = segments.div_ceil(1000).max(1);
            (
                format!("chiplets{chiplets}"),
                rsn_benchmarks::giant::multi_chiplet(chiplets, 999, 399, seed),
            )
        }
        other => return Err(format!("unknown shape {other:?} (expected deep-sib|rings|chiplets)")),
    };
    Ok((name, structure))
}

/// Full batched single-fault sweep through the graph kernel — the scale
/// path: no decomposition tree is built, so 100k+-segment networks (deep
/// SIB towers included) sweep in bounded memory.
fn sweep(target: &str, opts: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?;
    let parse_started = std::time::Instant::now();
    let (name, structure) = parse_network(&text).map_err(|e| e.to_string())?;
    let (net, _built) = structure.build(name).map_err(|e| e.to_string())?;
    let build_elapsed = parse_started.elapsed();
    let spec = weights(&net, opts);
    let stats = net.stats();
    let sweep_started = std::time::Instant::now();
    let crit = robust_rsn::analyze_graph_with(
        &net,
        &spec,
        &AnalysisOptions::default(),
        opts.parallelism(),
    );
    let sweep_elapsed = sweep_started.elapsed();
    if opts.json {
        println!(
            "{{\"network\":{:?},\"segments\":{},\"muxes\":{},\"primitives\":{},\
             \"total_damage\":{},\"parse_build_ms\":{},\"sweep_ms\":{}}}",
            net.name(),
            stats.segments,
            stats.muxes,
            crit.primitives().len(),
            crit.total_damage(),
            build_elapsed.as_millis(),
            sweep_elapsed.as_millis()
        );
    } else {
        println!("network:            {}", net.name());
        println!("segments:           {}", stats.segments);
        println!("muxes:              {}", stats.muxes);
        println!("fault primitives:   {}", crit.primitives().len());
        println!("total damage:       {}", crit.total_damage());
        println!("parse+build:        {:.2?}", build_elapsed);
        println!("sweep:              {:.2?}", sweep_elapsed);
    }
    Ok(())
}

/// Replays a seeded job mix against a running daemon (`--addr`) or an
/// in-process one (`--spawn`, composable with `--chaos` for
/// latency-under-faults runs) and prints the throughput/latency report.
fn loadgen(target: &str, opts: &Options) -> Result<(), String> {
    let network = if let Some(shape) = &opts.network_shape {
        // Drive the giant generators through the serving path end to end:
        // the generated text is registered and hammered like any file.
        let (name, structure) = giant_shape(shape, opts.segments, opts.seed)?;
        rsn_model::format::print_network(&name, &structure)
    } else if target.is_empty() {
        return Err("loadgen needs a network file, a Table I design, or --network-shape".into());
    } else if target.ends_with(".rsn") {
        std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?
    } else {
        let spec = rsn_benchmarks::by_name(target)
            .ok_or_else(|| format!("unknown network file or Table I design {target:?}"))?;
        rsn_model::format::print_network(spec.name, &spec.generate())
    };
    let mix = match &opts.mix {
        Some(spec) => rsn_serve::Mix::from_spec(spec)?,
        None => rsn_serve::Mix::default(),
    };
    let mut config = rsn_serve::LoadgenConfig {
        network,
        requests: opts.requests,
        connections: opts.connections,
        rate: opts.rate,
        mix,
        seed: opts.seed,
        slo_ms: opts.slo_ms,
        ..rsn_serve::LoadgenConfig::default()
    };
    if let Some(ms) = opts.timeout_ms {
        config.timeout = std::time::Duration::from_millis(ms);
    }

    // `--spawn` boots rsnd in-process on an ephemeral port; otherwise the
    // run targets `--addr`.
    let spawned = if opts.spawn {
        let chaos = match &opts.chaos {
            Some(spec) => Some(std::sync::Arc::new(rsn_serve::Chaos::from_spec(spec)?)),
            None => None,
        };
        let server_config = ServerConfig {
            workers: Parallelism::new(opts.workers),
            queue_capacity: opts.queue,
            cache_capacity: opts.cache,
            chaos,
            ..ServerConfig::default()
        };
        let server = Server::bind(server_config).map_err(|e| format!("bind failed: {e}"))?;
        config.addr = server.local_addr().to_string();
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        Some((handle, thread))
    } else {
        if opts.chaos.is_some() {
            return Err("--chaos needs --spawn (a remote daemon's schedule is its own)".into());
        }
        config.addr = opts.addr.clone().ok_or("loadgen needs --addr HOST:PORT or --spawn")?;
        None
    };

    let result = rsn_serve::loadgen::run(&config);
    if let Some((handle, thread)) = spawned {
        handle.shutdown();
        thread.join().map_err(|_| "server thread panicked")?.map_err(|e| e.to_string())?;
    }
    let report = result?;
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?);
    } else {
        print!("{}", rsn_serve::loadgen::render(&report));
    }
    Ok(())
}

/// Runs the operational fault-simulation campaign on a network file or a
/// registered Table I design and diffs it against the criticality analysis.
/// Exits nonzero on any disagreement.
fn validate(target: &str, opts: &Options) -> Result<(), String> {
    let net = if target.ends_with(".rsn") || target.ends_with(".icl") {
        load(target)?.0
    } else {
        let spec = rsn_benchmarks::by_name(target)
            .ok_or_else(|| format!("unknown network file or Table I design {target:?}"))?;
        let (net, _) = spec.generate().build(spec.name).map_err(|e| e.to_string())?;
        net
    };
    let spec = weights(&net, opts);
    let started = std::time::Instant::now();
    let report = robust_rsn::validate_criticality_with(
        &net,
        &spec,
        &AnalysisOptions::default(),
        opts.parallelism(),
    );
    let elapsed = started.elapsed();
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?);
    } else {
        println!("network:              {}", report.network);
        println!("fault primitives:     {}", report.primitives);
        println!("fault modes:          {}", report.modes);
        println!("simulated modes:      {}", report.simulated_modes);
        println!("unrealizable modes:   {}", report.skipped_unrealizable_modes);
        println!("simulator replays:    {}", report.replays);
        println!("failed retargets:     {}", report.failed_retargets);
        println!("unverifiable pairs:   {}", report.unverifiable_pairs);
        println!("instrument checks:    {}", report.instrument_checks);
        println!("analysis damage:      {}", report.analysis_total_damage);
        println!("operational damage:   {}", report.operational_total_damage);
        println!("campaign runtime:     {:.2?}", elapsed);
        println!("disagreements:        {}", report.total_disagreements);
        for d in &report.disagreements {
            let inst = d.instrument.as_deref().unwrap_or("-");
            let access = d.access.as_deref().unwrap_or("-");
            println!(
                "  {} mode {} ({}) instrument {} access {}: {}",
                d.primitive, d.mode_index, d.fault, inst, access, d.detail
            );
        }
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("analysis and simulation disagree on {} check(s)", report.total_disagreements))
    }
}

/// Runs the `rsnd` daemon in-process until SIGTERM/ctrl-c.
fn serve(opts: &Options) -> Result<(), String> {
    let mut config = ServerConfig::default();
    if let Some(addr) = &opts.addr {
        config.addr = addr.clone();
    }
    config.workers = Parallelism::new(opts.workers);
    config.queue_capacity = opts.queue;
    config.cache_capacity = opts.cache;
    config.store_path = opts.store.as_ref().map(Into::into);
    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("rsnd listening on {}", server.local_addr());
    rsn_serve::signal::install();
    let handle = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if rsn_serve::signal::triggered() {
            handle.shutdown();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    server.run().map_err(|e| format!("serve failed: {e}"))?;
    println!("rsnd shut down cleanly");
    Ok(())
}

/// Submits the network at `target` to a running daemon and prints the JSON
/// response body; `503 overloaded` answers are retried up to `--retries`
/// attempts with `Retry-After`-honoring jittered backoff (safe: submissions
/// are idempotent). With `--json` the response is wrapped in an envelope
/// that surfaces the attempt count. Non-200 final statuses become errors
/// (nonzero exit).
fn submit(target: &str, opts: &Options) -> Result<(), String> {
    let addr = opts.addr.clone().ok_or("submit needs --addr HOST:PORT")?;
    let network = match (&opts.network_hash, target.is_empty()) {
        (Some(_), false) => {
            return Err("submit takes either a network file or --network-hash, not both".into())
        }
        (Some(_), true) => None,
        (None, true) => return Err("submit needs a <network.rsn> file or --network-hash".into()),
        (None, false) => {
            Some(std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?)
        }
    };
    let endpoint = match opts.endpoint.as_str() {
        "analyze" => Endpoint::Analyze,
        "harden" => Endpoint::Harden,
        "validate" => Endpoint::Validate,
        "whatif" => Endpoint::Whatif,
        other => {
            return Err(format!(
                "unknown endpoint {other:?} (expected analyze|harden|validate|whatif)"
            ))
        }
    };
    let job = JobRequest {
        network,
        network_hash: opts.network_hash.clone(),
        seed: Some(opts.seed),
        kind_weights: opts.kind_weights.then_some(true),
        solver: Some(opts.solver.clone()),
        generations: Some(opts.generations),
        timeout_ms: opts.timeout_ms,
        op: opts.op.clone(),
        target: opts.target.clone(),
        obs_weight: opts.obs_weight,
        set_weight: opts.set_weight,
        exact_double: opts.exact_double.then_some(true),
        ..Default::default()
    };
    let policy = RetryPolicy {
        max_attempts: opts.retries.max(1),
        jitter_seed: opts.seed,
        ..RetryPolicy::default()
    };
    let outcome =
        Client::new(addr).submit_with_retry(endpoint, &job, &policy).map_err(|e| e.to_string())?;
    if opts.json {
        // The response body is itself JSON (success and error envelopes
        // alike), so it embeds verbatim.
        println!(
            "{{\"attempts\":{},\"status\":{},\"response\":{}}}",
            outcome.attempts, outcome.response.status, outcome.response.body
        );
    } else if outcome.response.status == 200 {
        println!("{}", outcome.response.body);
    }
    if outcome.response.status == 200 {
        Ok(())
    } else if let Some(err) = parse_error(&outcome.response) {
        // The daemon's structured error envelope: surface the stable code
        // and whether a retry may help instead of dumping raw JSON.
        Err(format!(
            "rsnd returned {} ({}, retryable={}) after {} attempt(s): {}",
            outcome.response.status, err.code, err.retryable, outcome.attempts, err.message
        ))
    } else {
        Err(format!(
            "rsnd returned {} after {} attempt(s): {}",
            outcome.response.status,
            outcome.attempts,
            outcome.response.body.trim()
        ))
    }
}

/// `networks put <file>` registers a network with a running daemon and
/// prints the `{"hash":..,"name":..,"registered":..}` response; `networks
/// list` prints the daemon's registry listing. Hashes printed here are what
/// `submit --network-hash` accepts.
fn networks(sub: &str, file: Option<&str>, opts: &Options) -> Result<(), String> {
    let addr = opts.addr.clone().ok_or("networks needs --addr HOST:PORT")?;
    let client = Client::new(addr);
    let response = match sub {
        "put" => {
            let path = file.ok_or("networks put needs a <network.rsn> file")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            client.put_network(&text).map_err(|e| e.to_string())?
        }
        "list" => client.list_networks().map_err(|e| e.to_string())?,
        other => return Err(format!("unknown networks subcommand {other:?} (expected put|list)")),
    };
    if response.status == 200 {
        println!("{}", response.body);
        Ok(())
    } else if let Some(err) = parse_error(&response) {
        Err(format!("rsnd returned {} ({}): {}", response.status, err.code, err.message))
    } else {
        Err(format!("rsnd returned {}: {}", response.status, response.body.trim()))
    }
}

fn harden(net: &ScanNetwork, tree: &DecompTree, opts: &Options) -> Result<(), String> {
    let spec = weights(net, opts);
    let crit = analyze(net, tree, &spec, &AnalysisOptions::default());
    let problem = HardeningProblem::new(net, &crit, &CostModel::default())
        .with_parallelism(opts.parallelism());
    println!(
        "initial assessment: max cost {}, max damage {}",
        problem.max_cost(),
        problem.total_damage()
    );
    let front: HardeningFront = match opts.solver.as_str() {
        "spea2" => solve_spea2(
            &problem,
            &Spea2Config {
                population_size: 100,
                archive_size: 100,
                generations: opts.generations,
                ..Default::default()
            },
            opts.seed,
            |_| {},
        ),
        "nsga2" => solve_nsga2(
            &problem,
            &Nsga2Config {
                population_size: 100,
                generations: opts.generations,
                ..Default::default()
            },
            opts.seed,
        ),
        "greedy" => solve_greedy(&problem),
        "exact" => solve_exact(&problem, 4_000_000).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown solver {other:?}")),
    };
    print!("{}", report::front_table(&problem, &front));
    let dmg_cap = problem.total_damage() * opts.damage_cap_pct / 100;
    match front.min_cost_with_damage_at_most(dmg_cap) {
        Some(s) => {
            println!(
                "\nminimize cost, damage <= {}%: cost {} damage {} ({} primitives)",
                opts.damage_cap_pct,
                s.cost,
                s.damage,
                s.hardened_count()
            );
            println!("  protects important instruments: {}", s.protects_important(&crit));
            let names: Vec<String> =
                s.hardened.iter().take(20).map(|&n| net.node(n).label(n)).collect();
            println!(
                "  hardened: {}{}",
                names.join(", "),
                if s.hardened_count() > 20 { ", ..." } else { "" }
            );
        }
        None => println!("\nminimize cost, damage <= {}%: not reached", opts.damage_cap_pct),
    }
    let cost_cap = problem.max_cost() * opts.cost_cap_pct / 100;
    match front.min_damage_with_cost_at_most(cost_cap) {
        Some(s) => println!(
            "minimize damage, cost <= {}%: cost {} damage {} ({} primitives)",
            opts.cost_cap_pct,
            s.cost,
            s.damage,
            s.hardened_count()
        ),
        None => println!("minimize damage, cost <= {}%: not reached", opts.cost_cap_pct),
    }
    Ok(())
}

fn weights(net: &ScanNetwork, opts: &Options) -> CriticalitySpec {
    if opts.kind_weights {
        CriticalitySpec::from_kinds(net)
    } else {
        CriticalitySpec::paper_random(net, &PaperSpecParams::default(), opts.seed)
    }
}

type Loaded = (ScanNetwork, DecompTree, Option<Structure>);

/// Loads `.rsn` (structural DSL) or `.icl` (flat IEEE 1687 subset) files.
fn load(path: &str) -> Result<Loaded, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".icl") {
        let net = import_icl(&text).map_err(|e| e.to_string())?;
        let tree = recognize(&net).map_err(|e| e.to_string())?;
        return Ok((net, tree, None));
    }
    let (name, structure) = parse_network(&text).map_err(|e| e.to_string())?;
    let (net, built) = structure.build(name).map_err(|e| e.to_string())?;
    let tree = tree_from_structure(&net, &built);
    // Leaf is re-exported for annotation closures; silence unused warning.
    let _: Option<Leaf> = None;
    Ok((net, tree, Some(structure)))
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

fn usage() -> String {
    "usage: rsn-tool <stats|tree|analyze|harden|bench|validate|export-icl|diagnose|serve|submit|networks|gen|sweep|loadgen> \
     <network.rsn|network.icl|design|put|list|shape> [--seed N] [--generations N] \
     [--solver spea2|nsga2|greedy|exact] [--damage-cap PCT] [--cost-cap PCT] \
     [--kind-weights] [--fault <node>[:port]] [--threads N] [--json] \
     [--addr HOST:PORT] [--endpoint analyze|harden|validate|whatif] [--network-hash SHA256] \
     [--workers N] [--queue N] [--cache N] [--store PATH] \
     [--retries N] [--timeout-ms N] [--exact-double] \
     [--segments N] [--requests N] [--connections N] [--rate RPS] [--mix SPEC] \
     [--slo-ms N] [--spawn] [--chaos SPEC] [--network-shape deep-sib|rings|chiplets]\n\
     rsn-tool --version"
        .to_string()
}
