//! Benchmark network generators for the Table I evaluation of *Robust
//! Reconfigurable Scan Networks* (DATE 2022).
//!
//! The paper evaluates on the ITC'16 benchmark suite \[22\] and the DATE'19
//! MBIST networks \[23\]; neither is redistributable, so this crate provides
//! **family-faithful generators** that reproduce each design's published
//! segment and multiplexer counts exactly (see `DESIGN.md` §3 for the
//! substitution rationale):
//!
//! * [`trees`] — flat, unbalanced, and balanced instrument trees;
//! * [`soc`] — SOC wrapper daisy chains (q12710 … p93791);
//! * [`giant`] — fleet-scale 100k–1M-segment shapes (deep SIB towers,
//!   ring-of-rings, multi-chiplet stitching) for serving-path stress;
//! * [`mbist`] — hierarchical memory-BIST SIB networks;
//! * [`random`] — seeded random SP networks for property-based tests;
//! * [`table`] — the Table I registry with per-design EA parameters and the
//!   paper's reported result columns.
//!
//! # Examples
//!
//! ```
//! use rsn_benchmarks::table::by_name;
//!
//! let spec = by_name("TreeFlat").expect("registered design");
//! let structure = spec.generate();
//! let (net, _) = structure.build(spec.name)?;
//! assert_eq!(net.stats().segments, 24);
//! assert_eq!(net.stats().muxes, 24);
//! # Ok::<(), rsn_model::NetworkError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod giant;
pub mod mbist;
pub mod random;
pub mod soc;
pub mod table;
pub mod trees;

pub use random::{random_structure, RandomParams};
pub use table::{by_name, table_i, BenchmarkSpec, Family, PaperRow};
