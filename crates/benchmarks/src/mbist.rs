//! MBIST networks: stand-ins for the DATE'19 memory-BIST benchmark family
//! (`MBIST_a_b_c`).
//!
//! The family models hierarchical memory-BIST access: `a` BIST controllers,
//! each behind a SIB; every controller gates `b` memory interfaces, each
//! behind its own SIB; every interface carries a chain of data/configuration
//! register segments with **one instrument per memory** (the status register
//! at the end of the chain) — instruments are per-memory, not per-register,
//! which is what makes the long register chains cheap to protect: only the
//! chain feeding an important memory matters. The published parameter
//! semantics are not fully specified, so [`mbist_sized`] fits the internal
//! shape to the *exact* segment/multiplexer counts of Table I (see
//! `DESIGN.md` §3).

use rsn_model::{InstrumentKind, InstrumentSpec, SegmentSpec, Structure};

/// The parametric MBIST generator: `controllers` × `memories` × `registers`.
///
/// Counts: multiplexers = `controllers · (1 + memories)`; segments =
/// `controllers · (1 + memories · (1 + registers))` (one SIB cell per SIB,
/// plus the register chains); instruments = one per non-empty memory.
#[must_use]
pub fn mbist(controllers: usize, memories: usize, registers: usize, reg_len: u32) -> Structure {
    let mut idx = 0usize;
    let parts = (0..controllers)
        .map(|c| controller(c, memories, vec![registers; memories], reg_len, &mut idx))
        .collect();
    Structure::Series(parts)
}

fn controller(
    c: usize,
    memories: usize,
    registers_per_memory: Vec<usize>,
    reg_len: u32,
    idx: &mut usize,
) -> Structure {
    let mems = (0..memories)
        .map(|m| {
            let count = registers_per_memory[m];
            let regs: Vec<Structure> = (0..count)
                .map(|r| {
                    let is_status = r + 1 == count;
                    let s = Structure::Segment(SegmentSpec {
                        name: None,
                        len: reg_len,
                        instrument: is_status.then(|| InstrumentSpec {
                            name: Some(format!("c{c}.mem{m}.bist")),
                            kind: if (*idx).is_multiple_of(7) {
                                InstrumentKind::RuntimeAdaptive
                            } else {
                                InstrumentKind::Bist
                            },
                        }),
                    });
                    *idx += 1;
                    s
                })
                .collect();
            Structure::Sib {
                name: Some(format!("c{c}.mem{m}")),
                inner: Box::new(Structure::Series(regs)),
            }
        })
        .collect();
    Structure::Sib { name: Some(format!("c{c}")), inner: Box::new(Structure::Series(mems)) }
}

/// Fits an MBIST-shaped network to exact Table I counts.
///
/// Multiplexers: `a` controller SIBs + `Σ` memory SIBs = `muxes`; segments:
/// one cell per SIB + register segments = `segments`. `controllers_hint`
/// (the first name parameter) guides the controller count.
///
/// # Panics
///
/// Panics when the counts are infeasible (`muxes < 2`, or fewer segments
/// than SIB cells).
#[must_use]
pub fn mbist_sized(segments: usize, muxes: usize, controllers_hint: usize) -> Structure {
    let controllers = controllers_hint.clamp(1, muxes / 2);
    assert!(muxes > controllers, "need at least one memory SIB per controller");
    assert!(segments >= muxes, "every SIB needs its control cell");
    // Memory SIBs overall, distributed over the controllers.
    let memory_sibs = muxes - controllers;
    let mut mems_per_ctrl = vec![memory_sibs / controllers; controllers];
    for slot in mems_per_ctrl.iter_mut().take(memory_sibs % controllers) {
        *slot += 1;
    }
    // Register segments, distributed over all memory SIBs.
    let registers = segments - muxes; // all cells accounted: one per SIB
    let mut regs_per_mem = vec![registers / memory_sibs; memory_sibs];
    for slot in regs_per_mem.iter_mut().take(registers % memory_sibs) {
        *slot += 1;
    }
    let mut idx = 0usize;
    let mut mem_cursor = 0usize;
    let parts = (0..controllers)
        .map(|c| {
            let m = mems_per_ctrl[c];
            let regs = regs_per_mem[mem_cursor..mem_cursor + m].to_vec();
            mem_cursor += m;
            controller(c, m, regs, 8, &mut idx)
        })
        .collect();
    Structure::Series(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parametric_counts_follow_the_formula() {
        let s = mbist(2, 3, 4, 8);
        // muxes = a(1 + b) = 8; segments = a(1 + b(1 + r)) = 2(1 + 15) = 32.
        assert_eq!(s.count_muxes(), 8);
        assert_eq!(s.count_segments(), 32);
        // One instrument per memory.
        assert_eq!(s.count_instruments(), 6);
        let (net, _) = s.build("mbist").unwrap();
        assert_eq!(net.stats().muxes, 8);
        assert_eq!(net.stats().segments, 32);
        assert_eq!(net.stats().instruments, 6);
    }

    #[test]
    fn sized_hits_small_table_i_rows() {
        for (segs, muxes, hint) in [
            (113usize, 15usize, 1usize), // MBIST_1_5_5
            (1_523, 15, 1),              // MBIST_1_5_20
            (1_091, 28, 2),              // MBIST_2_5_5
            (3_041, 28, 2),              // MBIST_2_5_20
            (2_720, 67, 5),              // MBIST_5_5_5
        ] {
            let s = mbist_sized(segs, muxes, hint);
            assert_eq!(s.count_segments(), segs, "{segs}/{muxes}");
            assert_eq!(s.count_muxes(), muxes, "{segs}/{muxes}");
        }
    }

    #[test]
    fn sized_hits_a_large_table_i_row() {
        let s = mbist_sized(6_068, 45, 1); // MBIST_1_20_20
        assert_eq!(s.count_segments(), 6_068);
        assert_eq!(s.count_muxes(), 45);
        let (net, built) = s.build("mbist").unwrap();
        let tree = rsn_sp::tree_from_structure(&net, &built);
        tree.validate(&net).unwrap();
    }

    #[test]
    fn instruments_are_per_memory() {
        let s = mbist_sized(113, 15, 1); // 1 controller, 14 memories
        assert_eq!(s.count_instruments(), 14);
    }

    #[test]
    fn every_sib_cell_counts_as_segment() {
        let s = mbist(1, 2, 0, 4);
        // 3 SIBs, no registers: 3 segments (all cells), 3 muxes, 0 instruments.
        assert_eq!(s.count_segments(), 3);
        assert_eq!(s.count_muxes(), 3);
        assert_eq!(s.count_instruments(), 0);
    }
}
