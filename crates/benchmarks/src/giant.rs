//! Fleet-scale generators: 100k–1M-segment hierarchical SoCs.
//!
//! Table I tops out at ~1.2k segments; serving fleets schedule analyses over
//! networks two to three orders of magnitude larger. These generators
//! produce such networks deterministically from a seed, in three shapes that
//! stress different parts of the pipeline:
//!
//! * [`deep_sib_tree`] — a SIB tower tens of thousands of levels deep. The
//!   degenerate shape for anything call-stack-recursive: parsing, building,
//!   printing and dropping it must all be iterative.
//! * [`ring_of_rings`] — wide and shallow: many SIB-gated scan rings, each
//!   ring a two-way selection between register chains. Stresses per-element
//!   allocation and CSR construction, not depth.
//! * [`multi_chiplet`] — a stitched multi-chiplet package: SIB-gated chiplet
//!   wrappers, each with its own mixed SIB/selection interior derived from a
//!   per-chiplet seed. The realistic mixed shape.
//!
//! Every generator documents an exact segment/mux count contract (tested),
//! and all construction is **bottom-up iterative** — no generator recursion,
//! so a 1M-segment network never risks the generator's own call stack. The
//! emitted [`Structure`] values still nest, but `rsn-model`'s walks (count,
//! build, parse, print, drop) are themselves iterative.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rsn_model::{InstrumentKind, InstrumentSpec, MuxSpec, SegmentSpec, Structure};

/// A wrapper register hosting an instrument, named `{prefix}w{idx}`.
fn register(rng: &mut ChaCha8Rng, prefix: &str, idx: &mut usize) -> Structure {
    let len = rng.random_range(1..=16);
    let s = Structure::Segment(SegmentSpec {
        name: Some(format!("{prefix}w{idx}")),
        len,
        instrument: Some(InstrumentSpec {
            name: None,
            kind: match *idx % 4 {
                0 => InstrumentKind::Bist,
                1 => InstrumentKind::Sensor,
                2 => InstrumentKind::Debug,
                _ => InstrumentKind::Generic,
            },
        }),
    });
    *idx += 1;
    s
}

/// A SIB tower `depth` levels deep with `regs_per_level` wrapper registers
/// beside each SIB, bottoming out in one terminal register.
///
/// Exact counts: `segments = depth * (regs_per_level + 1) + 1` (each level
/// contributes its SIB control cell plus its registers) and `muxes = depth`.
///
/// Built bottom-up with a loop — the tower itself is the stress test for
/// call-stack recursion elsewhere, so the generator must not recurse either.
///
/// # Panics
///
/// Panics if `depth == 0` or `regs_per_level == 0`.
#[must_use]
pub fn deep_sib_tree(depth: usize, regs_per_level: usize, seed: u64) -> Structure {
    assert!(depth >= 1, "deep_sib_tree needs depth >= 1");
    assert!(regs_per_level >= 1, "deep_sib_tree needs regs_per_level >= 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx = 0;
    // Innermost payload first; each iteration wraps the previous level in a
    // SIB and lays that level's registers beside it. Register indices run
    // innermost-first, which is fine: the contract is determinism per seed,
    // not any particular naming order.
    let mut inner = Structure::Series(vec![register(&mut rng, "", &mut idx)]);
    for level in (0..depth).rev() {
        let mut parts = Vec::with_capacity(regs_per_level + 1);
        for _ in 0..regs_per_level {
            parts.push(register(&mut rng, "", &mut idx));
        }
        parts.push(Structure::Sib { name: Some(format!("d{level}")), inner: Box::new(inner) });
        inner = Structure::Series(parts);
    }
    inner
}

/// A backbone of `rings` SIB-gated scan rings; each ring is a two-way
/// selection between two register chains totalling `ring_size` registers.
///
/// Exact counts: `segments = rings * (ring_size + 1)` (SIB cell + registers
/// per ring) and `muxes = 2 * rings` (SIB mux + selection mux per ring).
///
/// # Panics
///
/// Panics if `rings == 0` or `ring_size < 2` (a selection needs a register
/// on each branch).
#[must_use]
pub fn ring_of_rings(rings: usize, ring_size: usize, seed: u64) -> Structure {
    assert!(rings >= 1, "ring_of_rings needs rings >= 1");
    assert!(ring_size >= 2, "ring_of_rings needs ring_size >= 2");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut parts = Vec::with_capacity(rings);
    for r in 0..rings {
        let prefix = format!("r{r}.");
        let mut idx = 0;
        let split = rng.random_range(1..ring_size);
        let a: Vec<Structure> = (0..split).map(|_| register(&mut rng, &prefix, &mut idx)).collect();
        let b: Vec<Structure> =
            (0..ring_size - split).map(|_| register(&mut rng, &prefix, &mut idx)).collect();
        let selection = Structure::Parallel {
            branches: vec![Structure::Series(a), Structure::Series(b)],
            mux: MuxSpec::named(format!("r{r}.sel")),
        };
        parts.push(Structure::Sib { name: Some(format!("r{r}")), inner: Box::new(selection) });
    }
    Structure::Series(parts)
}

/// A multi-chiplet package: `chiplets` SIB-gated chiplet wrappers stitched
/// in series, each interior a flat mix of SIB-gated register groups, two-way
/// selections and backbone registers derived from a per-chiplet seed.
///
/// Exact counts: `segments = chiplets * (seg_per + 1)` and
/// `muxes = chiplets * (mux_per + 1)` (the `+ 1`s are each chiplet's
/// stitching SIB).
///
/// # Panics
///
/// Panics unless `chiplets >= 1` and `seg_per > mux_per >= 1`.
#[must_use]
pub fn multi_chiplet(chiplets: usize, seg_per: usize, mux_per: usize, seed: u64) -> Structure {
    assert!(chiplets >= 1, "multi_chiplet needs chiplets >= 1");
    assert!(
        mux_per >= 1 && seg_per > mux_per,
        "multi_chiplet needs seg_per > mux_per >= 1 per chiplet"
    );
    let mut top = ChaCha8Rng::seed_from_u64(seed);
    let mut parts = Vec::with_capacity(chiplets);
    for c in 0..chiplets {
        // Independent per-chiplet stream so chiplet interiors don't shift
        // when the chiplet count changes.
        let chip_seed = top.random();
        let inner = chiplet(c, seg_per, mux_per, chip_seed);
        parts.push(Structure::Sib { name: Some(format!("chip{c}")), inner: Box::new(inner) });
    }
    Structure::Series(parts)
}

/// One chiplet interior: exactly `segments` segments and `muxes` muxes, one
/// hierarchy level deep (SIB-gated flat groups and two-way selections on a
/// register backbone). Iterative by construction.
fn chiplet(chip: usize, segments: usize, muxes: usize, seed: u64) -> Structure {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let prefix = format!("c{chip}.");
    let mut idx = 0;

    // Roughly a quarter of the muxes become two-way selections (2 registers
    // minimum each), the rest SIB groups (1 control cell each). Shrink the
    // selection share until the register budget covers it.
    let mut n_select = muxes / 4;
    let mut registers = segments - (muxes - n_select);
    while registers < 2 * n_select && n_select > 0 {
        n_select -= 1;
        registers = segments - (muxes - n_select);
    }
    let n_sib = muxes - n_select;

    // Deal the register budget: minimums first (2 per selection, and 1 for
    // the first SIB group when no selection precedes it in series order, so
    // an empty leading group never needs a previous element to gate), then
    // the surplus spread over all slots (selections, SIB groups, backbone).
    let slots = n_select + n_sib + 1;
    let mut budget = vec![0usize; slots];
    for b in budget.iter_mut().take(n_select) {
        *b = 2;
    }
    let mut reserved = 2 * n_select;
    if n_select == 0 && n_sib > 0 {
        budget[0] = 1;
        reserved = 1;
    }
    let mut surplus = registers - reserved;
    while surplus > 0 {
        let take = surplus.min(1 + surplus / slots);
        budget[rng.random_range(0..slots)] += take;
        surplus -= take;
    }

    let mut parts = Vec::new();
    for (slot, &regs) in budget.iter().enumerate() {
        if slot < n_select {
            let split = 1 + rng.random_range(0..regs - 1);
            let a: Vec<Structure> =
                (0..split).map(|_| register(&mut rng, &prefix, &mut idx)).collect();
            let b: Vec<Structure> =
                (0..regs - split).map(|_| register(&mut rng, &prefix, &mut idx)).collect();
            parts.push(Structure::Parallel {
                branches: vec![Structure::Series(a), Structure::Series(b)],
                mux: MuxSpec::named(format!("{prefix}sel{slot}")),
            });
        } else if slot < n_select + n_sib {
            // A SIB group; an empty group gates the element before it so the
            // SIB's inner body is never a bare wire.
            let group: Vec<Structure> =
                (0..regs).map(|_| register(&mut rng, &prefix, &mut idx)).collect();
            let name = format!("{prefix}m{}", slot - n_select);
            let inner = if group.is_empty() {
                // Never the first element: either a selection or the first
                // group's reserved register precedes it (see the budget
                // minimums above), so the count contract holds.
                parts.pop().expect("a previous element to gate")
            } else {
                Structure::Series(group)
            };
            parts.push(Structure::Sib { name: Some(name), inner: Box::new(inner) });
        } else {
            for _ in 0..regs {
                parts.push(register(&mut rng, &prefix, &mut idx));
            }
        }
    }
    Structure::Series(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_sib_tree_counts_are_exact() {
        for (depth, regs, seed) in [(1, 1, 0), (7, 3, 1), (50, 2, 2), (333, 1, 3)] {
            let s = deep_sib_tree(depth, regs, seed);
            assert_eq!(s.count_segments(), depth * (regs + 1) + 1, "segments d={depth} r={regs}");
            assert_eq!(s.count_muxes(), depth, "muxes d={depth}");
            let (net, _) = s.build("deep").unwrap();
            assert_eq!(net.stats().segments, depth * (regs + 1) + 1);
            assert_eq!(net.stats().muxes, depth);
        }
    }

    #[test]
    fn ring_of_rings_counts_are_exact() {
        for (rings, size, seed) in [(1, 2, 0), (5, 9, 1), (40, 3, 2), (200, 11, 3)] {
            let s = ring_of_rings(rings, size, seed);
            assert_eq!(s.count_segments(), rings * (size + 1), "segments n={rings} s={size}");
            assert_eq!(s.count_muxes(), 2 * rings, "muxes n={rings}");
            let (net, _) = s.build("rings").unwrap();
            assert_eq!(net.stats().segments, rings * (size + 1));
            assert_eq!(net.stats().muxes, 2 * rings);
        }
    }

    #[test]
    fn multi_chiplet_counts_are_exact() {
        for (chips, seg, mux, seed) in [(1, 10, 4, 0), (4, 47, 25, 1), (16, 100, 40, 2)] {
            let s = multi_chiplet(chips, seg, mux, seed);
            assert_eq!(s.count_segments(), chips * (seg + 1), "segments c={chips}");
            assert_eq!(s.count_muxes(), chips * (mux + 1), "muxes c={chips}");
            let (net, _) = s.build("chiplets").unwrap();
            assert_eq!(net.stats().segments, chips * (seg + 1));
            assert_eq!(net.stats().muxes, chips * (mux + 1));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        // Moderate sizes: derived PartialEq recurses, so equality checks
        // stay off the giant shapes.
        let a = deep_sib_tree(40, 2, 7);
        let b = deep_sib_tree(40, 2, 7);
        assert_eq!(a, b);
        assert_ne!(a, deep_sib_tree(40, 2, 8));
        let a = ring_of_rings(20, 5, 7);
        assert_eq!(a, ring_of_rings(20, 5, 7));
        assert_ne!(a, ring_of_rings(20, 5, 8));
        let a = multi_chiplet(3, 30, 12, 7);
        assert_eq!(a, multi_chiplet(3, 30, 12, 7));
        assert_ne!(a, multi_chiplet(3, 30, 12, 8));
    }

    #[test]
    fn giant_shapes_build_in_bounded_stack() {
        // >= 100k segments each; exercises the iterative count/build/drop
        // paths end to end. The full-sweep acceptance run lives in
        // scripts/giant_smoke.sh (release mode) — a debug-mode sweep at this
        // scale would dominate the test suite.
        let deep = deep_sib_tree(50_000, 1, 1); // 100_001 segments
        assert_eq!(deep.count_segments(), 100_001);
        let (net, _) = deep.build("deep100k").unwrap();
        assert_eq!(net.stats().segments, 100_001);
        drop(net);
        drop(deep);

        let wide = ring_of_rings(10_000, 9, 1); // 100_000 segments
        assert_eq!(wide.count_segments(), 100_000);
        let (net, _) = wide.build("rings100k").unwrap();
        assert_eq!(net.stats().segments, 100_000);
        drop(net);
        drop(wide);

        let chips = multi_chiplet(100, 999, 399, 1); // 100_000 segments
        assert_eq!(chips.count_segments(), 100_000);
        let (net, _) = chips.build("chips100k").unwrap();
        assert_eq!(net.stats().segments, 100_000);
    }

    #[test]
    fn giant_networks_print_and_reparse() {
        // The textual round trip at moderate-giant size: parse must agree
        // with the in-memory structure's counts (streamed, iterative).
        let s = multi_chiplet(10, 299, 99, 5);
        let text = rsn_model::format::print_network("chips", &s);
        let (name, parsed) = rsn_model::format::parse_network(&text).unwrap();
        assert_eq!(name, "chips");
        assert_eq!(parsed.count_segments(), s.count_segments());
        assert_eq!(parsed.count_muxes(), s.count_muxes());
    }
}
