//! Seeded random series-parallel networks for property-based testing.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rsn_model::{InstrumentKind, InstrumentSpec, MuxSpec, SegmentSpec, Structure};

/// Shape parameters for [`random_structure`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomParams {
    /// Maximum nesting depth of parallel groups and SIBs.
    pub max_depth: usize,
    /// Maximum elements per series body.
    pub max_series: usize,
    /// Maximum branches of a parallel group.
    pub max_branches: usize,
    /// Maximum segment length in scan cells.
    pub max_seg_len: u32,
    /// Probability that a segment hosts an instrument.
    pub instrument_prob: f64,
}

impl Default for RandomParams {
    fn default() -> Self {
        Self { max_depth: 4, max_series: 5, max_branches: 3, max_seg_len: 6, instrument_prob: 0.8 }
    }
}

/// Generates a random valid SP structure; deterministic per seed.
///
/// The result always contains at least one segment, keeps every parallel
/// group at two or more branches with at most one bypass wire, and keeps the
/// multiplexer count small enough for the exhaustive configuration oracle
/// (the expected count grows with `max_depth · max_series`).
#[must_use]
pub fn random_structure(params: &RandomParams, seed: u64) -> Structure {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx = 0usize;
    let s = gen_series(params, params.max_depth, &mut rng, &mut idx);
    if idx == 0 {
        // Guarantee at least one segment.
        return segment(params, &mut rng, &mut idx);
    }
    s
}

fn segment(params: &RandomParams, rng: &mut ChaCha8Rng, idx: &mut usize) -> Structure {
    let len = rng.random_range(1..=params.max_seg_len);
    let instrument = rng.random_bool(params.instrument_prob).then(|| InstrumentSpec {
        name: None,
        kind: match rng.random_range(0..5) {
            0 => InstrumentKind::Sensor,
            1 => InstrumentKind::RuntimeAdaptive,
            2 => InstrumentKind::Bist,
            3 => InstrumentKind::Debug,
            _ => InstrumentKind::Generic,
        },
    });
    let s = Structure::Segment(SegmentSpec { name: Some(format!("g{}", *idx)), len, instrument });
    *idx += 1;
    s
}

fn gen_series(
    params: &RandomParams,
    depth: usize,
    rng: &mut ChaCha8Rng,
    idx: &mut usize,
) -> Structure {
    let count = rng.random_range(1..=params.max_series);
    let parts = (0..count).map(|_| gen_element(params, depth, rng, idx)).collect();
    Structure::Series(parts)
}

fn gen_element(
    params: &RandomParams,
    depth: usize,
    rng: &mut ChaCha8Rng,
    idx: &mut usize,
) -> Structure {
    if depth == 0 {
        return segment(params, rng, idx);
    }
    match rng.random_range(0..10) {
        // 50 % plain segment.
        0..=4 => segment(params, rng, idx),
        // 30 % SIB around a nested body.
        5..=7 => {
            let name = format!("s{}", *idx);
            Structure::Sib {
                name: Some(name),
                inner: Box::new(gen_series(params, depth - 1, rng, idx)),
            }
        }
        // 20 % multi-branch parallel group (at most one wire branch).
        _ => {
            let branches = rng.random_range(2..=params.max_branches.max(2));
            let wire_at = rng.random_bool(0.4).then(|| rng.random_range(0..branches));
            let name = format!("p{}", *idx);
            let bodies = (0..branches)
                .map(|b| {
                    if wire_at == Some(b) {
                        Structure::Wire
                    } else {
                        let mut body = gen_series(params, depth - 1, rng, idx);
                        // A parallel branch must not be empty alongside a
                        // wire; force one segment if needed.
                        if body.count_segments() == 0 && body.count_muxes() == 0 {
                            body = segment(params, rng, idx);
                        }
                        body
                    }
                })
                .collect();
            Structure::Parallel { branches: bodies, mux: MuxSpec::named(name) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_builds_a_valid_network() {
        let params = RandomParams::default();
        for seed in 0..200 {
            let s = random_structure(&params, seed);
            let (net, built) = s.build(format!("rand{seed}")).expect("valid structure");
            let tree = rsn_sp::tree_from_structure(&net, &built);
            tree.validate(&net).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let params = RandomParams::default();
        assert_eq!(random_structure(&params, 3), random_structure(&params, 3));
        assert_ne!(random_structure(&params, 3), random_structure(&params, 4));
    }

    #[test]
    fn recognition_agrees_with_structure_on_random_networks() {
        let params = RandomParams::default();
        for seed in 0..50 {
            let s = random_structure(&params, seed);
            let (net, _) = s.build("r").unwrap();
            let tree = rsn_sp::recognize(&net).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            tree.validate(&net).unwrap();
        }
    }
}
