//! SOC-style networks: stand-ins for the ITC'16 conversions of the ITC'02
//! SOC test benchmarks (`q12710`, `a586710`, `p34392`, `t512505`, `p22810`,
//! `p93791`).
//!
//! Each network is a hierarchy of SIB-gated module wrappers, occasionally
//! using two-way scan multiplexers to select between wrapper chains — the
//! access topologies the ITC'16 suite derives from SOC module wrappers.
//! Wrapper registers host the instruments; SIB control cells sit on the
//! serial backbone of their hierarchy level. Shapes are seeded and
//! deterministic; segment and multiplexer counts match Table I exactly.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rsn_model::{InstrumentKind, InstrumentSpec, MuxSpec, SegmentSpec, Structure};

/// Generates an SOC-style network with exactly `segments` scan segments and
/// `muxes` multiplexers.
///
/// # Panics
///
/// Panics unless `segments > muxes >= 1`.
#[must_use]
pub fn soc(segments: usize, muxes: usize, seed: u64) -> Structure {
    assert!(muxes >= 1 && segments > muxes, "soc network needs segments > muxes >= 1");
    let rng = ChaCha8Rng::seed_from_u64(seed);
    // Decide module kinds up front: a fraction of the muxes become two-way
    // wrapper selections (0 cells, >= 2 registers), the rest SIB modules
    // (1 cell, >= 0 registers). The register budget must cover selections.
    let mut n_select = (muxes as f64 * 0.25) as usize;
    let mut registers = segments - (muxes - n_select); // non-cell segments
    while registers < 2 * n_select + 1 && n_select > 0 {
        n_select -= 1;
        registers = segments - (muxes - n_select);
    }
    let n_sib = muxes - n_select;
    let mut builder = SocBuilder { rng, idx: 0, sib_idx: 0, sel_idx: 0 };
    builder.network(n_sib, n_select, registers)
}

struct SocBuilder {
    rng: ChaCha8Rng,
    idx: usize,
    sib_idx: usize,
    sel_idx: usize,
}

impl SocBuilder {
    fn register(&mut self) -> Structure {
        let len = self.rng.random_range(1..=16);
        let s = Structure::Segment(SegmentSpec {
            name: Some(format!("w{}", self.idx)),
            len,
            instrument: Some(InstrumentSpec {
                name: None,
                kind: match self.idx % 4 {
                    0 => InstrumentKind::Bist,
                    1 => InstrumentKind::Sensor,
                    2 => InstrumentKind::Debug,
                    _ => InstrumentKind::Generic,
                },
            }),
        });
        self.idx += 1;
        s
    }

    /// Builds a series body consuming exactly the given budgets.
    fn network(&mut self, sibs: usize, selects: usize, registers: usize) -> Structure {
        let mut parts = Vec::new();
        let mut sibs = sibs;
        let mut selects = selects;
        let mut registers = registers;
        while sibs > 0 || selects > 0 || registers > 0 {
            // Reserve two registers per remaining selection.
            let reserved = 2 * selects;
            if selects > 0 && (sibs == 0 || self.rng.random_bool(0.3)) {
                // Two-way wrapper selection.
                selects -= 1;
                let avail = registers - 2 * selects; // keep later reservations
                let take = 2 + self.rng.random_range(0..=(avail.saturating_sub(2)).min(4));
                registers -= take;
                let left = 1 + self.rng.random_range(0..take - 1);
                let a: Vec<Structure> = (0..left).map(|_| self.register()).collect();
                let b: Vec<Structure> = (0..take - left).map(|_| self.register()).collect();
                let name = format!("sel{}", self.sel_idx);
                self.sel_idx += 1;
                parts.push(Structure::Parallel {
                    branches: vec![Structure::Series(a), Structure::Series(b)],
                    mux: MuxSpec::named(name),
                });
            } else if sibs > 0 {
                // SIB-gated module: consumes one SIB and a sub-budget. Any
                // nested hierarchy must bottom out in at least one register,
                // so sub_sibs > 0 forces sub_regs >= 1.
                sibs -= 1;
                let free = registers - reserved;
                let sub_sibs =
                    if sibs > 0 && free > 0 { self.rng.random_range(0..=sibs.min(6)) } else { 0 };
                let sub_selects = if selects > 0 && sub_sibs > 0 {
                    self.rng.random_range(0..=selects.min(2))
                } else {
                    0
                };
                let mut sub_regs = if free > 0 {
                    let lo = usize::from(sub_sibs > 0);
                    self.rng.random_range(lo..=free.min(12).max(lo))
                } else {
                    0
                };
                sub_regs += 2 * sub_selects; // carry their reservation inside
                if sub_sibs == 0 && sub_selects == 0 && sub_regs == 0 {
                    if registers > 0 || selects > 0 {
                        // Gate everything that remains (it contains content).
                        let inner = self.network(sibs, selects, registers);
                        let name = format!("m{}", self.sib_idx);
                        self.sib_idx += 1;
                        parts.push(Structure::Sib { name: Some(name), inner: Box::new(inner) });
                        return Structure::Series(parts);
                    }
                    // Only bare SIBs remain: gate the previous module. Parts
                    // cannot be empty because every frame starts with at
                    // least one register or selection in its budget.
                    let prev = parts.pop().expect("a previous module to gate");
                    let name = format!("m{}", self.sib_idx);
                    self.sib_idx += 1;
                    parts.push(Structure::Sib { name: Some(name), inner: Box::new(prev) });
                    continue;
                }
                sibs -= sub_sibs;
                selects -= sub_selects;
                registers -= sub_regs;
                let name = format!("m{}", self.sib_idx);
                self.sib_idx += 1;
                let inner = self.network(sub_sibs, sub_selects, sub_regs);
                parts.push(Structure::Sib { name: Some(name), inner: Box::new(inner) });
            } else {
                // Plain wrapper register on the backbone.
                registers -= 1;
                parts.push(self.register());
            }
        }
        Structure::Series(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(segments: usize, muxes: usize, seed: u64) {
        let s = soc(segments, muxes, seed);
        assert_eq!(s.count_segments(), segments, "segments for {segments}/{muxes}");
        assert_eq!(s.count_muxes(), muxes, "muxes for {segments}/{muxes}");
        let (net, built) = s.build("soc").unwrap();
        assert_eq!(net.stats().segments, segments);
        assert_eq!(net.stats().muxes, muxes);
        let tree = rsn_sp::tree_from_structure(&net, &built);
        tree.validate(&net).unwrap();
    }

    #[test]
    fn table_i_soc_sizes() {
        check(47, 25, 0x1271); // q12710
        check(79, 47, 0x5867); // a586710
        check(245, 142, 0x3439); // p34392
        check(288, 160, 0x5125); // t512505
    }

    #[test]
    fn larger_soc_sizes() {
        check(537, 283, 0x2281); // p22810
        check(1241, 653, 0x9379); // p93791
    }

    #[test]
    fn many_seeds_are_feasible() {
        for seed in 0..25 {
            check(120, 61, seed);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = soc(100, 40, 7);
        let b = soc(100, 40, 7);
        assert_eq!(a, b);
        let c = soc(100, 40, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn recognition_recovers_soc_graphs() {
        let s = soc(60, 25, 11);
        let (net, _) = s.build("soc").unwrap();
        let tree = rsn_sp::recognize(&net).unwrap();
        tree.validate(&net).unwrap();
        assert_eq!(tree.shape().mux_leaves, 25);
    }

    #[test]
    fn mixes_sibs_and_selections() {
        let s = soc(245, 142, 0x3439);
        let (net, _) = s.build("soc").unwrap();
        let scan_controlled = net
            .muxes()
            .filter(|&m| {
                matches!(
                    net.node(m).kind.as_mux().map(|x| x.control),
                    Some(rsn_model::ControlSource::Cell { .. })
                )
            })
            .count();
        assert!(scan_controlled > 0, "has SIBs");
        assert!(scan_controlled < 142, "has direct selections too");
    }
}
