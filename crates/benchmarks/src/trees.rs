//! Tree-style networks of the ITC'16 suite: `TreeFlat`, `TreeUnbalanced`,
//! `TreeBalanced`, `TreeFlat_Ex`.
//!
//! The original benchmark files are not redistributable; these generators
//! produce networks of the same *family* with **exactly** the segment and
//! multiplexer counts of Table I (verified by tests). Like the real ITC'16
//! networks they are SIB-based: the serial SIB control cells are single
//! points of failure for everything behind them — exactly the "carefully
//! selected spots" the paper hardens. Instrument registers (non-cell
//! segments) each host an instrument.

use rsn_model::{InstrumentKind, Structure};

fn iseg(idx: usize, len: u32) -> Structure {
    Structure::Segment(rsn_model::SegmentSpec {
        name: Some(format!("r{idx}")),
        len,
        instrument: Some(rsn_model::InstrumentSpec { name: None, kind: kind_for(idx) }),
    })
}

fn kind_for(idx: usize) -> InstrumentKind {
    match idx % 5 {
        0 => InstrumentKind::Sensor,
        1 => InstrumentKind::RuntimeAdaptive,
        2 => InstrumentKind::Bist,
        3 => InstrumentKind::Debug,
        _ => InstrumentKind::Generic,
    }
}

/// Evenly distributes `total` items over `bins` (first bins get the
/// remainder). Panics if `bins == 0`.
fn distribute(total: usize, bins: usize) -> Vec<usize> {
    let base = total / bins;
    let extra = total % bins;
    (0..bins).map(|i| base + usize::from(i < extra)).collect()
}

/// `TreeFlat` family: a series of units, each a SIB gating a bypassable
/// chain of instrument registers — two multiplexers and one control cell per
/// unit, all cells on the serial backbone.
///
/// # Panics
///
/// Panics unless `muxes` is even, `muxes >= 2`, and
/// `segments >= muxes` (each unit needs its cell plus at least one
/// register).
#[must_use]
pub fn flat(segments: usize, muxes: usize, seg_len: u32) -> Structure {
    assert!(muxes >= 2 && muxes.is_multiple_of(2), "flat tree needs an even mux count >= 2");
    let units = muxes / 2;
    assert!(segments >= muxes, "flat tree needs segments >= muxes (cell + register per unit)");
    let regs = distribute(segments - units, units);
    let mut idx = 0usize;
    let parts = regs
        .iter()
        .enumerate()
        .map(|(u, &k)| {
            let chain: Vec<Structure> = (0..k)
                .map(|_| {
                    let s = iseg(idx, seg_len);
                    idx += 1;
                    s
                })
                .collect();
            Structure::Sib {
                name: Some(format!("u{u}")),
                inner: Box::new(Structure::Parallel {
                    branches: vec![Structure::Series(chain), Structure::Wire],
                    mux: rsn_model::MuxSpec::named(format!("u{u}.byp")),
                }),
            }
        })
        .collect();
    Structure::Series(parts)
}

/// `TreeUnbalanced` family: a caterpillar of nested SIBs — every level holds
/// a few instrument registers and gates the next level.
///
/// # Panics
///
/// Panics unless `segments > muxes >= 1` (each SIB consumes one cell and
/// every level needs at least one register overall).
#[must_use]
pub fn unbalanced(segments: usize, muxes: usize, seg_len: u32) -> Structure {
    assert!(muxes >= 1 && segments > muxes, "unbalanced tree needs segments > muxes >= 1");
    let regs = distribute(segments - muxes, muxes);
    build_unbalanced(&regs, 0, seg_len, &mut 0)
}

fn build_unbalanced(regs: &[usize], level: usize, seg_len: u32, idx: &mut usize) -> Structure {
    let mut body: Vec<Structure> = (0..regs[level])
        .map(|_| {
            let s = iseg(*idx, seg_len);
            *idx += 1;
            s
        })
        .collect();
    if level + 1 < regs.len() {
        body.push(build_unbalanced(regs, level + 1, seg_len, idx));
    }
    Structure::Sib { name: Some(format!("lvl{level}")), inner: Box::new(Structure::Series(body)) }
}

/// `TreeBalanced` family: a balanced binary hierarchy of SIBs; leaf SIBs
/// gate instrument-register chains.
///
/// # Panics
///
/// Panics unless the register budget covers every leaf:
/// `segments - muxes >= ceil((muxes + 1) / 2)`.
#[must_use]
pub fn balanced(segments: usize, muxes: usize, seg_len: u32) -> Structure {
    assert!(muxes >= 1, "balanced tree needs at least one SIB");
    let regs = segments.checked_sub(muxes).expect("segments >= muxes");
    let leaves = leaf_count(muxes);
    assert!(regs >= leaves, "balanced tree needs >= one register per leaf SIB");
    build_balanced(regs, muxes, seg_len, &mut 0, &mut 0)
}

fn leaf_count(muxes: usize) -> usize {
    if muxes <= 1 {
        1
    } else {
        let left = (muxes - 1) / 2;
        let right = muxes - 1 - left;
        // A zero-sized side contributes registers directly, not a leaf SIB.
        let l = if left == 0 { 0 } else { leaf_count(left) };
        let r = if right == 0 { 0 } else { leaf_count(right) };
        (l + r).max(1)
    }
}

fn build_balanced(
    regs: usize,
    muxes: usize,
    seg_len: u32,
    idx: &mut usize,
    sib_idx: &mut usize,
) -> Structure {
    let name = format!("b{}", *sib_idx);
    *sib_idx += 1;
    if muxes == 1 {
        let chain: Vec<Structure> = (0..regs)
            .map(|_| {
                let s = iseg(*idx, seg_len);
                *idx += 1;
                s
            })
            .collect();
        return Structure::Sib { name: Some(name), inner: Box::new(Structure::Series(chain)) };
    }
    let left_muxes = (muxes - 1) / 2;
    let right_muxes = muxes - 1 - left_muxes;
    let (left_leaves, right_leaves) = (
        if left_muxes == 0 { 0 } else { leaf_count(left_muxes) },
        if right_muxes == 0 { 0 } else { leaf_count(right_muxes) },
    );
    let total_leaves = (left_leaves + right_leaves).max(1);
    let left_regs =
        (regs * left_leaves / total_leaves).max(left_leaves).min(regs.saturating_sub(right_leaves));
    let right_regs = regs - left_regs;
    let mut body = Vec::new();
    if left_muxes == 0 {
        body.extend((0..left_regs).map(|_| {
            let s = iseg(*idx, seg_len);
            *idx += 1;
            s
        }));
    } else {
        body.push(build_balanced(left_regs, left_muxes, seg_len, idx, sib_idx));
    }
    if right_muxes == 0 {
        body.extend((0..right_regs).map(|_| {
            let s = iseg(*idx, seg_len);
            *idx += 1;
            s
        }));
    } else {
        body.push(build_balanced(right_regs, right_muxes, seg_len, idx, sib_idx));
    }
    Structure::Sib { name: Some(name), inner: Box::new(Structure::Series(body)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(s: &Structure, segments: usize, muxes: usize) {
        assert_eq!(s.count_segments(), segments, "segment count");
        assert_eq!(s.count_muxes(), muxes, "mux count");
        let (net, built) = s.build("check").unwrap();
        let stats = net.stats();
        assert_eq!(stats.segments, segments);
        assert_eq!(stats.muxes, muxes);
        assert_eq!(
            stats.instruments,
            segments - s.count_muxes_sib_cells(),
            "every register (non-cell segment) hosts an instrument"
        );
        rsn_sp::tree_from_structure(&net, &built).validate(&net).unwrap();
    }

    trait SibCells {
        fn count_muxes_sib_cells(&self) -> usize;
    }
    impl SibCells for Structure {
        /// SIB cells = one per SIB in these generators.
        fn count_muxes_sib_cells(&self) -> usize {
            match self {
                Structure::Sib { inner, .. } => 1 + inner.count_muxes_sib_cells(),
                Structure::Series(parts) => parts.iter().map(SibCells::count_muxes_sib_cells).sum(),
                Structure::Parallel { branches, .. } => {
                    branches.iter().map(SibCells::count_muxes_sib_cells).sum()
                }
                _ => 0,
            }
        }
    }

    #[test]
    fn flat_hits_table_i_counts() {
        check(&flat(24, 24, 8), 24, 24); // TreeFlat
        check(&flat(123, 60, 8), 123, 60); // TreeFlat_Ex
    }

    #[test]
    fn unbalanced_hits_table_i_counts() {
        check(&unbalanced(63, 28, 8), 63, 28); // TreeUnbalanced
    }

    #[test]
    fn balanced_hits_table_i_counts() {
        check(&balanced(90, 46, 8), 90, 46); // TreeBalanced
    }

    #[test]
    fn degenerate_sizes_still_work() {
        check(&flat(2, 2, 1), 2, 2);
        check(&unbalanced(2, 1, 1), 2, 1);
        check(&balanced(2, 1, 1), 2, 1);
    }

    #[test]
    fn sib_cells_are_single_points_of_failure() {
        // The first SIB cell of the unbalanced caterpillar endangers the
        // settability of everything below — that is the family's signature.
        use robust_rsn::{analyze, AnalysisOptions, CriticalitySpec};
        let s = unbalanced(63, 28, 8);
        let (net, built) = s.build("t").unwrap();
        let tree = rsn_sp::tree_from_structure(&net, &built);
        let mut w = CriticalitySpec::new(&net);
        for (i, _) in net.instruments() {
            w.set_weights(i, 1, 1);
        }
        let crit = analyze(&net, &tree, &w, &AnalysisOptions::default());
        let first_cell = net
            .nodes()
            .find(|(_, n)| n.name.as_deref() == Some("lvl0.cell"))
            .map(|(id, _)| id)
            .unwrap();
        // All 35 instruments' settability plus (frozen select) the subtree's
        // observability.
        assert!(
            crit.damage(first_cell) >= 35,
            "root cell must endanger everything: {}",
            crit.damage(first_cell)
        );
    }

    #[test]
    fn balanced_is_roughly_logarithmic() {
        let s = balanced(512, 255, 4);
        let (net, built) = s.build("depth").unwrap();
        let tree = rsn_sp::tree_from_structure(&net, &built);
        assert!(tree.depth() < 80, "depth {}", tree.depth());
    }
}
