//! The Table I benchmark registry: all 24 designs with their published
//! characteristics, per-design SPEA2 parameters, and the paper's reported
//! result columns (used by the bench harness to print paper-vs-measured).

use rsn_model::Structure;

use crate::{mbist, soc, trees};

/// Network family of a benchmark row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Flat bypassable chain (`TreeFlat`, `TreeFlat_Ex`).
    TreeFlat,
    /// Caterpillar SIB-style hierarchy.
    TreeUnbalanced,
    /// Balanced binary selection tree.
    TreeBalanced,
    /// SOC wrapper daisy chain (ITC'02-derived designs).
    Soc {
        /// Seed for the deterministic shape.
        seed: u64,
    },
    /// Hierarchical memory-BIST network.
    Mbist {
        /// Controller count (first parameter of the benchmark name).
        controllers: usize,
    },
}

/// The paper's reported numbers for one row of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperRow {
    /// Column 4: cost of hardening every primitive.
    pub max_cost: u64,
    /// Column 5: damage with nothing hardened.
    pub max_damage: u64,
    /// Columns 7–8: (cost, damage) of the best solution with damage ≤ 10 %.
    pub at_damage10: (u64, u64),
    /// Columns 9–10: (cost, damage) of the best solution with cost ≤ 10 %.
    pub at_cost10: (u64, u64),
    /// Column 11: reported runtime in seconds.
    pub time_s: u32,
}

/// One benchmark design: published characteristics plus generator recipe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Design name (column 1 header).
    pub name: &'static str,
    /// Topological family and generator parameters.
    pub family: Family,
    /// Column 1: number of scan segments.
    pub segments: usize,
    /// Column 2: number of scan multiplexers.
    pub muxes: usize,
    /// Column 6: SPEA2 generations used by the paper.
    pub generations: usize,
    /// The paper's result columns.
    pub paper: PaperRow,
}

impl BenchmarkSpec {
    /// Generates the network structure with exactly the published
    /// segment/multiplexer counts.
    #[must_use]
    pub fn generate(&self) -> Structure {
        match self.family {
            Family::TreeFlat => trees::flat(self.segments, self.muxes, 8),
            Family::TreeUnbalanced => trees::unbalanced(self.segments, self.muxes, 8),
            Family::TreeBalanced => trees::balanced(self.segments, self.muxes, 8),
            Family::Soc { seed } => soc::soc(self.segments, self.muxes, seed),
            Family::Mbist { controllers } => {
                mbist::mbist_sized(self.segments, self.muxes, controllers)
            }
        }
    }

    /// SPEA2 population size per §VI: 300 for networks with more than 100
    /// multiplexers, 100 otherwise.
    #[must_use]
    pub fn population(&self) -> usize {
        if self.muxes > 100 {
            300
        } else {
            100
        }
    }
}

macro_rules! rows {
    ($($name:literal, $family:expr, $segs:literal, $muxes:literal, $gens:literal,
       $maxc:literal, $maxd:literal, ($c7:literal, $c8:literal), ($c9:literal, $c10:literal),
       $time:literal;)*) => {
        vec![$(BenchmarkSpec {
            name: $name,
            family: $family,
            segments: $segs,
            muxes: $muxes,
            generations: $gens,
            paper: PaperRow {
                max_cost: $maxc,
                max_damage: $maxd,
                at_damage10: ($c7, $c8),
                at_cost10: ($c9, $c10),
                time_s: $time,
            },
        }),*]
    };
}

/// All 24 designs of Table I in publication order.
#[must_use]
pub fn table_i() -> Vec<BenchmarkSpec> {
    rows![
        "TreeFlat", Family::TreeFlat, 24, 24, 300, 350, 502, (7, 42), (8, 26), 7;
        "TreeUnbalanced", Family::TreeUnbalanced, 63, 28, 300, 142, 1_656, (10, 155), (14, 31), 2;
        "TreeBalanced", Family::TreeBalanced, 90, 46, 1_000, 211, 4_206, (18, 362), (21, 216), 3;
        "TreeFlat_Ex", Family::TreeFlat, 123, 60, 2_000, 289, 597, (29, 57), (28, 60), 4;
        "q12710", Family::Soc { seed: 0x1271 }, 47, 25, 300, 127, 576, (8, 27), (12, 19), 3;
        "a586710", Family::Soc { seed: 0x5867 }, 79, 47, 2_000, 155, 1_010, (5, 90), (15, 24), 15;
        "p34392", Family::Soc { seed: 0x3439 }, 245, 142, 700, 482, 7_932, (8, 683), (48, 68), 34;
        "t512505", Family::Soc { seed: 0x5125 }, 288, 160, 1_000, 713, 7_146, (21, 699), (71, 121), 16;
        "p22810", Family::Soc { seed: 0x2281 }, 537, 283, 1_000, 1_298, 22_911, (33, 2_215), (28, 3_712), 61;
        "p93791", Family::Soc { seed: 0x9379 }, 1_241, 653, 3_500, 2_946, 293_771, (38, 28_681), (286, 561), 370;
        "MBIST_1_5_5", Family::Mbist { controllers: 1 }, 113, 15, 300, 137, 74_004, (32, 7_176), (13, 20_799), 26;
        "MBIST_1_5_20", Family::Mbist { controllers: 1 }, 1_523, 15, 400, 362, 632_421, (35, 62_264), (36, 60_344), 141;
        "MBIST_1_20_20", Family::Mbist { controllers: 1 }, 6_068, 45, 500, 1_412, 8_252_305, (129, 801_889), (137, 752_261), 601;
        "MBIST_2_5_5", Family::Mbist { controllers: 2 }, 1_091, 28, 500, 137, 83_509, (19, 8_141), (13, 12_081), 225;
        "MBIST_2_5_20", Family::Mbist { controllers: 2 }, 3_041, 28, 700, 362, 560_484, (34, 54_314), (36, 50_060), 257;
        "MBIST_2_20_20", Family::Mbist { controllers: 2 }, 12_131, 88, 700, 1_412, 8_174_778, (129, 788_085), (138, 722_191), 498;
        "MBIST_5_5_5", Family::Mbist { controllers: 5 }, 2_720, 67, 500, 411, 148_811, (8, 14_213), (41, 163), 70;
        "MBIST_5_20_20", Family::Mbist { controllers: 5 }, 30_320, 217, 900, 385, 6_175_005, (127, 614_605), (36, 1_343_502), 902;
        "MBIST_5_100_20", Family::Mbist { controllers: 5 }, 151_520, 1_017, 200, 7_012, 203_302_366, (1_983, 20_555_328), (701, 48_147_171), 2_117;
        "MBIST_5_100_100", Family::Mbist { controllers: 5 }, 671_520, 1_017, 1_500, 93_447, 2_138_755_955, (17_066, 213_650_290), (8_625, 405_742_391), 5_521;
        "MBIST_20_20_20", Family::Mbist { controllers: 20 }, 121_265, 862, 900, 1_412, 6_175_005, (131, 605_065), (141, 537_474), 1_420;
        "MBIST_55_20_5", Family::Mbist { controllers: 55 }, 216_305, 8_102, 500, 512, 814_369, (112, 78_595), (51, 208_782), 343;
        "MBIST_100_20_5", Family::Mbist { controllers: 100 }, 118_970, 2_367, 1_800, 512, 639_278, (87, 63_268), (51, 144_057), 435;
        "MBIST_100_100_5", Family::Mbist { controllers: 100 }, 1_080_305, 20_102, 1_200, 2_512, 20_977_832, (273, 2_096_139), (248, 2_396_324), 3_572;
    ]
}

/// Looks a design up by its Table I name.
#[must_use]
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    table_i().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_24_rows() {
        assert_eq!(table_i().len(), 24);
    }

    #[test]
    fn lookup_by_name_works() {
        let b = by_name("p93791").unwrap();
        assert_eq!(b.segments, 1_241);
        assert_eq!(b.muxes, 653);
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn population_follows_the_mux_rule() {
        assert_eq!(by_name("TreeFlat").unwrap().population(), 100);
        assert_eq!(by_name("p34392").unwrap().population(), 300);
    }

    #[test]
    fn small_and_medium_rows_generate_exact_counts() {
        for b in table_i() {
            if b.segments > 20_000 {
                continue; // large rows covered by the ignored test below
            }
            let s = b.generate();
            assert_eq!(s.count_segments(), b.segments, "{}", b.name);
            assert_eq!(s.count_muxes(), b.muxes, "{}", b.name);
        }
    }

    #[test]
    #[ignore = "large allocations; run with --ignored"]
    fn large_rows_generate_exact_counts() {
        for b in table_i() {
            if b.segments <= 20_000 {
                continue;
            }
            let s = b.generate();
            assert_eq!(s.count_segments(), b.segments, "{}", b.name);
            assert_eq!(s.count_muxes(), b.muxes, "{}", b.name);
        }
    }
}
