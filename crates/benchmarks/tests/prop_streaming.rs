//! Property tests pinning the streaming/iterative model paths to the
//! straightforward semantics they replaced.
//!
//! The `.rsn` parser lexes one token ahead instead of materializing a token
//! vector, and the parser, printer, builder and `normalized()` all walk
//! with explicit work stacks instead of call-stack recursion. None of that
//! may change observable behavior: for random SP structures, printing and
//! re-parsing must reproduce the same structure (modulo series flattening,
//! which `normalized()` canonicalizes), and building the re-parsed text
//! must yield a graph byte-identical under the flat ICL export.

use proptest::prelude::*;
use rsn_benchmarks::{random_structure, RandomParams};
use rsn_model::format::{parse_network, print_network};
use rsn_model::icl::export_icl;

proptest! {
    #[test]
    fn print_parse_roundtrip_is_identity_modulo_series_flattening(seed in 0u64..300) {
        let s = random_structure(&RandomParams::default(), seed);
        let text = print_network("prop", &s);
        let (name, parsed) = parse_network(&text).expect("printed networks parse");
        prop_assert_eq!(name, "prop");
        prop_assert_eq!(parsed.count_segments(), s.count_segments());
        prop_assert_eq!(parsed.count_muxes(), s.count_muxes());
        prop_assert_eq!(parsed.count_instruments(), s.count_instruments());
        prop_assert_eq!(parsed.normalized(), s.normalized());
    }

    #[test]
    fn building_the_reparsed_text_yields_an_identical_graph(seed in 0u64..300) {
        let s = random_structure(&RandomParams::default(), seed);
        let text = print_network("prop", &s);
        let (_, parsed) = parse_network(&text).expect("printed networks parse");
        let (net_a, built_a) = s.build("prop").expect("original builds");
        let (net_b, built_b) = parsed.build("prop").expect("reparsed builds");
        prop_assert_eq!(net_a.node_count(), net_b.node_count());
        // The flat ICL export covers every node, name, length, instrument
        // and connection in a canonical order — byte equality means the
        // builder produced the same graph either way.
        prop_assert_eq!(export_icl(&net_a), export_icl(&net_b));
        prop_assert_eq!(built_a.segments_in_order(), built_b.segments_in_order());
    }

    #[test]
    fn deeper_nesting_keeps_the_roundtrip_exact(depth in 1usize..60, seed in 0u64..50) {
        // Anonymous SIB towers around a random payload: the continuation
        // stacks in the parser/printer/builder close one frame per level.
        let mut s = random_structure(
            &RandomParams { max_depth: 2, ..RandomParams::default() },
            seed,
        );
        for _ in 0..depth {
            s = rsn_model::Structure::Sib { name: None, inner: Box::new(s) };
        }
        let text = print_network("tower", &s);
        let (_, parsed) = parse_network(&text).expect("printed towers parse");
        prop_assert_eq!(parsed.count_segments(), s.count_segments());
        prop_assert_eq!(parsed.count_muxes(), s.count_muxes());
        let (net_a, _) = s.build("tower").expect("original builds");
        let (net_b, _) = parsed.build("tower").expect("reparsed builds");
        prop_assert_eq!(export_icl(&net_a), export_icl(&net_b));
    }
}
