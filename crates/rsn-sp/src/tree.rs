//! Binary decomposition trees for series-parallel RSNs (§III, Fig. 3).
//!
//! A [`DecompTree`] is an arena of S ("series") and P ("parallel") nodes over
//! leaves that are the scan primitives of a [`ScanNetwork`]. Leaves appear in
//! scan order from left (scan-in side) to right (scan-out side); every
//! parallel group is annotated with the scan multiplexer that closes it.

use std::fmt;

use serde::{Deserialize, Serialize};

use rsn_model::{NodeId, ScanNetwork};

/// Identifier of a node in a [`DecompTree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TreeId(u32);

impl TreeId {
    /// Creates an identifier from a raw arena index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        Self(index as u32)
    }

    /// The raw arena index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A leaf of the decomposition tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Leaf {
    /// A scan segment.
    Segment(NodeId),
    /// A scan multiplexer (it follows its parallel group in series).
    Mux(NodeId),
    /// A pure bypass wire (e.g. the bypass branch of a SIB).
    Wire,
}

/// An arena node: a leaf, a series composition, or a parallel composition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeNode {
    /// A leaf primitive.
    Leaf(Leaf),
    /// Series composition: `left` is on the scan-in side of `right`.
    Series {
        /// Scan-in side child.
        left: TreeId,
        /// Scan-out side child.
        right: TreeId,
    },
    /// Parallel composition of alternative branches, closed by `mux`.
    Parallel {
        /// First branch subtree.
        left: TreeId,
        /// Second branch subtree.
        right: TreeId,
        /// The multiplexer joining the group (a leaf elsewhere in the tree).
        mux: NodeId,
    },
}

/// The annotated binary decomposition tree of a series-parallel RSN.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecompTree {
    nodes: Vec<TreeNode>,
    parents: Vec<Option<TreeId>>,
    root: TreeId,
    /// For each network node id: the tree leaf representing it (dense map).
    leaf_of: Vec<Option<TreeId>>,
    /// For each multiplexer: the roots of its branches in select order.
    mux_branches: Vec<Option<Vec<TreeId>>>,
}

impl DecompTree {
    /// Creates an empty tree builder arena sized for `net`.
    #[must_use]
    pub(crate) fn with_capacity(net: &ScanNetwork) -> Self {
        Self {
            nodes: Vec::with_capacity(net.node_count() * 2),
            parents: Vec::new(),
            root: TreeId::new(0),
            leaf_of: vec![None; net.node_count()],
            mux_branches: vec![None; net.node_count()],
        }
    }

    pub(crate) fn push(&mut self, node: TreeNode) -> TreeId {
        let id = TreeId::new(self.nodes.len());
        self.nodes.push(node);
        self.parents.push(None);
        match node {
            TreeNode::Leaf(Leaf::Segment(n) | Leaf::Mux(n)) => {
                self.leaf_of[n.index()] = Some(id);
            }
            TreeNode::Leaf(Leaf::Wire) => {}
            TreeNode::Series { left, right } | TreeNode::Parallel { left, right, .. } => {
                self.parents[left.index()] = Some(id);
                self.parents[right.index()] = Some(id);
            }
        }
        id
    }

    pub(crate) fn set_root(&mut self, root: TreeId) {
        self.root = root;
    }

    pub(crate) fn set_mux_branches(&mut self, mux: NodeId, branches: Vec<TreeId>) {
        self.mux_branches[mux.index()] = Some(branches);
    }

    /// The root of the tree.
    #[must_use]
    pub fn root(&self) -> TreeId {
        self.root
    }

    /// Number of arena nodes (leaves and internal nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for an empty arena (never produced by the builders).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: TreeId) -> TreeNode {
        self.nodes[id.index()]
    }

    /// The parent of `id`, or `None` at the root.
    #[must_use]
    pub fn parent(&self, id: TreeId) -> Option<TreeId> {
        self.parents[id.index()]
    }

    /// The tree leaf representing network node `n`, if any.
    #[must_use]
    pub fn leaf_of(&self, n: NodeId) -> Option<TreeId> {
        self.leaf_of.get(n.index()).copied().flatten()
    }

    /// The branch roots of multiplexer `mux` in select order, if `mux` closes
    /// a parallel group in this tree.
    #[must_use]
    pub fn branches_of(&self, mux: NodeId) -> Option<&[TreeId]> {
        self.mux_branches.get(mux.index()).and_then(|b| b.as_deref())
    }

    /// Iterates over all arena ids in post order (left, right, node) — the
    /// reverse polish order the paper's hierarchical computation follows.
    #[must_use]
    pub fn post_order(&self) -> Vec<TreeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        if self.nodes.is_empty() {
            return out;
        }
        // Iterative post-order: (node, expanded) stack.
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                out.push(id);
                continue;
            }
            match self.node(id) {
                TreeNode::Leaf(_) => out.push(id),
                TreeNode::Series { left, right } | TreeNode::Parallel { left, right, .. } => {
                    stack.push((id, true));
                    stack.push((right, false));
                    stack.push((left, false));
                }
            }
        }
        out
    }

    /// The leaves in scan order (left to right).
    #[must_use]
    pub fn leaves_in_order(&self) -> Vec<(TreeId, Leaf)> {
        self.post_order()
            .into_iter()
            .filter_map(|id| match self.node(id) {
                TreeNode::Leaf(l) => Some((id, l)),
                _ => None,
            })
            .collect()
    }

    /// Maximum depth of the tree (a single leaf has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for id in self.post_order() {
            let d = match self.node(id) {
                TreeNode::Leaf(_) => 1,
                TreeNode::Series { left, right } | TreeNode::Parallel { left, right, .. } => {
                    1 + depth[left.index()].max(depth[right.index()])
                }
            };
            depth[id.index()] = d;
            max = max.max(d);
        }
        max
    }

    /// Checks the tree against the network: every segment and multiplexer
    /// appears exactly once as a leaf, parents are consistent, and every
    /// parallel group is annotated with a multiplexer that exists.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self, net: &ScanNetwork) -> Result<(), String> {
        let mut seen = vec![0usize; net.node_count()];
        for (_, leaf) in self.leaves_in_order() {
            if let Leaf::Segment(n) | Leaf::Mux(n) = leaf {
                seen[n.index()] += 1;
                let kind = &net.node(n).kind;
                let ok = match leaf {
                    Leaf::Segment(_) => kind.is_segment(),
                    Leaf::Mux(_) => kind.is_mux(),
                    Leaf::Wire => true,
                };
                if !ok {
                    return Err(format!("leaf kind mismatch for network node {n}"));
                }
            }
        }
        for p in net.primitives() {
            if seen[p.index()] != 1 {
                return Err(format!("primitive {p} appears {} times in the tree", seen[p.index()]));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let TreeNode::Series { left, right } | TreeNode::Parallel { left, right, .. } = node
            {
                for child in [left, right] {
                    if self.parents[child.index()] != Some(TreeId::new(i)) {
                        return Err(format!("broken parent link at arena index {i}"));
                    }
                }
            }
            if let TreeNode::Parallel { mux, .. } = node {
                if !net.node(*mux).kind.is_mux() {
                    return Err(format!("parallel group annotated with non-mux {mux}"));
                }
                if self.mux_branches[mux.index()].is_none() {
                    return Err(format!("missing branch list for mux {mux}"));
                }
            }
        }
        // The post order must visit every arena node exactly once (no
        // orphans, no sharing).
        if self.post_order().len() != self.nodes.len() {
            return Err("arena contains orphaned or shared nodes".into());
        }
        Ok(())
    }

    /// Counts S nodes, P nodes, and leaves.
    #[must_use]
    pub fn shape(&self) -> TreeShape {
        let mut shape = TreeShape::default();
        for node in &self.nodes {
            match node {
                TreeNode::Leaf(Leaf::Segment(_)) => shape.segment_leaves += 1,
                TreeNode::Leaf(Leaf::Mux(_)) => shape.mux_leaves += 1,
                TreeNode::Leaf(Leaf::Wire) => shape.wire_leaves += 1,
                TreeNode::Series { .. } => shape.series += 1,
                TreeNode::Parallel { .. } => shape.parallel += 1,
            }
        }
        shape
    }
}

/// Node-kind counts of a tree; see [`DecompTree::shape`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeShape {
    /// Number of S (series) nodes.
    pub series: usize,
    /// Number of P (parallel) nodes.
    pub parallel: usize,
    /// Number of segment leaves.
    pub segment_leaves: usize,
    /// Number of multiplexer leaves.
    pub mux_leaves: usize,
    /// Number of bypass-wire leaves.
    pub wire_leaves: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::tree_from_structure;
    use rsn_model::Structure;

    fn demo() -> (ScanNetwork, DecompTree) {
        let s = Structure::series(vec![
            Structure::seg("c0", 2),
            Structure::parallel(vec![Structure::seg("c1", 1), Structure::seg("c2", 1)], "m0"),
            Structure::seg("c3", 2),
        ]);
        let (net, built) = s.build("demo").unwrap();
        let tree = tree_from_structure(&net, &built);
        (net, tree)
    }

    #[test]
    fn leaves_appear_in_scan_order() {
        let (net, tree) = demo();
        let names: Vec<String> = tree
            .leaves_in_order()
            .into_iter()
            .filter_map(|(_, l)| match l {
                Leaf::Segment(n) | Leaf::Mux(n) => Some(net.node(n).label(n)),
                Leaf::Wire => None,
            })
            .collect();
        assert_eq!(names, ["c0", "c1", "c2", "m0", "c3"]);
    }

    #[test]
    fn validates_against_network() {
        let (net, tree) = demo();
        tree.validate(&net).unwrap();
    }

    #[test]
    fn shape_counts_nodes() {
        let (_, tree) = demo();
        let shape = tree.shape();
        assert_eq!(shape.segment_leaves, 4);
        assert_eq!(shape.mux_leaves, 1);
        assert_eq!(shape.parallel, 1);
        // Binary tree: internal nodes = leaves - 1.
        assert_eq!(
            shape.series + shape.parallel,
            shape.segment_leaves + shape.mux_leaves + shape.wire_leaves - 1
        );
    }

    #[test]
    fn parents_are_inverse_of_children() {
        let (_, tree) = demo();
        for id in tree.post_order() {
            if let TreeNode::Series { left, right } | TreeNode::Parallel { left, right, .. } =
                tree.node(id)
            {
                assert_eq!(tree.parent(left), Some(id));
                assert_eq!(tree.parent(right), Some(id));
            }
        }
        assert_eq!(tree.parent(tree.root()), None);
    }

    #[test]
    fn branches_of_mux_in_select_order() {
        let (net, tree) = demo();
        let m = net.muxes().next().unwrap();
        let branches = tree.branches_of(m).unwrap();
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn post_order_visits_children_before_parents() {
        let (_, tree) = demo();
        let order = tree.post_order();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for id in &order {
            if let TreeNode::Series { left, right } | TreeNode::Parallel { left, right, .. } =
                tree.node(*id)
            {
                assert!(pos[&left] < pos[id]);
                assert!(pos[&right] < pos[id]);
            }
        }
    }
}
