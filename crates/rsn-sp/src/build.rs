//! Construction of decomposition trees from structural descriptions.
//!
//! The [`BuiltStructure`] produced by [`Structure::build`] already *is* a
//! (hierarchical, n-ary) series-parallel decomposition; this module lowers it
//! into the binary [`DecompTree`] form, folding series chains and parallel
//! groups **balanced** so that the tree depth stays logarithmic even for the
//! hundred-thousand-segment benchmark networks.
//!
//! [`Structure::build`]: rsn_model::Structure::build

use rsn_model::{BuiltStructure, NodeId, ScanNetwork};

use crate::tree::{DecompTree, Leaf, TreeId, TreeNode};

/// Lowers a built structure into its binary decomposition tree.
///
/// The resulting tree is validated by construction: leaves appear in scan
/// order and every parallel group carries its closing multiplexer.
///
/// # Panics
///
/// Panics if `built` references node ids outside `net` (impossible when both
/// come from the same [`Structure::build`](rsn_model::Structure::build)
/// call).
#[must_use]
pub fn tree_from_structure(net: &ScanNetwork, built: &BuiltStructure) -> DecompTree {
    let mut tree = DecompTree::with_capacity(net);
    let root = lower(&mut tree, built);
    let root = match root {
        Some(r) => r,
        // A degenerate network without primitives: a single wire leaf.
        None => tree.push(TreeNode::Leaf(Leaf::Wire)),
    };
    tree.set_root(root);
    tree
}

/// Returns the subtree root for `bs`, or `None` for pure wires (which only
/// materialize as leaves inside parallel groups).
fn lower(tree: &mut DecompTree, bs: &BuiltStructure) -> Option<TreeId> {
    match bs {
        BuiltStructure::Segment(id) => Some(tree.push(TreeNode::Leaf(Leaf::Segment(*id)))),
        BuiltStructure::Wire => None,
        BuiltStructure::Series(parts) => {
            let children: Vec<TreeId> = parts.iter().filter_map(|p| lower(tree, p)).collect();
            fold_series(tree, children)
        }
        BuiltStructure::Parallel { branches, mux } => {
            let branch_roots: Vec<TreeId> = branches
                .iter()
                .map(|b| lower(tree, b).unwrap_or_else(|| tree.push(TreeNode::Leaf(Leaf::Wire))))
                .collect();
            tree.set_mux_branches(*mux, branch_roots.clone());
            let group = fold_parallel(tree, branch_roots, *mux)
                .expect("parallel groups have at least two branches");
            let mux_leaf = tree.push(TreeNode::Leaf(Leaf::Mux(*mux)));
            Some(tree.push(TreeNode::Series { left: group, right: mux_leaf }))
        }
    }
}

/// Balanced left-to-right series fold.
fn fold_series(tree: &mut DecompTree, mut items: Vec<TreeId>) -> Option<TreeId> {
    if items.is_empty() {
        return None;
    }
    while items.len() > 1 {
        items =
            pairwise(tree, items, |tree, left, right| tree.push(TreeNode::Series { left, right }));
    }
    items.pop()
}

/// Balanced parallel fold; every internal P node carries the group's mux.
fn fold_parallel(tree: &mut DecompTree, mut items: Vec<TreeId>, mux: NodeId) -> Option<TreeId> {
    if items.is_empty() {
        return None;
    }
    while items.len() > 1 {
        items = pairwise(tree, items, |tree, left, right| {
            tree.push(TreeNode::Parallel { left, right, mux })
        });
    }
    items.pop()
}

fn pairwise(
    tree: &mut DecompTree,
    items: Vec<TreeId>,
    mut join: impl FnMut(&mut DecompTree, TreeId, TreeId) -> TreeId,
) -> Vec<TreeId> {
    let mut next = Vec::with_capacity(items.len().div_ceil(2));
    let mut iter = items.into_iter();
    while let Some(a) = iter.next() {
        match iter.next() {
            Some(b) => next.push(join(tree, a, b)),
            None => next.push(a),
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_model::Structure;

    #[test]
    fn long_series_chain_has_logarithmic_depth() {
        let parts: Vec<Structure> = (0..1024).map(|i| Structure::seg(format!("c{i}"), 1)).collect();
        let (net, built) = Structure::series(parts).build("chain").unwrap();
        let tree = tree_from_structure(&net, &built);
        tree.validate(&net).unwrap();
        assert_eq!(tree.shape().segment_leaves, 1024);
        assert!(tree.depth() <= 12, "depth {} should be ~log2(1024)+1", tree.depth());
    }

    #[test]
    fn wide_parallel_group_has_logarithmic_depth() {
        let branches: Vec<Structure> =
            (0..256).map(|i| Structure::seg(format!("b{i}"), 1)).collect();
        let (net, built) = Structure::parallel(branches, "m").build("wide").unwrap();
        let tree = tree_from_structure(&net, &built);
        tree.validate(&net).unwrap();
        let m = net.muxes().next().unwrap();
        assert_eq!(tree.branches_of(m).unwrap().len(), 256);
        assert!(tree.depth() <= 11, "depth {}", tree.depth());
    }

    #[test]
    fn sib_lowering_keeps_wire_branch() {
        let (net, built) = Structure::sib("s", Structure::seg("d", 4)).build("sib").unwrap();
        let tree = tree_from_structure(&net, &built);
        tree.validate(&net).unwrap();
        let shape = tree.shape();
        assert_eq!(shape.wire_leaves, 1);
        assert_eq!(shape.segment_leaves, 2);
        assert_eq!(shape.mux_leaves, 1);
        // Select order: branch 0 is the bypass wire.
        let m = net.muxes().next().unwrap();
        let branches = tree.branches_of(m).unwrap();
        assert!(matches!(tree.node(branches[0]), TreeNode::Leaf(Leaf::Wire)));
    }

    #[test]
    fn degenerate_empty_structure_yields_wire_root() {
        let (net, built) = Structure::series(vec![]).build("empty").unwrap();
        let tree = tree_from_structure(&net, &built);
        assert!(matches!(tree.node(tree.root()), TreeNode::Leaf(Leaf::Wire)));
    }

    #[test]
    fn mux_leaf_follows_its_group_in_series() {
        let s = Structure::parallel(vec![Structure::seg("a", 1), Structure::seg("b", 1)], "m");
        let (net, built) = s.build("t").unwrap();
        let tree = tree_from_structure(&net, &built);
        match tree.node(tree.root()) {
            TreeNode::Series { left, right } => {
                assert!(matches!(tree.node(left), TreeNode::Parallel { .. }));
                assert!(matches!(tree.node(right), TreeNode::Leaf(Leaf::Mux(_))));
            }
            other => panic!("expected S(P, mux), got {other:?}"),
        }
    }
}
