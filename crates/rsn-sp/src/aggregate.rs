//! Bottom-up subtree aggregates over decomposition trees.
//!
//! The criticality analysis of the `robust-rsn` crate needs, for every tree
//! node, sums of per-leaf values (damage weights) over the node's subtree.
//! This module computes such aggregates in a single iterative post-order
//! pass, safe for very deep trees.

use crate::tree::{DecompTree, Leaf, TreeId, TreeNode};

/// Computes, for every arena node, the sum of `leaf_value` over the leaves of
/// its subtree. Indexed by [`TreeId::index`].
///
/// # Examples
///
/// Count segments per subtree:
///
/// ```
/// use rsn_model::Structure;
/// use rsn_sp::{aggregate::subtree_sums, tree_from_structure, Leaf};
///
/// let (net, built) = Structure::series(vec![
///     Structure::seg("a", 1),
///     Structure::seg("b", 1),
/// ]).build("t")?;
/// let tree = tree_from_structure(&net, &built);
/// let counts = subtree_sums(&tree, |leaf| match leaf {
///     Leaf::Segment(_) => 1,
///     _ => 0,
/// });
/// assert_eq!(counts[tree.root().index()], 2);
/// # Ok::<(), rsn_model::NetworkError>(())
/// ```
#[must_use]
pub fn subtree_sums(tree: &DecompTree, mut leaf_value: impl FnMut(Leaf) -> u64) -> Vec<u64> {
    let mut sums = vec![0u64; tree.len()];
    for id in tree.post_order() {
        sums[id.index()] = match tree.node(id) {
            TreeNode::Leaf(l) => leaf_value(l),
            TreeNode::Series { left, right } | TreeNode::Parallel { left, right, .. } => {
                // Saturating: leaf values are caller controlled (damage
                // weights); a wrapped subtree sum would corrupt every
                // ancestor, a saturated one stays a monotone ceiling.
                sums[left.index()].saturating_add(sums[right.index()])
            }
        };
    }
    sums
}

/// The sum of `sums` over a list of subtree roots (e.g. a mux's branches).
#[must_use]
pub fn sum_over(sums: &[u64], roots: &[TreeId]) -> u64 {
    roots.iter().fold(0u64, |a, r| a.saturating_add(sums[r.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::tree_from_structure;
    use rsn_model::Structure;

    #[test]
    fn sums_respect_parallel_groups() {
        let s = Structure::series(vec![
            Structure::seg("a", 1),
            Structure::parallel(vec![Structure::seg("b", 1), Structure::seg("c", 1)], "m"),
        ]);
        let (net, built) = s.build("t").unwrap();
        let tree = tree_from_structure(&net, &built);
        let ones = subtree_sums(&tree, |l| u64::from(matches!(l, Leaf::Segment(_))));
        assert_eq!(ones[tree.root().index()], 3);
        let m = net.muxes().next().unwrap();
        let branches = tree.branches_of(m).unwrap();
        assert_eq!(sum_over(&ones, branches), 2);
    }

    #[test]
    fn wire_and_mux_leaves_contribute_their_value() {
        let s = Structure::sib("s", Structure::seg("d", 1));
        let (net, built) = s.build("t").unwrap();
        let tree = tree_from_structure(&net, &built);
        let muxes = subtree_sums(&tree, |l| u64::from(matches!(l, Leaf::Mux(_))));
        assert_eq!(muxes[tree.root().index()], 1);
        let wires = subtree_sums(&tree, |l| u64::from(matches!(l, Leaf::Wire)));
        assert_eq!(wires[tree.root().index()], 1);
    }
}
