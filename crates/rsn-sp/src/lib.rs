//! Series-parallel decomposition substrate for reconfigurable scan networks.
//!
//! Hierarchical series-parallel (SP) RSNs admit a **binary decomposition
//! tree** (§III, Definition 1 and Fig. 3 of *Robust Reconfigurable Scan
//! Networks*, DATE 2022) on which accessibility questions become subtree
//! aggregates. This crate provides:
//!
//! * the annotated [`DecompTree`] arena ([`tree`]) with S/P internal nodes,
//!   scan-ordered leaves, and per-multiplexer branch lists;
//! * [`tree_from_structure`] ([`build`]): balanced lowering of the structural
//!   description that produced a network;
//! * [`recognize()`](recognize()): SP recognition of raw RSN graphs by
//!   series/parallel reduction;
//! * [`aggregate`]: iterative subtree sums used by the criticality analysis;
//! * [`render`]: ASCII rendering for reports and examples.
//!
//! # Examples
//!
//! ```
//! use rsn_model::Structure;
//! use rsn_sp::{recognize, tree_from_structure};
//!
//! let s = Structure::series(vec![
//!     Structure::seg("c0", 2),
//!     Structure::sib("s0", Structure::seg("d0", 4)),
//! ]);
//! let (net, built) = s.build("demo")?;
//! // Either lower the known structure...
//! let tree = tree_from_structure(&net, &built);
//! // ...or recover an equivalent tree from the bare graph.
//! let recovered = recognize(&net)?;
//! assert_eq!(tree.shape().segment_leaves, recovered.shape().segment_leaves);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod build;
pub mod recognize;
pub mod render;
pub mod tree;

pub use build::tree_from_structure;
pub use recognize::{recognize, RecognizeError};
pub use tree::{DecompTree, Leaf, TreeId, TreeNode, TreeShape};
