//! Series-parallel recognition of RSN graphs by reduction.
//!
//! Builds the binary decomposition tree directly from a [`ScanNetwork`]
//! graph, without structural information, by exhaustively applying the two
//! classic SP reductions:
//!
//! * **series**: an inner vertex with one live in-edge and one live out-edge
//!   is absorbed into a combined edge (contributing its leaf if it is a scan
//!   primitive);
//! * **parallel**: once all branches entering a multiplexer have been reduced
//!   to single edges from a common fan-out stem, the group is merged into one
//!   edge carrying the annotated P subtree.
//!
//! The graph is series-parallel iff the process terminates with a single edge
//! from scan-in to scan-out ([Valdes, Tarjan, Lawler 1982] adapted to the
//! vertex-primitive RSN encoding of §III). Non-SP RSNs would need virtual
//! vertices as in the paper's reference \[19\]; such graphs are reported via
//! [`RecognizeError::NotSeriesParallel`] together with the irreducible kernel
//! size. All benchmark generators in this workspace emit SP networks.

use std::fmt;

use rsn_model::{NodeId, NodeKind, ScanNetwork};

use crate::tree::{DecompTree, Leaf, TreeId, TreeNode};

/// Error raised when a graph cannot be decomposed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecognizeError {
    /// The reduction got stuck; the graph is not (two-terminal) series
    /// parallel. Carries the number of live edges in the irreducible kernel.
    NotSeriesParallel {
        /// Live edges remaining when no reduction applied.
        remaining_edges: usize,
    },
    /// The graph violates an RSN invariant (e.g. reconvergence at a
    /// non-multiplexer vertex).
    Invalid(String),
}

impl fmt::Display for RecognizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotSeriesParallel { remaining_edges } => {
                write!(f, "graph is not series-parallel ({remaining_edges} edges left irreducible)")
            }
            Self::Invalid(msg) => write!(f, "invalid RSN graph: {msg}"),
        }
    }
}

impl std::error::Error for RecognizeError {}

#[derive(Clone, Debug)]
struct Edge {
    from: NodeId,
    to: NodeId,
    /// Subtree traversed between the endpoints (`None` = bare wire).
    payload: Option<TreeId>,
    /// Select port when `to` is a multiplexer.
    port: Option<usize>,
    alive: bool,
}

struct Reducer<'a> {
    net: &'a ScanNetwork,
    edges: Vec<Edge>,
    out: Vec<Vec<usize>>,
    inn: Vec<Vec<usize>>,
    tree: DecompTree,
}

/// Recognizes `net` as a series-parallel RSN and returns its decomposition
/// tree.
///
/// # Errors
///
/// Returns [`RecognizeError::NotSeriesParallel`] when the reduction gets
/// stuck and [`RecognizeError::Invalid`] for RSN-invariant violations.
pub fn recognize(net: &ScanNetwork) -> Result<DecompTree, RecognizeError> {
    let mut r = Reducer {
        net,
        edges: Vec::new(),
        out: vec![Vec::new(); net.node_count()],
        inn: vec![Vec::new(); net.node_count()],
        tree: DecompTree::with_capacity(net),
    };
    for (u, _) in net.nodes() {
        for &v in net.successors(u) {
            let port =
                net.node(v).kind.as_mux().map(|m| {
                    m.inputs.iter().position(|&i| i == u).expect("edge into mux is an input")
                });
            let id = r.edges.len();
            r.edges.push(Edge { from: u, to: v, payload: None, port, alive: true });
            r.out[u.index()].push(id);
            r.inn[v.index()].push(id);
        }
    }
    r.run()
}

impl Reducer<'_> {
    fn live_in(&self, v: NodeId) -> Vec<usize> {
        self.inn[v.index()].iter().copied().filter(|&e| self.edges[e].alive).collect()
    }

    fn live_out(&self, v: NodeId) -> Vec<usize> {
        self.out[v.index()].iter().copied().filter(|&e| self.edges[e].alive).collect()
    }

    fn add_edge(&mut self, edge: Edge) -> usize {
        let id = self.edges.len();
        self.out[edge.from.index()].push(id);
        self.inn[edge.to.index()].push(id);
        self.edges.push(edge);
        id
    }

    fn leaf_for(&mut self, v: NodeId) -> Option<TreeId> {
        match &self.net.node(v).kind {
            NodeKind::Segment(_) => Some(self.tree.push(TreeNode::Leaf(Leaf::Segment(v)))),
            NodeKind::Mux(_) => Some(self.tree.push(TreeNode::Leaf(Leaf::Mux(v)))),
            _ => None,
        }
    }

    fn series_payload(&mut self, parts: [Option<TreeId>; 3]) -> Option<TreeId> {
        let mut acc: Option<TreeId> = None;
        for part in parts.into_iter().flatten() {
            acc = Some(match acc {
                None => part,
                Some(left) => self.tree.push(TreeNode::Series { left, right: part }),
            });
        }
        acc
    }

    fn run(mut self) -> Result<DecompTree, RecognizeError> {
        let mut worklist: Vec<NodeId> = self.net.nodes().map(|(id, _)| id).collect();
        let (si, so) = (self.net.scan_in(), self.net.scan_out());
        while let Some(v) = worklist.pop() {
            if v == si || v == so {
                continue;
            }
            // Parallel group merge at a multiplexer: fire once all inputs are
            // single edges from one common stem.
            if self.net.node(v).kind.is_mux() {
                let ins = self.live_in(v);
                if ins.len() >= 2 {
                    let stem = self.edges[ins[0]].from;
                    if ins.iter().all(|&e| self.edges[e].from == stem) {
                        self.merge_parallel(v, &ins)?;
                        worklist.push(stem);
                        worklist.push(v);
                        continue;
                    }
                }
            } else if self.live_in(v).len() >= 2 {
                return Err(RecognizeError::Invalid(format!(
                    "reconvergence at non-multiplexer vertex {v}"
                )));
            }
            // Series reduction.
            let ins = self.live_in(v);
            let outs = self.live_out(v);
            if ins.len() == 1 && outs.len() == 1 {
                let (e1, e2) = (ins[0], outs[0]);
                let leaf = self.leaf_for(v);
                let payload =
                    self.series_payload([self.edges[e1].payload, leaf, self.edges[e2].payload]);
                let (from, to) = (self.edges[e1].from, self.edges[e2].to);
                let port = self.edges[e2].port;
                self.edges[e1].alive = false;
                self.edges[e2].alive = false;
                self.add_edge(Edge { from, to, payload, port, alive: true });
                worklist.push(from);
                worklist.push(to);
            }
        }
        // Success iff exactly one live edge remains: scan-in -> scan-out.
        let live: Vec<usize> = (0..self.edges.len()).filter(|&e| self.edges[e].alive).collect();
        match live.as_slice() {
            [e] if self.edges[*e].from == si && self.edges[*e].to == so => {
                let root = match self.edges[*e].payload {
                    Some(r) => r,
                    None => self.tree.push(TreeNode::Leaf(Leaf::Wire)),
                };
                self.tree.set_root(root);
                self.tree.validate(self.net).map_err(RecognizeError::Invalid)?;
                Ok(self.tree)
            }
            _ => Err(RecognizeError::NotSeriesParallel { remaining_edges: live.len() }),
        }
    }

    /// Merges all live in-edges of mux `v` (each a reduced branch from a
    /// common stem) into one edge carrying the annotated P subtree.
    fn merge_parallel(&mut self, v: NodeId, ins: &[usize]) -> Result<(), RecognizeError> {
        let mut by_port: Vec<(usize, usize)> = ins
            .iter()
            .map(|&e| {
                let port = self.edges[e].port.ok_or_else(|| {
                    RecognizeError::Invalid(format!("edge into mux {v} lost its port"))
                })?;
                Ok((port, e))
            })
            .collect::<Result<_, RecognizeError>>()?;
        by_port.sort_unstable();
        let expected = self.net.node(v).kind.as_mux().expect("mux").fan_in();
        if by_port.len() != expected {
            return Err(RecognizeError::Invalid(format!(
                "mux {v} reduced with {} of {expected} inputs",
                by_port.len()
            )));
        }
        let branch_roots: Vec<TreeId> = by_port
            .iter()
            .map(|&(_, e)| match self.edges[e].payload {
                Some(p) => p,
                None => self.tree.push(TreeNode::Leaf(Leaf::Wire)),
            })
            .collect();
        self.tree.set_mux_branches(v, branch_roots.clone());
        // Balanced parallel fold, every internal node annotated with `v`.
        let mut level = branch_roots;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut iter = level.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => {
                        next.push(self.tree.push(TreeNode::Parallel { left: a, right: b, mux: v }))
                    }
                    None => next.push(a),
                }
            }
            level = next;
        }
        let group = level.pop().expect("at least one branch");
        let stem = self.edges[ins[0]].from;
        for &e in ins {
            self.edges[e].alive = false;
        }
        self.add_edge(Edge { from: stem, to: v, payload: Some(group), port: Some(0), alive: true });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::tree_from_structure;
    use rsn_model::{ControlSource, NetworkBuilder, Segment, Structure};
    use std::collections::BTreeSet;

    /// Semantic signature: leaves in scan order plus, per mux, the leaf sets
    /// of each branch in select order. Association-insensitive.
    fn signature(
        tree: &DecompTree,
        net: &ScanNetwork,
    ) -> (Vec<NodeId>, Vec<Vec<BTreeSet<NodeId>>>) {
        let leaves: Vec<NodeId> = tree
            .leaves_in_order()
            .into_iter()
            .filter_map(|(_, l)| match l {
                Leaf::Segment(n) | Leaf::Mux(n) => Some(n),
                Leaf::Wire => None,
            })
            .collect();
        let mut branch_sets = Vec::new();
        for m in net.muxes() {
            let branches = tree.branches_of(m).expect("annotated mux");
            branch_sets.push(branches.iter().map(|&b| leaf_set(tree, b)).collect());
        }
        (leaves, branch_sets)
    }

    fn leaf_set(tree: &DecompTree, root: TreeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match tree.node(id) {
                TreeNode::Leaf(Leaf::Segment(n) | Leaf::Mux(n)) => {
                    out.insert(n);
                }
                TreeNode::Leaf(Leaf::Wire) => {}
                TreeNode::Series { left, right } | TreeNode::Parallel { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        out
    }

    fn assert_matches_structure(s: &Structure, name: &str) {
        let (net, built) = s.build(name).unwrap();
        let direct = tree_from_structure(&net, &built);
        let recognized = recognize(&net).unwrap();
        recognized.validate(&net).unwrap();
        assert_eq!(signature(&direct, &net), signature(&recognized, &net), "{name}");
    }

    #[test]
    fn recognizes_a_chain() {
        assert_matches_structure(
            &Structure::series((0..5).map(|i| Structure::seg(format!("c{i}"), 2)).collect()),
            "chain",
        );
    }

    #[test]
    fn recognizes_nested_parallel_groups() {
        let s = Structure::series(vec![
            Structure::seg("c0", 2),
            Structure::parallel(
                vec![
                    Structure::series(vec![
                        Structure::seg("c1", 2),
                        Structure::parallel(vec![Structure::seg("c2", 2), Structure::Wire], "m1"),
                    ]),
                    Structure::seg("c3", 2),
                ],
                "m0",
            ),
            Structure::seg("c4", 2),
        ]);
        assert_matches_structure(&s, "fig1");
    }

    #[test]
    fn recognizes_sib_hierarchies() {
        let s = Structure::series(vec![
            Structure::sib(
                "s0",
                Structure::series(vec![
                    Structure::seg("d0", 3),
                    Structure::sib("s1", Structure::seg("d1", 2)),
                ]),
            ),
            Structure::sib("s2", Structure::seg("d2", 1)),
        ]);
        assert_matches_structure(&s, "sibs");
    }

    #[test]
    fn recognizes_wide_nary_mux() {
        let s =
            Structure::parallel((0..7).map(|i| Structure::seg(format!("b{i}"), 1)).collect(), "m");
        assert_matches_structure(&s, "nary");
    }

    #[test]
    fn rejects_non_sp_crossing() {
        // Two fan-outs crossing into two muxes: the classic non-SP "bridge".
        //        +-- a --+----- m1
        //   f1 --+       |
        //        +-- b --+-- c +- m2   (b feeds both m1 and m2 via a fanout)
        let mut b = NetworkBuilder::new("bridge");
        let f1 = b.add_fanout("f1");
        let a = b.add_segment("a", Segment::new(1));
        let bb = b.add_segment("b", Segment::new(1));
        let f2 = b.add_fanout("f2");
        let si = b.scan_in();
        let so = b.scan_out();
        b.connect(si, f1).unwrap();
        b.connect(f1, a).unwrap();
        b.connect(f1, bb).unwrap();
        b.connect(bb, f2).unwrap();
        let m1 = b.add_mux("m1", vec![a, f2], ControlSource::Direct).unwrap();
        let c = b.add_segment("c", Segment::new(1));
        b.connect(f2, c).unwrap();
        let m2 = b.add_mux("m2", vec![m1, c], ControlSource::Direct).unwrap();
        b.connect(m2, so).unwrap();
        let net = b.finish().unwrap();
        match recognize(&net) {
            Err(RecognizeError::NotSeriesParallel { .. }) => {}
            other => panic!("expected NotSeriesParallel, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_wire_network_recognizes() {
        let (net, _) = Structure::series(vec![]).build("empty").unwrap();
        let tree = recognize(&net).unwrap();
        assert!(matches!(tree.node(tree.root()), TreeNode::Leaf(Leaf::Wire)));
    }
}
