//! ASCII rendering of decomposition trees (Fig. 3 style).

use rsn_model::ScanNetwork;

use crate::tree::{DecompTree, Leaf, TreeNode};

/// Renders the tree with one node per line, children indented, leaves
/// labeled with their network names. Optional per-leaf annotations (e.g.
/// damage weights) are appended by `annotate`.
///
/// # Examples
///
/// ```
/// use rsn_model::Structure;
/// use rsn_sp::{render::render_tree, tree_from_structure};
///
/// let (net, built) = Structure::parallel(
///     vec![Structure::seg("a", 1), Structure::seg("b", 1)],
///     "m0",
/// ).build("t")?;
/// let tree = tree_from_structure(&net, &built);
/// let text = render_tree(&tree, &net, |_| None);
/// assert!(text.contains("S"));
/// assert!(text.contains("a"));
/// # Ok::<(), rsn_model::NetworkError>(())
/// ```
#[must_use]
pub fn render_tree(
    tree: &DecompTree,
    net: &ScanNetwork,
    mut annotate: impl FnMut(Leaf) -> Option<String>,
) -> String {
    let mut out = String::new();
    // Iterative pre-order with explicit prefixes to stay safe on deep trees.
    // The bool marks the root, which gets neither connector nor indentation.
    let mut stack = vec![(tree.root(), String::new(), true, true)];
    while let Some((id, prefix, is_last, is_root)) = stack.pop() {
        let connector = if is_root {
            ""
        } else if is_last {
            "`-- "
        } else {
            "|-- "
        };
        let label = match tree.node(id) {
            TreeNode::Leaf(l) => {
                let base = match l {
                    Leaf::Segment(n) | Leaf::Mux(n) => net.node(n).label(n),
                    Leaf::Wire => "(wire)".to_string(),
                };
                match annotate(l) {
                    Some(extra) => format!("{base} {extra}"),
                    None => base,
                }
            }
            TreeNode::Series { .. } => "S".to_string(),
            TreeNode::Parallel { mux, .. } => {
                format!("P (closed by {})", net.node(mux).label(mux))
            }
        };
        out.push_str(&format!("{prefix}{connector}{label}\n"));
        if let TreeNode::Series { left, right } | TreeNode::Parallel { left, right, .. } =
            tree.node(id)
        {
            let child_prefix = if is_root {
                String::new()
            } else if is_last {
                format!("{prefix}    ")
            } else {
                format!("{prefix}|   ")
            };
            // Push right first so the left child renders first.
            stack.push((right, child_prefix.clone(), true, false));
            stack.push((left, child_prefix, false, false));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::tree_from_structure;
    use rsn_model::Structure;

    #[test]
    fn renders_all_leaves() {
        let s = Structure::series(vec![
            Structure::seg("c0", 1),
            Structure::parallel(vec![Structure::seg("c1", 1), Structure::Wire], "m0"),
        ]);
        let (net, built) = s.build("t").unwrap();
        let tree = tree_from_structure(&net, &built);
        let text = render_tree(&tree, &net, |_| None);
        for name in ["c0", "c1", "m0", "(wire)"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("`-- "), "tree connectors missing:\n{text}");
        assert!(text.contains("|-- "), "tree connectors missing:\n{text}");
    }

    #[test]
    fn annotations_are_appended() {
        let (net, built) = Structure::seg("c0", 1).build("t").unwrap();
        let tree = tree_from_structure(&net, &built);
        let text = render_tree(&tree, &net, |_| Some("[do=5 ds=3]".into()));
        assert!(text.contains("c0 [do=5 ds=3]"));
    }

    #[test]
    fn deep_trees_render_without_overflow() {
        let parts: Vec<Structure> = (0..5000).map(|i| Structure::seg(format!("c{i}"), 1)).collect();
        let (net, built) = Structure::series(parts).build("deep").unwrap();
        let tree = tree_from_structure(&net, &built);
        let text = render_tree(&tree, &net, |_| None);
        assert!(text.lines().count() >= 5000);
    }
}
