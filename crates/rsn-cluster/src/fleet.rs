//! Worker-process lifecycle: spawning `rsnd` children on ephemeral ports,
//! adopting externally managed workers by address, SIGKILL ejection, and
//! respawn.
//!
//! A [`Fleet`] owns a fixed number of *slots*. Each slot holds one worker
//! *generation*: the current address, the child process (when the fleet
//! spawned it), and health-tracking state. Ejecting a slot kills its child;
//! respawning starts a fresh generation on a fresh ephemeral port. Slot
//! indices are stable across generations, so shard partitioning and
//! rendezvous routing address slots, not processes.
//!
//! Generations make the health protocol race-free: a probe failure observed
//! against generation `g` is ignored once the slot has moved on to `g + 1`,
//! so a slow probe of a dead worker can never eject its freshly respawned
//! successor.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Mutex, PoisonError};

/// How a fleet starts (and restarts) worker processes; absent for adopted
/// fleets, which cannot respawn.
#[derive(Clone, Debug)]
pub struct WorkerSpawn {
    /// Path of the worker binary (`rsnd` or a compatible daemon that prints
    /// the `rsnd listening on HOST:PORT` banner).
    pub bin: PathBuf,
    /// Extra arguments appended after `--addr 127.0.0.1:0`.
    pub args: Vec<String>,
}

impl WorkerSpawn {
    /// Launches one worker and waits for its listening banner.
    fn launch(&self) -> Result<(Child, String), String> {
        let mut child = Command::new(&self.bin)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(&self.args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning {:?} failed: {e}", self.bin))?;
        let stdout = child.stdout.take().ok_or("worker stdout not captured")?;
        let mut banner = String::new();
        // The banner is the first stdout line; a worker that dies before
        // printing it yields EOF and an empty line.
        BufReader::new(stdout)
            .read_line(&mut banner)
            .map_err(|e| format!("reading worker banner failed: {e}"))?;
        match banner.trim_end().strip_prefix("rsnd listening on ") {
            Some(addr) if !addr.is_empty() => Ok((child, addr.to_string())),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                Err(format!("worker printed no listening banner (got {banner:?})"))
            }
        }
    }
}

/// One worker generation in a slot.
#[derive(Debug)]
pub struct Worker {
    /// Monotonic generation counter (unique per fleet).
    pub generation: u64,
    /// The worker's listening address.
    pub addr: String,
    /// Whether the worker is believed healthy.
    pub up: bool,
    /// Consecutive failed health probes (reset by any success).
    pub consecutive_failures: u32,
    /// Last scraped `rsnd_queue_depth`, for the fleet metrics view.
    pub queue_depth: u64,
    child: Option<Child>,
}

/// A snapshot row of one slot, for routing and metrics.
#[derive(Clone, Debug)]
pub struct WorkerStatus {
    /// Slot index.
    pub slot: usize,
    /// Current generation.
    pub generation: u64,
    /// Current address.
    pub addr: String,
    /// Believed-healthy flag.
    pub up: bool,
    /// Last scraped queue depth.
    pub queue_depth: u64,
}

/// A fixed set of worker slots, spawned or adopted.
#[derive(Debug)]
pub struct Fleet {
    slots: Vec<Mutex<Worker>>,
    spawn: Option<WorkerSpawn>,
    generations: Mutex<u64>,
}

impl Fleet {
    /// Spawns `n` workers from `spawn`. Workers that fail to start leave
    /// their slot *down* (the health loop keeps retrying) — a fleet where
    /// every spawn failed is still returned, and requests answer `503`
    /// until a worker comes up.
    #[must_use]
    pub fn spawn(spawn: WorkerSpawn, n: usize) -> Self {
        let fleet = Self {
            slots: (0..n)
                .map(|_| {
                    Mutex::new(Worker {
                        generation: 0,
                        addr: String::new(),
                        up: false,
                        consecutive_failures: 0,
                        queue_depth: 0,
                        child: None,
                    })
                })
                .collect(),
            spawn: Some(spawn),
            generations: Mutex::new(0),
        };
        for slot in 0..n {
            let _ = fleet.respawn(slot);
        }
        fleet
    }

    /// Adopts externally managed workers at the given addresses. Adopted
    /// slots are probed and ejected like spawned ones but cannot respawn.
    #[must_use]
    pub fn adopt(addrs: Vec<String>) -> Self {
        Self {
            slots: addrs
                .into_iter()
                .enumerate()
                .map(|(i, addr)| {
                    Mutex::new(Worker {
                        generation: i as u64,
                        addr,
                        up: true,
                        consecutive_failures: 0,
                        queue_depth: 0,
                        child: None,
                    })
                })
                .collect(),
            spawn: None,
            generations: Mutex::new(u64::MAX / 2),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the fleet has no slots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether this fleet can restart dead workers.
    #[must_use]
    pub fn can_respawn(&self) -> bool {
        self.spawn.is_some()
    }

    fn lock(&self, slot: usize) -> std::sync::MutexGuard<'_, Worker> {
        self.slots[slot].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A point-in-time view of every slot.
    #[must_use]
    pub fn snapshot(&self) -> Vec<WorkerStatus> {
        (0..self.slots.len())
            .map(|i| {
                let w = self.lock(i);
                WorkerStatus {
                    slot: i,
                    generation: w.generation,
                    addr: w.addr.clone(),
                    up: w.up,
                    queue_depth: w.queue_depth,
                }
            })
            .collect()
    }

    /// The believed-healthy slots, in slot order.
    #[must_use]
    pub fn up_workers(&self) -> Vec<WorkerStatus> {
        self.snapshot().into_iter().filter(|w| w.up).collect()
    }

    /// SIGKILLs the slot's child (chaos `kill-worker`, or ejection of a
    /// wedged worker) and marks it down. No-op for adopted workers without
    /// a child handle.
    pub fn kill(&self, slot: usize) {
        let mut w = self.lock(slot);
        if let Some(mut child) = w.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        w.up = false;
    }

    /// Records a probe or dispatch failure observed against `generation`.
    /// Returns `true` when the failure pushed the worker past `threshold`
    /// consecutive failures and it was marked down (the caller ejects it).
    /// Failures against a superseded generation are ignored.
    pub fn record_failure(&self, slot: usize, generation: u64, threshold: u32) -> bool {
        let mut w = self.lock(slot);
        if w.generation != generation {
            return false;
        }
        w.consecutive_failures += 1;
        if w.up && w.consecutive_failures >= threshold {
            w.up = false;
            return true;
        }
        false
    }

    /// Records a successful probe of `generation` with the scraped queue
    /// depth, resetting the failure streak.
    pub fn record_success(&self, slot: usize, generation: u64, queue_depth: u64) {
        let mut w = self.lock(slot);
        if w.generation != generation {
            return;
        }
        w.consecutive_failures = 0;
        w.queue_depth = queue_depth;
        w.up = true;
    }

    /// Kills whatever occupies the slot and starts a fresh generation on a
    /// fresh ephemeral port. Returns the new worker's address.
    ///
    /// # Errors
    ///
    /// The spawn failure, or an explanation that this fleet only adopts.
    pub fn respawn(&self, slot: usize) -> Result<String, String> {
        let spawn = self.spawn.as_ref().ok_or("adopted workers cannot be respawned")?;
        self.kill(slot);
        let (child, addr) = spawn.launch()?;
        let generation = {
            let mut g = self.generations.lock().unwrap_or_else(PoisonError::into_inner);
            *g += 1;
            *g
        };
        let mut w = self.lock(slot);
        w.generation = generation;
        w.addr = addr.clone();
        w.up = true;
        w.consecutive_failures = 0;
        w.queue_depth = 0;
        w.child = Some(child);
        Ok(addr)
    }

    /// Kills every spawned child. Called on coordinator shutdown.
    pub fn shutdown(&self) {
        for slot in 0..self.slots.len() {
            self.kill(slot);
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}
