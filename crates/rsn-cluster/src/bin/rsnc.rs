//! `rsnc` — the robust-RSN cluster coordinator.
//!
//! ```text
//! rsnc [--addr HOST:PORT] [--workers N] [--worker-bin PATH]
//!      [--worker-arg ARG]... [--adopt ADDR[,ADDR...]]
//!      [--shard-threshold N] [--failover-budget N]
//!      [--wedged-queue-depth N] [--health-interval-ms N]
//!      [--chaos SPEC] [--version]
//! ```
//!
//! Speaks the same wire protocol as a single `rsnd`, so any client works
//! unchanged. Spawns `--workers` worker processes (default: the
//! `rsnc-worker` or `rsnd` binary found beside this executable) or adopts
//! the `--adopt` addresses. Prints `rsnc listening on HOST:PORT` once
//! ready and shuts down on SIGTERM or ctrl-c, killing spawned workers.
//!
//! `--chaos SPEC` (or `RSNC_CHAOS`) installs the shared deterministic
//! fault schedule; the coordinator fires the cluster-level sites
//! (`kill-worker`, `drop-conn`, `slow-worker`) and forwards the spec to
//! spawned workers so their local sites fire too.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rsn_cluster::{ClusterConfig, Coordinator};
use rsn_serve::{signal, Chaos};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut config = ClusterConfig::default();
    let mut chaos_spec = std::env::var("RSNC_CHAOS").ok();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = parse(&value("--workers")?)?,
            "--worker-bin" => config.worker_bin = Some(PathBuf::from(value("--worker-bin")?)),
            "--worker-arg" => config.worker_args.push(value("--worker-arg")?),
            "--adopt" => {
                config.adopt = value("--adopt")?.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--shard-threshold" => config.shard_threshold = parse(&value("--shard-threshold")?)?,
            "--failover-budget" => config.failover_budget = parse(&value("--failover-budget")?)?,
            "--wedged-queue-depth" => {
                config.wedged_queue_depth = parse(&value("--wedged-queue-depth")?)?;
            }
            "--health-interval-ms" => {
                config.health_interval =
                    Duration::from_millis(parse(&value("--health-interval-ms")?)?);
            }
            "--chaos" => chaos_spec = Some(value("--chaos")?),
            "--version" | "-V" => {
                println!("rsnc {}", env!("CARGO_PKG_VERSION"));
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if let Some(spec) = &chaos_spec {
        let chaos = Chaos::from_spec(spec)?;
        eprintln!("rsnc: chaos schedule active (seed {})", chaos.seed());
        config.chaos = Some(Arc::new(chaos));
        // Spawned workers run the same schedule for their local sites.
        config.worker_args.extend(["--chaos".to_string(), spec.clone()]);
    }
    if config.adopt.is_empty() && config.worker_bin.is_none() {
        config.worker_bin = Some(default_worker_bin()?);
    }

    let coordinator = Coordinator::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("rsnc listening on {}", coordinator.local_addr());

    signal::install();
    let handle = coordinator.shutdown_handle();
    std::thread::spawn(move || loop {
        if signal::triggered() {
            handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    coordinator.run().map_err(|e| format!("serve failed: {e}"))?;
    println!("rsnc shut down cleanly");
    Ok(())
}

/// Finds a worker daemon beside the `rsnc` executable: `rsnc-worker`
/// first, then `rsnd`.
fn default_worker_bin() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe failed: {e}"))?;
    let dir = exe.parent().ok_or("rsnc executable has no parent directory")?;
    for name in ["rsnc-worker", "rsnd"] {
        let candidate = dir.join(name);
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err("no rsnc-worker or rsnd binary found beside rsnc; pass --worker-bin PATH".to_string())
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

const USAGE: &str = "usage: rsnc [--addr HOST:PORT] [--workers N] [--worker-bin PATH] \
                     [--worker-arg ARG]... [--adopt ADDR,...] [--shard-threshold N] \
                     [--failover-budget N] [--wedged-queue-depth N] [--health-interval-ms N] \
                     [--chaos SPEC] [--version]";
