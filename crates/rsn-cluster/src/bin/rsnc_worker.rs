//! `rsnc-worker` — an `rsnd` analysis worker packaged with the cluster
//! crate so `rsnc` (and its integration tests) always have a spawnable
//! worker beside them. Identical wire behaviour to `rsnd`, including the
//! `rsnd listening on HOST:PORT` banner the fleet spawner waits for.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use robust_rsn::Parallelism;
use rsn_serve::{signal, Chaos, Server, ServerConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut chaos_spec = std::env::var("RSND_CHAOS").ok();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = Parallelism::new(parse(&value("--workers")?)?),
            "--queue" => config.queue_capacity = parse(&value("--queue")?)?,
            "--cache" => config.cache_capacity = parse(&value("--cache")?)?,
            "--store" => config.store_path = Some(value("--store")?.into()),
            "--timeout-ms" => config.default_timeout_ms = parse(&value("--timeout-ms")?)?,
            "--chaos" => chaos_spec = Some(value("--chaos")?),
            "--version" | "-V" => {
                println!("rsnc-worker {}", env!("CARGO_PKG_VERSION"));
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if let Some(spec) = chaos_spec {
        let chaos = Chaos::from_spec(&spec)?;
        config.chaos = Some(Arc::new(chaos));
    }

    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("rsnd listening on {}", server.local_addr());

    signal::install();
    let handle = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if signal::triggered() {
            handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    server.run().map_err(|e| format!("serve failed: {e}"))?;
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

const USAGE: &str = "usage: rsnc-worker [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache N] [--store PATH] [--timeout-ms N] [--chaos SPEC] [--version]";
