//! The `rsnc` coordinator: a thread-per-connection HTTP front end that
//! shards and routes jobs across a [`Fleet`] of `rsnd` workers.
//!
//! ## Routing
//!
//! Whole jobs are routed by **rendezvous hashing** of the network's
//! canonical hash over the live workers: the same network lands on the same
//! worker while the fleet is stable (cache affinity for free), and a
//! worker's death only moves the networks it owned. Large `/v1/analyze`
//! sweeps are instead **fault-mode range partitioned**: the canonical mode
//! table is split into one contiguous range per live worker, each worker
//! evaluates its `[lo, hi)` slice (`mode_lo`/`mode_hi` on the wire), and
//! the shard responses are merged with
//! [`rsn_serve::wire::merge_analyze_shards`]. Because per-mode damages are
//! independent of block packing and thread count, the merged body is
//! **byte-identical** to what a single node would have served.
//!
//! ## Robustness
//!
//! A health loop probes every worker's `/metrics` (liveness plus queue
//! depth) and ejects a worker after a run of consecutive failures; ejected
//! or chaos-killed workers are respawned on a fresh port and re-seeded with
//! every registered network. Failed dispatches fail over to the next live
//! worker — the next in rendezvous order for whole jobs, the next slot for
//! shards — with the worker-level `503` retry handled by the shared
//! [`RetryPolicy`]. Every dispatch is bounded by
//! [`ClusterConfig::failover_budget`] distinct worker generations; when the
//! budget or the fleet is exhausted the client receives a structured,
//! retryable `503 fleet_exhausted` with a `Retry-After` — never a hang.
//!
//! ## Chaos
//!
//! The coordinator consumes the cluster-level sites of the shared
//! [`Chaos`] schedule: `kill-worker` SIGKILLs the target worker right
//! before a dispatch (the dispatch then fails over while the health loop
//! respawns), `drop-conn` opens a connection to the worker and abandons it
//! mid-request, and `slow-worker` sleeps before forwarding.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use robust_rsn::AnalysisOptions;
use rsn_serve::chaos::{Chaos, Site};
use rsn_serve::http::{self, Request, Response};
use rsn_serve::wire::{
    self, AnalyzeShardResponse, Endpoint, JobError, NetworkListResponse, ParsedNetwork, ResolvedJob,
};
use rsn_serve::{Client, JobRequest, RetryPolicy};

use crate::fleet::{Fleet, WorkerSpawn, WorkerStatus};
use crate::metrics::ClusterMetrics;

/// Configuration of a [`Coordinator`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of workers to spawn (ignored when `adopt` is non-empty).
    pub workers: usize,
    /// Worker binary to spawn; `None` adopts `adopt` addresses instead.
    pub worker_bin: Option<std::path::PathBuf>,
    /// Extra arguments passed to every spawned worker.
    pub worker_args: Vec<String>,
    /// Addresses of externally managed workers to adopt instead of
    /// spawning.
    pub adopt: Vec<String>,
    /// Minimum canonical-mode-table size before an `/v1/analyze` is
    /// range-partitioned across workers instead of routed whole.
    pub shard_threshold: u64,
    /// Interval between health-probe sweeps.
    pub health_interval: Duration,
    /// Consecutive probe/dispatch failures before a worker is ejected.
    pub health_failures: u32,
    /// A probed queue depth at or above this marks the worker as wedged
    /// (counts as a probe failure). `u64::MAX` disables the check.
    pub wedged_queue_depth: u64,
    /// Per-worker retry policy for `503` responses.
    pub retry: RetryPolicy,
    /// Maximum distinct worker generations tried per dispatch before the
    /// request degrades to a structured `503 fleet_exhausted`.
    pub failover_budget: u32,
    /// `Retry-After` seconds on `503 fleet_exhausted` responses.
    pub retry_after_secs: u64,
    /// IO timeout for forwarded requests (shard sweeps included).
    pub io_timeout: Duration,
    /// IO timeout for health probes.
    pub probe_timeout: Duration,
    /// Maximum accepted client request body.
    pub max_body_bytes: usize,
    /// Deterministic fault-injection schedule; the coordinator fires only
    /// the cluster-level sites (`kill-worker`, `drop-conn`, `slow-worker`).
    pub chaos: Option<Arc<Chaos>>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 3,
            worker_bin: None,
            worker_args: Vec::new(),
            adopt: Vec::new(),
            shard_threshold: 512,
            health_interval: Duration::from_millis(250),
            health_failures: 3,
            wedged_queue_depth: u64::MAX,
            retry: RetryPolicy::default(),
            failover_budget: 6,
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(120),
            probe_timeout: Duration::from_secs(2),
            max_body_bytes: 64 * 1024 * 1024,
            chaos: None,
        }
    }
}

/// A clonable handle that asks a running [`Coordinator`] to shut down.
#[derive(Clone, Debug)]
pub struct ClusterShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ClusterShutdownHandle {
    /// Requests shutdown: stop accepting, kill spawned workers, exit.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// An operator's handle into a running coordinator: inspect the fleet,
/// read the merged metrics, and SIGKILL workers — the hook chaos drills
/// and the cluster integration gate use to murder workers mid-campaign.
#[derive(Clone, Debug)]
pub struct ClusterControl {
    inner: Arc<Inner>,
}

impl ClusterControl {
    /// A point-in-time view of every worker slot.
    #[must_use]
    pub fn fleet(&self) -> Vec<WorkerStatus> {
        self.inner.fleet.snapshot()
    }

    /// SIGKILLs the worker in `slot` (the health loop will respawn it when
    /// the fleet spawns its own workers).
    pub fn kill_worker(&self, slot: usize) {
        self.inner.fleet.kill(slot);
    }

    /// The merged fleet metrics exposition.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.inner.metrics.render(&self.inner.fleet.snapshot())
    }
}

/// Shared coordinator state.
struct Inner {
    config: ClusterConfig,
    fleet: Fleet,
    /// Coordinator-side mirror of every registered network, keyed by
    /// canonical hash: the source for shard merges, worker re-seeding after
    /// respawn, and on-demand `unknown_network` repair.
    registry: Mutex<BTreeMap<String, Arc<ParsedNetwork>>>,
    metrics: ClusterMetrics,
    shutdown: Arc<AtomicBool>,
    open_conns: AtomicU64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner").field("fleet", &self.fleet).finish_non_exhaustive()
    }
}

/// The cluster coordinator: owns the fleet and the listening socket.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    local_addr: SocketAddr,
    inner: Arc<Inner>,
}

impl Coordinator {
    /// Binds the coordinator socket and brings up the fleet (spawning
    /// workers or adopting addresses per the config).
    ///
    /// # Errors
    ///
    /// The bind failure, or a config with neither a worker binary nor
    /// adopted addresses.
    pub fn bind(config: ClusterConfig) -> io::Result<Self> {
        let fleet = if !config.adopt.is_empty() {
            Fleet::adopt(config.adopt.clone())
        } else if let Some(bin) = &config.worker_bin {
            let spawn = WorkerSpawn { bin: bin.clone(), args: config.worker_args.clone() };
            Fleet::spawn(spawn, config.workers.max(1))
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cluster config needs either worker_bin or adopt addresses",
            ));
        };
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            local_addr,
            inner: Arc::new(Inner {
                config,
                fleet,
                registry: Mutex::new(BTreeMap::new()),
                metrics: ClusterMetrics::default(),
                shutdown: Arc::new(AtomicBool::new(false)),
                open_conns: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that shuts the coordinator down from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ClusterShutdownHandle {
        ClusterShutdownHandle { flag: Arc::clone(&self.inner.shutdown) }
    }

    /// An operator handle for fleet inspection and fault injection; grab it
    /// before [`Coordinator::run`] consumes the coordinator.
    #[must_use]
    pub fn control(&self) -> ClusterControl {
        ClusterControl { inner: Arc::clone(&self.inner) }
    }

    /// Serves until shutdown: accepts connections (one thread each) while
    /// the health loop keeps the fleet alive. On shutdown, stops accepting,
    /// waits briefly for open connections to drain, and kills spawned
    /// workers.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection errors are handled.
    pub fn run(self) -> io::Result<()> {
        let health = {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || health_loop(&inner))
        };
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let inner = Arc::clone(&self.inner);
                    inner.open_conns.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_conn(&inner, stream);
                        inner.open_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Grace period for in-flight connections, then tear the fleet down.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.inner.open_conns.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = health.join();
        self.inner.fleet.shutdown();
        Ok(())
    }
}

/// Serves one client connection: keep-alive request loop until the peer
/// closes, asks to close, or errors.
fn handle_conn(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.config.io_timeout));
    let _ = stream.set_write_timeout(Some(inner.config.io_timeout));
    loop {
        let request = match http::read_request(&mut stream, inner.config.max_body_bytes) {
            Ok(request) => request,
            Err(e) => {
                // Malformed or timed-out: answer the envelope if the status
                // is meaningful, then close.
                if e.status != 400 || !e.message.contains("connection closed") {
                    let err = JobError::new(e.status, "bad_request", e.message);
                    let _ =
                        http::write_response(&mut stream, &Response::json(err.status, err.body()));
                }
                return;
            }
        };
        let close = request.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
        inner.metrics.record_request();
        let response = route(inner, &request);
        inner.metrics.record_response(response.status);
        if http::write_response(&mut stream, &response).is_err() || close {
            return;
        }
    }
}

/// Dispatches one request to the matching cluster behaviour.
fn route(inner: &Inner, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n".to_string()),
        ("GET", "/metrics") => Response::text(200, inner.metrics.render(&inner.fleet.snapshot())),
        ("GET", "/v1/networks") => list_networks(inner),
        ("PUT", "/v1/networks") => put_network(inner, request),
        ("POST", "/v1/analyze") => submit(inner, Endpoint::Analyze, request),
        ("POST", "/v1/harden") => submit(inner, Endpoint::Harden, request),
        ("POST", "/v1/validate") => submit(inner, Endpoint::Validate, request),
        ("POST", "/v1/whatif") => submit(inner, Endpoint::Whatif, request),
        (
            "GET" | "POST" | "PUT",
            "/healthz" | "/metrics" | "/v1/networks" | "/v1/analyze" | "/v1/harden"
            | "/v1/validate" | "/v1/whatif",
        ) => {
            let err = JobError::new(405, "method_not_allowed", "method not allowed");
            Response::json(405, err.body())
        }
        _ => {
            let err = JobError::new(404, "not_found", "unknown path");
            Response::json(404, err.body())
        }
    }
}

/// `GET /v1/networks` from the coordinator's mirror: stable across worker
/// churn, byte-compatible with the single-node listing.
fn list_networks(inner: &Inner) -> Response {
    let registry = inner.registry.lock().unwrap_or_else(PoisonError::into_inner);
    let listing = NetworkListResponse {
        networks: registry
            .iter()
            .map(|(hash, parsed)| wire::NetworkListEntry {
                network_hash: hash.clone(),
                name: parsed.name().to_string(),
            })
            .collect(),
    };
    match serde_json::to_string(&listing) {
        Ok(body) => Response::json(200, body),
        Err(e) => {
            let err = JobError::new(500, "internal_error", e.to_string());
            Response::json(500, err.body())
        }
    }
}

/// `PUT /v1/networks`: parse once at the coordinator, mirror locally, and
/// broadcast to every live worker (streamed, so giant networks clear worker
/// body limits). The response body is the same [`wire::networks_put_body`]
/// a single node serves. Broadcast failures are tolerated: the health loop
/// and `unknown_network` repair re-seed stragglers.
fn put_network(inner: &Inner, request: &Request) -> Response {
    let streamed = request.header("content-type").is_some_and(|v| v.starts_with("text/plain"));
    let text = if streamed {
        match String::from_utf8(request.body.clone()) {
            Ok(text) => text,
            Err(_) => {
                let err = JobError::new(400, "bad_network", "invalid UTF-8 in network text");
                return Response::json(400, err.body());
            }
        }
    } else {
        let job: JobRequest = match serde_json::from_str(&String::from_utf8_lossy(&request.body)) {
            Ok(job) => job,
            Err(e) => {
                let err = JobError::new(400, "bad_request", e.to_string());
                return Response::json(400, err.body());
            }
        };
        match job.network {
            Some(text) => text,
            None => {
                let err = JobError::new(400, "bad_request", "`network` text is required");
                return Response::json(400, err.body());
            }
        }
    };
    let parsed = match ParsedNetwork::from_text(&text) {
        Ok(parsed) => Arc::new(parsed),
        Err(err) => return Response::json(err.status, err.body()),
    };
    register_mirror(inner, &parsed);
    for worker in inner.fleet.up_workers() {
        let _ = seed_worker(inner, &worker, &parsed);
    }
    match wire::networks_put_body(&parsed) {
        Ok(body) => Response::json(200, body),
        Err(err) => Response::json(err.status, err.body()),
    }
}

/// Inserts a network into the coordinator mirror (idempotent).
fn register_mirror(inner: &Inner, parsed: &Arc<ParsedNetwork>) {
    let mut registry = inner.registry.lock().unwrap_or_else(PoisonError::into_inner);
    registry.entry(parsed.hash.to_hex()).or_insert_with(|| Arc::clone(parsed));
}

/// Streams one network to one worker; records a health failure on error.
fn seed_worker(inner: &Inner, worker: &WorkerStatus, parsed: &ParsedNetwork) -> bool {
    let client = Client::new(worker.addr.clone()).with_timeout(inner.config.io_timeout);
    let ok = client.put_network_streaming(&parsed.text).map(|r| r.status == 200).unwrap_or(false);
    if !ok
        && inner.fleet.record_failure(worker.slot, worker.generation, inner.config.health_failures)
    {
        inner.metrics.record_ejection();
        inner.fleet.kill(worker.slot);
    }
    ok
}

/// `POST /v1/{analyze,harden,validate,whatif}`: resolve, decide between
/// shard fan-out and whole-job routing, dispatch with failover.
fn submit(inner: &Inner, endpoint: Endpoint, request: &Request) -> Response {
    let body = String::from_utf8_lossy(&request.body);
    let job: JobRequest = match serde_json::from_str(&body) {
        Ok(job) => job,
        Err(e) => {
            let err = JobError::new(400, "bad_request", e.to_string());
            return Response::json(400, err.body());
        }
    };
    let resolved = match wire::resolve(endpoint, &job) {
        Ok(resolved) => resolved,
        Err(err) => return Response::json(err.status, err.body()),
    };
    // Network identity for routing, plus the parsed graph when available
    // locally (needed for fan-out partitioning and shard merging).
    let (route_hash, parsed) = match &resolved.network_hash {
        Some(hash) => {
            let registry = inner.registry.lock().unwrap_or_else(PoisonError::into_inner);
            (hash.clone(), registry.get(hash).cloned())
        }
        None => match ParsedNetwork::from_text(&resolved.network) {
            Ok(parsed) => {
                let parsed = Arc::new(parsed);
                (parsed.hash.to_hex(), Some(parsed))
            }
            Err(err) => return Response::json(err.status, err.body()),
        },
    };
    let up = inner.fleet.up_workers();
    if up.is_empty() {
        return fleet_exhausted(inner, "no live workers");
    }
    if let Some(parsed) = &parsed {
        if endpoint == Endpoint::Analyze
            && resolved.mode_range.is_none()
            && !resolved.exact_double
            && up.len() >= 2
        {
            let options = AnalysisOptions { mode: resolved.mode, sib_policy: resolved.sib_policy };
            let total = robust_rsn::mode_count(&parsed.net, &options) as u64;
            if total >= inner.config.shard_threshold {
                return fan_out(inner, &resolved, parsed, &job, &up, total);
            }
        }
    }
    dispatch_whole(inner, endpoint, &job, &route_hash, parsed.as_deref(), &up)
}

/// Routes one whole job by rendezvous order with bounded failover.
fn dispatch_whole(
    inner: &Inner,
    endpoint: Endpoint,
    job: &JobRequest,
    route_hash: &str,
    parsed: Option<&ParsedNetwork>,
    up: &[WorkerStatus],
) -> Response {
    let order = rendezvous_order(route_hash, up);
    let budget = inner.config.failover_budget.max(1) as usize;
    let mut tried: Vec<(usize, u64)> = Vec::new();
    let mut attempt = 0usize;
    while attempt < budget {
        // Prefer rendezvous order from the request-time snapshot, then any
        // currently-live generation not yet tried (covers respawns).
        let target = order
            .iter()
            .cloned()
            .chain(inner.fleet.up_workers())
            .find(|w| !tried.contains(&(w.slot, w.generation)));
        let Some(worker) = target else { break };
        tried.push((worker.slot, worker.generation));
        if attempt > 0 {
            inner.metrics.record_failover();
        }
        attempt += 1;
        if !chaos_admits(inner, &worker) {
            continue;
        }
        let client = Client::new(worker.addr.clone()).with_timeout(inner.config.io_timeout);
        match client.submit_with_retry(endpoint, job, &inner.config.retry) {
            Ok(outcome) => {
                let response = outcome.response;
                if response.status == 404 && is_unknown_network(&response) {
                    if let Some(parsed) = parsed {
                        // A respawned worker lost its registry: repair it
                        // and replay the job on the same worker once.
                        inner.metrics.record_rebalance();
                        if seed_worker(inner, &worker, parsed) {
                            if let Ok(replay) =
                                client.submit_with_retry(endpoint, job, &inner.config.retry)
                            {
                                if replay.response.status < 500 {
                                    return reframe(replay.response);
                                }
                            }
                        }
                        record_dispatch_failure(inner, &worker);
                        continue;
                    }
                }
                if response.status < 500 {
                    return reframe(response);
                }
                record_dispatch_failure(inner, &worker);
            }
            Err(_) => record_dispatch_failure(inner, &worker),
        }
    }
    fleet_exhausted(inner, "every worker attempt failed")
}

/// Partitions the mode table across the live workers, dispatches shards
/// concurrently (each with its own failover), and merges deterministically.
fn fan_out(
    inner: &Inner,
    resolved: &ResolvedJob,
    parsed: &Arc<ParsedNetwork>,
    job: &JobRequest,
    up: &[WorkerStatus],
    total: u64,
) -> Response {
    let ranges = partition_modes(total, up.len());
    let mut shards: Vec<Option<AnalyzeShardResponse>> = Vec::new();
    shards.resize_with(ranges.len(), || None);
    let results = Mutex::new(shards);
    std::thread::scope(|scope| {
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            let results = &results;
            let job = &job;
            scope.spawn(move || {
                let shard = dispatch_shard(inner, job, lo, hi, up, i);
                results.lock().unwrap_or_else(PoisonError::into_inner)[i] = shard;
            });
        }
    });
    let shards = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut merged: Vec<AnalyzeShardResponse> = Vec::with_capacity(shards.len());
    for shard in shards {
        match shard {
            Some(shard) => merged.push(shard),
            None => return fleet_exhausted(inner, "a sweep shard exhausted its retry budget"),
        }
    }
    merged.sort_by_key(|s| s.mode_lo);
    match wire::merge_analyze_shards(resolved, parsed, &merged) {
        Ok(body) => Response::json(200, body),
        Err(err) => Response::json(err.status, err.body()),
    }
}

/// Dispatches one `[lo, hi)` shard, failing over across worker generations
/// within the budget. Returns `None` when the budget is exhausted.
fn dispatch_shard(
    inner: &Inner,
    job: &JobRequest,
    lo: u64,
    hi: u64,
    up: &[WorkerStatus],
    preferred: usize,
) -> Option<AnalyzeShardResponse> {
    let mut shard_job = job.clone();
    shard_job.mode_lo = Some(lo);
    shard_job.mode_hi = Some(hi);
    inner.metrics.record_shard_dispatched();
    let budget = inner.config.failover_budget.max(1) as usize;
    let mut tried: Vec<(usize, u64)> = Vec::new();
    // Rotate the snapshot so shard i prefers worker i, spreading load.
    let snapshot_order =
        (0..up.len()).map(|k| up[(preferred + k) % up.len()].clone()).collect::<Vec<_>>();
    for attempt in 0..budget {
        let target = snapshot_order
            .iter()
            .cloned()
            .chain(inner.fleet.up_workers())
            .find(|w| !tried.contains(&(w.slot, w.generation)));
        let worker = match target {
            Some(worker) => worker,
            None => {
                // Every known generation was tried; wait out one health
                // interval for a respawn before giving up this attempt.
                std::thread::sleep(inner.config.health_interval);
                inner
                    .fleet
                    .up_workers()
                    .into_iter()
                    .find(|w| !tried.contains(&(w.slot, w.generation)))?
            }
        };
        tried.push((worker.slot, worker.generation));
        if attempt > 0 {
            inner.metrics.record_shard_retried();
        }
        if !chaos_admits(inner, &worker) {
            continue;
        }
        let client = Client::new(worker.addr.clone()).with_timeout(inner.config.io_timeout);
        match client.submit_with_retry(Endpoint::Analyze, &shard_job, &inner.config.retry) {
            Ok(outcome) if outcome.response.status == 200 => {
                match serde_json::from_str::<AnalyzeShardResponse>(&outcome.response.body) {
                    Ok(shard) if shard.mode_lo == lo && shard.mode_hi == hi => return Some(shard),
                    _ => record_dispatch_failure(inner, &worker),
                }
            }
            Ok(outcome)
                if outcome.response.status == 404 && is_unknown_network(&outcome.response) =>
            {
                // Re-seed the worker (it likely respawned) and let the next
                // attempt retry it as a fresh generation or another worker.
                if let Some(parsed) = lookup_job_network(inner, job) {
                    inner.metrics.record_rebalance();
                    if seed_worker(inner, &worker, &parsed) {
                        tried.pop();
                    }
                } else {
                    record_dispatch_failure(inner, &worker);
                }
            }
            Ok(outcome) if outcome.response.status < 500 => {
                // A deterministic 4xx will not improve elsewhere.
                return None;
            }
            Ok(_) | Err(_) => record_dispatch_failure(inner, &worker),
        }
    }
    None
}

/// Resolves the parsed network a job refers to, from the mirror or inline
/// text.
fn lookup_job_network(inner: &Inner, job: &JobRequest) -> Option<Arc<ParsedNetwork>> {
    if let Some(hash) = &job.network_hash {
        let registry = inner.registry.lock().unwrap_or_else(PoisonError::into_inner);
        return registry.get(hash).cloned();
    }
    job.network.as_deref().and_then(|text| ParsedNetwork::from_text(text).ok().map(Arc::new))
}

/// Fires the cluster chaos sites against `worker` before a dispatch.
/// Returns `false` when the injected fault consumed this attempt.
fn chaos_admits(inner: &Inner, worker: &WorkerStatus) -> bool {
    let Some(chaos) = &inner.config.chaos else { return true };
    if chaos.fires(Site::SlowWorker) {
        inner.metrics.record_chaos_slow();
        std::thread::sleep(chaos.delay());
    }
    if chaos.fires(Site::KillWorker) && inner.fleet.can_respawn() {
        // SIGKILL the worker mid-shard: this dispatch fails over while the
        // health loop respawns the slot.
        inner.metrics.record_chaos_kill();
        inner.fleet.kill(worker.slot);
        return false;
    }
    if chaos.fires(Site::DropConn) {
        // Open a connection, send half a request, abandon it.
        inner.metrics.record_chaos_drop();
        if let Ok(mut stream) = TcpStream::connect(&worker.addr) {
            let _ = stream.write_all(b"POST /v1/analyze HTTP/1.1\r\nHost: rsnc\r\n");
        }
        return false;
    }
    true
}

/// Counts a failed dispatch against the worker's health streak, ejecting
/// it once the threshold is crossed.
fn record_dispatch_failure(inner: &Inner, worker: &WorkerStatus) {
    if inner.fleet.record_failure(worker.slot, worker.generation, inner.config.health_failures) {
        inner.metrics.record_ejection();
        inner.fleet.kill(worker.slot);
    }
}

/// Whether a 404 response carries the `unknown_network` code.
fn is_unknown_network(response: &Response) -> bool {
    rsn_serve::parse_error(response).is_some_and(|e| e.code == "unknown_network")
}

/// Re-frames a forwarded worker response for the coordinator's own writer.
/// The client-side parse keeps the worker's `content-length`, `connection`
/// and `content-type` headers in the header list; forwarding them verbatim
/// would duplicate the framing headers the encoder writes (which strict
/// keep-alive clients reject). Everything else (`x-cache`, `retry-after`)
/// passes through.
fn reframe(response: Response) -> Response {
    let content_type =
        if response.header("content-type").is_some_and(|v| v.starts_with("text/plain")) {
            "text/plain; charset=utf-8"
        } else {
            "application/json"
        };
    let headers = response
        .headers
        .iter()
        .filter(|(name, _)| {
            !matches!(name.as_str(), "content-length" | "connection" | "content-type")
        })
        .cloned()
        .collect();
    Response { content_type, headers, ..response }
}

/// The structured, retryable degradation response when no worker can take
/// a request.
fn fleet_exhausted(inner: &Inner, detail: &str) -> Response {
    inner.metrics.record_fleet_exhausted();
    let err = JobError::new(
        503,
        "fleet_exhausted",
        format!("cluster cannot serve the request: {detail}"),
    );
    Response::json(503, err.body())
        .with_header("Retry-After", &inner.config.retry_after_secs.to_string())
}

/// Splits `0..total` into `k` contiguous, near-equal ranges (first
/// `total % k` ranges get the extra mode). Ranges tile the table in order.
#[must_use]
pub fn partition_modes(total: u64, k: usize) -> Vec<(u64, u64)> {
    let k = (k.max(1) as u64).min(total.max(1));
    let base = total / k;
    let rem = total % k;
    let mut ranges = Vec::with_capacity(k as usize);
    let mut lo = 0;
    for i in 0..k {
        let hi = lo + base + u64::from(i < rem);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// Rendezvous (highest-random-weight) order of the live workers for a
/// network hash: stable while the fleet is stable, and a worker's death
/// only reassigns the networks it owned.
#[must_use]
pub fn rendezvous_order(hash: &str, up: &[WorkerStatus]) -> Vec<WorkerStatus> {
    let h = u64::from_str_radix(hash.get(..16).unwrap_or(""), 16).unwrap_or_else(|_| fnv64(hash));
    let mut scored: Vec<(u64, WorkerStatus)> =
        up.iter().map(|w| (splitmix64(h ^ fnv64(&w.addr)), w.clone())).collect();
    scored.sort_by_key(|(score, _)| std::cmp::Reverse(*score));
    scored.into_iter().map(|(_, w)| w).collect()
}

/// FNV-1a, for hashing worker addresses into the rendezvous score.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64's finalizer, mixing network and worker identities into the
/// rendezvous score.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The health loop: probe live workers (liveness + queue depth), eject
/// after consecutive failures or a wedged queue, respawn dead slots and
/// re-seed them with every mirrored network.
fn health_loop(inner: &Inner) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        for status in inner.fleet.snapshot() {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if !status.up {
                if inner.fleet.can_respawn() {
                    if let Ok(addr) = inner.fleet.respawn(status.slot) {
                        inner.metrics.record_respawn();
                        reseed(inner, status.slot, &addr);
                    }
                } else {
                    // Adopted workers cannot respawn; probe for recovery.
                    probe(inner, &status);
                }
                continue;
            }
            probe(inner, &status);
        }
        // Sleep in small slices so shutdown stays responsive.
        let mut slept = Duration::ZERO;
        while slept < inner.config.health_interval {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let slice = Duration::from_millis(25).min(inner.config.health_interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// One health probe: scrape `/metrics` for liveness and queue depth.
fn probe(inner: &Inner, status: &WorkerStatus) {
    if status.addr.is_empty() {
        return;
    }
    let client = Client::new(status.addr.clone()).with_timeout(inner.config.probe_timeout);
    match client.metrics_text() {
        Ok(text) => {
            let depth = text
                .lines()
                .find_map(|l| l.strip_prefix("rsnd_queue_depth "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            if depth >= inner.config.wedged_queue_depth {
                // Alive but wedged: treat like a failed probe.
                if inner.fleet.record_failure(
                    status.slot,
                    status.generation,
                    inner.config.health_failures,
                ) {
                    inner.metrics.record_ejection();
                    inner.fleet.kill(status.slot);
                }
            } else {
                inner.fleet.record_success(status.slot, status.generation, depth);
            }
        }
        Err(_) => {
            if inner.fleet.record_failure(
                status.slot,
                status.generation,
                inner.config.health_failures,
            ) {
                inner.metrics.record_ejection();
                inner.fleet.kill(status.slot);
            }
        }
    }
}

/// Re-registers every mirrored network on a freshly respawned worker.
fn reseed(inner: &Inner, slot: usize, addr: &str) {
    let networks: Vec<Arc<ParsedNetwork>> = {
        let registry = inner.registry.lock().unwrap_or_else(PoisonError::into_inner);
        registry.values().cloned().collect()
    };
    let client = Client::new(addr.to_string()).with_timeout(inner.config.io_timeout);
    for parsed in networks {
        if client.put_network_streaming(&parsed.text).map(|r| r.status == 200).unwrap_or(false) {
            continue;
        }
        // The fresh worker is already failing; let the health loop decide.
        let _ = slot;
        break;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(addrs: &[&str]) -> Vec<WorkerStatus> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, a)| WorkerStatus {
                slot: i,
                generation: i as u64,
                addr: (*a).to_string(),
                up: true,
                queue_depth: 0,
            })
            .collect()
    }

    #[test]
    fn partition_tiles_the_table_in_order() {
        for (total, k) in [(10u64, 3usize), (7, 7), (5, 8), (1, 4), (1000, 3)] {
            let ranges = partition_modes(total, k);
            assert!(ranges.len() <= k.max(1));
            let mut next = 0;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, next, "total={total} k={k}");
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, total, "total={total} k={k}");
            let sizes: Vec<u64> = ranges.iter().map(|&(lo, hi)| hi - lo).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced partition {sizes:?}");
        }
    }

    #[test]
    fn rendezvous_is_stable_and_moves_minimally() {
        let up = workers(&["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"]);
        let hash = "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef";
        let a = rendezvous_order(hash, &up);
        let b = rendezvous_order(hash, &up);
        assert_eq!(
            a.iter().map(|w| &w.addr).collect::<Vec<_>>(),
            b.iter().map(|w| &w.addr).collect::<Vec<_>>()
        );
        // Removing the non-preferred worker keeps the winner in place.
        let winner = a[0].addr.clone();
        let reduced: Vec<WorkerStatus> =
            up.iter().filter(|w| w.addr != a[2].addr).cloned().collect();
        let c = rendezvous_order(hash, &reduced);
        assert_eq!(c[0].addr, winner, "winner moved although it stayed alive");
    }

    #[test]
    fn different_networks_spread_over_workers() {
        let up = workers(&["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"]);
        let winners: std::collections::BTreeSet<String> = (0..64)
            .map(|i| {
                let hash = format!("{i:016x}{i:016x}{i:016x}{i:016x}");
                rendezvous_order(&hash, &up)[0].addr.clone()
            })
            .collect();
        assert!(winners.len() >= 2, "rendezvous degenerated to one worker");
    }
}
