//! The merged fleet `/metrics` view: coordinator-level counters plus
//! per-worker up/down gauges and scraped queue depths, in the same
//! Prometheus text exposition the single-node daemon uses.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::fleet::WorkerStatus;

/// Lock-free coordinator counters. Rendering folds in a fleet snapshot for
/// the per-worker gauges.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    requests: AtomicU64,
    responses_ok: AtomicU64,
    responses_err: AtomicU64,
    shards_dispatched: AtomicU64,
    shards_retried: AtomicU64,
    failovers: AtomicU64,
    rebalances: AtomicU64,
    respawns: AtomicU64,
    ejections: AtomicU64,
    fleet_exhausted: AtomicU64,
    chaos_kills: AtomicU64,
    chaos_drops: AtomicU64,
    chaos_slows: AtomicU64,
}

impl ClusterMetrics {
    /// Counts one accepted client request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one response by success (2xx) or error status.
    pub fn record_response(&self, status: u16) {
        if (200..300).contains(&status) {
            self.responses_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.responses_err.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one shard dispatched to a worker.
    pub fn record_shard_dispatched(&self) {
        self.shards_dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shard re-dispatched after a failed attempt.
    pub fn record_shard_retried(&self) {
        self.shards_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one whole-job failover to the next worker in rendezvous
    /// order.
    pub fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one on-demand network re-registration (a worker answered
    /// `unknown_network` after a respawn and the coordinator repaired it).
    pub fn record_rebalance(&self) {
        self.rebalances.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one worker respawn.
    pub fn record_respawn(&self) {
        self.respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one health-based ejection.
    pub fn record_ejection(&self) {
        self.ejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request answered `503` because every worker (and retry
    /// budget) was exhausted.
    pub fn record_fleet_exhausted(&self) {
        self.fleet_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one chaos-injected worker kill.
    pub fn record_chaos_kill(&self) {
        self.chaos_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one chaos-injected connection drop.
    pub fn record_chaos_drop(&self) {
        self.chaos_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one chaos-injected slow-worker delay.
    pub fn record_chaos_slow(&self) {
        self.chaos_slows.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the exposition with the given fleet snapshot.
    #[must_use]
    pub fn render(&self, fleet: &[WorkerStatus]) -> String {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::with_capacity(1024);
        let up = fleet.iter().filter(|w| w.up).count();
        out.push_str(&format!("rsnc_workers {}\n", fleet.len()));
        out.push_str(&format!("rsnc_workers_up {up}\n"));
        for w in fleet {
            let addr = if w.addr.is_empty() { "unspawned" } else { w.addr.as_str() };
            out.push_str(&format!(
                "rsnc_worker_up{{slot=\"{}\",worker=\"{addr}\"}} {}\n",
                w.slot,
                u64::from(w.up)
            ));
            out.push_str(&format!(
                "rsnc_worker_queue_depth{{slot=\"{}\",worker=\"{addr}\"}} {}\n",
                w.slot, w.queue_depth
            ));
        }
        for (name, value) in [
            ("rsnc_requests_total", get(&self.requests)),
            ("rsnc_responses_ok_total", get(&self.responses_ok)),
            ("rsnc_responses_error_total", get(&self.responses_err)),
            ("rsnc_shards_dispatched_total", get(&self.shards_dispatched)),
            ("rsnc_shards_retried_total", get(&self.shards_retried)),
            ("rsnc_failovers_total", get(&self.failovers)),
            ("rsnc_rebalances_total", get(&self.rebalances)),
            ("rsnc_worker_respawns_total", get(&self.respawns)),
            ("rsnc_worker_ejections_total", get(&self.ejections)),
            ("rsnc_fleet_exhausted_total", get(&self.fleet_exhausted)),
            ("rsnc_chaos_worker_kills_total", get(&self.chaos_kills)),
            ("rsnc_chaos_conn_drops_total", get(&self.chaos_drops)),
            ("rsnc_chaos_slow_workers_total", get(&self.chaos_slows)),
        ] {
            out.push_str(&format!("{name} {value}\n"));
        }
        out
    }
}
