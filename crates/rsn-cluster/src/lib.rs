//! `rsn-cluster` — a fault-tolerant cluster coordinator (`rsnc`) for
//! `rsnd` analysis workers.
//!
//! The coordinator speaks the exact same HTTP/JSON wire protocol as a
//! single `rsnd` ([`rsn_serve::wire`]) so every client — `rsn_tool`, the
//! loadgen harness, the smoke scripts — points at `rsnc` unchanged. Behind
//! that front it:
//!
//! - **spawns or adopts** N workers ([`fleet::Fleet`]), each an ordinary
//!   `rsnd` process on its own port;
//! - **routes whole jobs** by rendezvous hashing of the canonical network
//!   hash, so repeat submissions of the same network hit the same worker's
//!   result cache;
//! - **range-partitions large sweeps**: a big `/v1/analyze` is split into
//!   contiguous fault-mode ranges, one per worker, and the shard responses
//!   merge (order-preserving, packing-independent) into a response
//!   **byte-identical** to a single node's;
//! - **survives worker death**: health probes eject dead or wedged
//!   workers, a supervisor respawns them and re-seeds their network
//!   registry, and in-flight shards fail over to surviving workers under a
//!   bounded retry budget — exhausting the budget degrades gracefully to a
//!   structured, retryable `503 fleet_exhausted`;
//! - **merges fleet metrics**: `GET /metrics` exposes per-worker up/down
//!   and queue depth plus coordinator counters (shards retried, failovers,
//!   rebalances, respawns);
//! - **injects cluster chaos**: the shared deterministic
//!   [`Chaos`](rsn_serve::chaos::Chaos) schedule gains `kill-worker`,
//!   `drop-conn` and `slow-worker` sites fired by the coordinator.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coordinator;
pub mod fleet;
pub mod metrics;

pub use coordinator::{ClusterConfig, ClusterControl, ClusterShutdownHandle, Coordinator};
pub use fleet::{Fleet, Worker, WorkerSpawn, WorkerStatus};
pub use metrics::ClusterMetrics;
