//! Import/export for a practical subset of ICL, the Instrument Connectivity
//! Language of IEEE Std 1687.
//!
//! The RSN benchmark suites the paper evaluates on (ITC'16 \[22\], DATE'19
//! \[23\]) are distributed as ICL; this module lets such descriptions be
//! loaded directly — when available — instead of using the generators of the
//! `rsn-benchmarks` crate. The supported subset covers flat (elaborated)
//! modules with the scan-path primitives of §III:
//!
//! ```text
//! Module demo {
//!   ScanInPort SI;
//!   ScanOutPort SO { Source M0; }
//!   DataInPort sel0;
//!   ScanRegister R0[7:0] {
//!     ScanInSource SI;
//!     Attribute instrument = "bist";
//!   }
//!   ScanRegister cell { ScanInSource R0; }
//!   ScanMux M0 SelectedBy cell[0] {
//!     1'b0 : R0;
//!     1'b1 : cell;
//!   }
//! }
//! ```
//!
//! * `ScanRegister` → scan segment (optionally hosting an instrument via an
//!   `Attribute instrument = "<kind>";` annotation);
//! * `ScanMux` → scan multiplexer; `SelectedBy` referencing a register bit
//!   gives SIB-style scan control, referencing a `DataInPort` gives direct
//!   control;
//! * fan-outs are implicit (a source referenced by several sinks) and
//!   materialize as fan-out vertices on import.
//!
//! Hierarchical `Instance`s, `ScanInterface`s, and the full attribute system
//! of IEEE 1687 are out of scope; elaborate hierarchies to a flat module
//! first.

use std::collections::HashMap;
use std::fmt;

use crate::error::NetworkError;
use crate::ids::NodeId;
use crate::instrument::InstrumentKind;
use crate::network::{NetworkBuilder, ScanNetwork};
use crate::primitive::{ControlSource, NodeKind, Segment};

/// Error raised while importing ICL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IclError {
    /// 1-based source line (0 for structural errors discovered after
    /// parsing).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for IclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "icl error: {}", self.message)
        } else {
            write!(f, "icl error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for IclError {}

impl From<NetworkError> for IclError {
    fn from(e: NetworkError) -> Self {
        Self { line: 0, message: e.to_string() }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SourceRef {
    name: String,
    bit: Option<u32>,
    line: usize,
}

#[derive(Debug, Clone)]
enum Element {
    ScanIn { name: String },
    ScanOut { name: String, source: SourceRef },
    DataIn { name: String },
    Register { name: String, len: u32, source: SourceRef, instrument: Option<InstrumentKind> },
    Mux { name: String, selected_by: SourceRef, inputs: Vec<(u64, SourceRef)>, line: usize },
}

/// Parses a flat ICL module and builds the scan network.
///
/// # Errors
///
/// Returns an [`IclError`] for syntax errors, unresolved names, select
/// values out of range, cyclic scan paths, and any network-invariant
/// violation.
pub fn import_icl(input: &str) -> Result<ScanNetwork, IclError> {
    let (module, elements) = parse(input)?;
    link(&module, &elements)
}

fn parse(input: &str) -> Result<(String, Vec<Element>), IclError> {
    let mut p = P::new(input)?;
    p.keyword("Module")?;
    let module = p.ident()?;
    p.sym("{")?;
    let mut elements = Vec::new();
    loop {
        match p.peek_word() {
            Some("}") => {
                p.sym("}")?;
                break;
            }
            Some("ScanInPort") => {
                p.keyword("ScanInPort")?;
                let name = p.ident()?;
                p.sym(";")?;
                elements.push(Element::ScanIn { name });
            }
            Some("DataInPort") => {
                p.keyword("DataInPort")?;
                let name = p.ident()?;
                p.sym(";")?;
                elements.push(Element::DataIn { name });
            }
            Some("ScanOutPort") => {
                p.keyword("ScanOutPort")?;
                let name = p.ident()?;
                p.sym("{")?;
                p.keyword("Source")?;
                let source = p.source()?;
                p.sym(";")?;
                p.sym("}")?;
                elements.push(Element::ScanOut { name, source });
            }
            Some("ScanRegister") => {
                p.keyword("ScanRegister")?;
                let name = p.ident()?;
                let len = if p.peek_word() == Some("[") {
                    p.sym("[")?;
                    let msb: u32 = p.number()?;
                    p.sym(":")?;
                    let lsb: u32 = p.number()?;
                    p.sym("]")?;
                    msb.max(lsb) - msb.min(lsb) + 1
                } else {
                    1
                };
                p.sym("{")?;
                let mut source = None;
                let mut instrument = None;
                loop {
                    match p.peek_word() {
                        Some("}") => {
                            p.sym("}")?;
                            break;
                        }
                        Some("ScanInSource") => {
                            p.keyword("ScanInSource")?;
                            source = Some(p.source()?);
                            p.sym(";")?;
                        }
                        Some("Attribute") => {
                            let (key, value) = p.attribute()?;
                            if key == "instrument" {
                                instrument = Some(parse_kind(&value));
                            }
                        }
                        // Tolerated-but-ignored register properties.
                        Some("CaptureSource" | "ResetValue") => {
                            p.skip_statement()?;
                        }
                        other => {
                            return Err(p.err(format!("unexpected token {other:?} in ScanRegister")))
                        }
                    }
                }
                let source = source
                    .ok_or_else(|| p.err(format!("ScanRegister {name} needs a ScanInSource")))?;
                elements.push(Element::Register { name, len, source, instrument });
            }
            Some("ScanMux") => {
                let line = p.line();
                p.keyword("ScanMux")?;
                let name = p.ident()?;
                p.keyword("SelectedBy")?;
                let selected_by = p.source()?;
                p.sym("{")?;
                let mut inputs = Vec::new();
                while p.peek_word() != Some("}") {
                    let value = p.sized_number()?;
                    p.sym(":")?;
                    let src = p.source()?;
                    p.sym(";")?;
                    inputs.push((value, src));
                }
                p.sym("}")?;
                elements.push(Element::Mux { name, selected_by, inputs, line });
            }
            Some("Attribute") => {
                let _ = p.attribute()?;
            }
            other => return Err(p.err(format!("unexpected token {other:?} in Module"))),
        }
    }
    Ok((module, elements))
}

/// Builds the graph: resolve names, materialize implicit fan-outs, create
/// nodes in topological order.
fn link(module: &str, elements: &[Element]) -> Result<ScanNetwork, IclError> {
    let serr = |s: &SourceRef, m: String| IclError { line: s.line, message: m };
    // Name-level nodes: index into `elements` plus the two ports.
    let mut by_name: HashMap<&str, usize> = HashMap::new();
    let mut scan_in: Option<&str> = None;
    let mut scan_out: Option<(&str, &SourceRef)> = None;
    for (i, e) in elements.iter().enumerate() {
        let name = match e {
            Element::ScanIn { name } => {
                scan_in = Some(name);
                name
            }
            Element::ScanOut { name, source } => {
                scan_out = Some((name, source));
                name
            }
            Element::DataIn { name }
            | Element::Register { name, .. }
            | Element::Mux { name, .. } => name,
        };
        if by_name.insert(name, i).is_some() {
            return Err(IclError { line: 0, message: format!("duplicate name {name:?}") });
        }
    }
    let scan_in =
        scan_in.ok_or_else(|| IclError { line: 0, message: "module has no ScanInPort".into() })?;
    let (_, out_source) = scan_out
        .ok_or_else(|| IclError { line: 0, message: "module has no ScanOutPort".into() })?;

    // Scan-path consumers per driver name (registers, mux inputs, scan-out).
    let resolve = |s: &SourceRef| -> Result<usize, IclError> {
        if s.name == scan_in {
            return Ok(usize::MAX); // sentinel for the scan-in port
        }
        match by_name.get(s.name.as_str()) {
            Some(&i) => match &elements[i] {
                Element::Register { .. } | Element::Mux { .. } => Ok(i),
                _ => Err(serr(s, format!("{} is not a scan-path element", s.name))),
            },
            None => Err(serr(s, format!("unresolved source {:?}", s.name))),
        }
    };
    let mut consumers: HashMap<usize, usize> = HashMap::new(); // driver -> count
    let mut note = |driver: usize| *consumers.entry(driver).or_insert(0) += 1;
    for e in elements {
        match e {
            Element::Register { source, .. } => note(resolve(source)?),
            Element::Mux { inputs, .. } => {
                for (_, src) in inputs {
                    note(resolve(src)?);
                }
            }
            _ => {}
        }
    }
    note(resolve(out_source)?);

    // Topological order over scan-path elements (Kahn).
    let deps = |i: usize| -> Result<Vec<usize>, IclError> {
        Ok(match &elements[i] {
            Element::Register { source, .. } => vec![resolve(source)?],
            Element::Mux { inputs, .. } => {
                inputs.iter().map(|(_, s)| resolve(s)).collect::<Result<Vec<_>, _>>()?
            }
            _ => Vec::new(),
        }
        .into_iter()
        .filter(|&d| d != usize::MAX)
        .collect())
    };
    let scan_elems: Vec<usize> = (0..elements.len())
        .filter(|&i| matches!(elements[i], Element::Register { .. } | Element::Mux { .. }))
        .collect();
    let mut indeg: HashMap<usize, usize> = scan_elems.iter().map(|&i| (i, 0)).collect();
    let mut rdeps: HashMap<usize, Vec<usize>> = HashMap::new();
    for &i in &scan_elems {
        for d in deps(i)? {
            *indeg.get_mut(&i).expect("scan element") += 1;
            rdeps.entry(d).or_default().push(i);
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(scan_elems.len());
    let mut queue: Vec<usize> = scan_elems.iter().copied().filter(|i| indeg[i] == 0).collect();
    while let Some(i) = queue.pop() {
        order.push(i);
        for &j in rdeps.get(&i).map_or(&[][..], Vec::as_slice) {
            let d = indeg.get_mut(&j).expect("scan element");
            *d -= 1;
            if *d == 0 {
                queue.push(j);
            }
        }
    }
    if order.len() != scan_elems.len() {
        return Err(IclError { line: 0, message: "cyclic scan path".into() });
    }

    // Emit nodes; insert a fan-out behind every multiply-consumed driver.
    let mut b = NetworkBuilder::new(module);
    let mut node_of: HashMap<usize, NodeId> = HashMap::new(); // element -> output node
    let mut tap_of: HashMap<usize, NodeId> = HashMap::new(); // element -> node consumers read
    let tap = |b: &mut NetworkBuilder,
               node_of: &HashMap<usize, NodeId>,
               tap_of: &mut HashMap<usize, NodeId>,
               consumers: &HashMap<usize, usize>,
               elements: &[Element],
               i: usize|
     -> NodeId {
        if let Some(&t) = tap_of.get(&i) {
            return t;
        }
        let out = if i == usize::MAX { b.scan_in() } else { node_of[&i] };
        let t = if consumers.get(&i).copied().unwrap_or(0) > 1 {
            let label = if i == usize::MAX {
                "SI".to_string()
            } else {
                match &elements[i] {
                    Element::Register { name, .. } | Element::Mux { name, .. } => name.clone(),
                    _ => unreachable!("only scan elements drive"),
                }
            };
            let f = b.add_fanout(format!("{label}.fan"));
            b.connect(out, f).expect("fresh fan-out edge");
            f
        } else {
            out
        };
        tap_of.insert(i, t);
        t
    };

    for &i in &order {
        match &elements[i] {
            Element::Register { name, len, source, instrument } => {
                let node = b.add_segment(name.clone(), Segment::new(*len));
                let driver = resolve(source)?;
                let from = tap(&mut b, &node_of, &mut tap_of, &consumers, elements, driver);
                b.connect(from, node)?;
                if let Some(kind) = instrument {
                    b.add_instrument(name.clone(), node, *kind)?;
                }
                node_of.insert(i, node);
            }
            Element::Mux { name, selected_by, inputs, line } => {
                // Inputs ordered by select value; values must be dense 0..k.
                let mut ordered = inputs.clone();
                ordered.sort_by_key(|(v, _)| *v);
                for (expect, (v, _)) in ordered.iter().enumerate() {
                    if *v != expect as u64 {
                        return Err(IclError {
                            line: *line,
                            message: format!(
                                "ScanMux {name} select values must be dense from 0, got {v}"
                            ),
                        });
                    }
                }
                let input_nodes: Vec<NodeId> = ordered
                    .iter()
                    .map(|(_, s)| {
                        let d = resolve(s)?;
                        Ok(tap(&mut b, &node_of, &mut tap_of, &consumers, elements, d))
                    })
                    .collect::<Result<_, IclError>>()?;
                let control = match by_name.get(selected_by.name.as_str()).map(|&i| &elements[i]) {
                    Some(Element::DataIn { .. }) => ControlSource::Direct,
                    Some(Element::Register { .. }) => {
                        // The register node must already exist; a control
                        // cell is a scan-path dependency in spirit but not in
                        // the shift path, so look it up leniently.
                        let reg = by_name[selected_by.name.as_str()];
                        let segment = node_of.get(&reg).copied().ok_or_else(|| {
                            serr(
                                selected_by,
                                format!(
                                    "control register {} must precede ScanMux {name}",
                                    selected_by.name
                                ),
                            )
                        })?;
                        ControlSource::Cell { segment, bit: selected_by.bit.unwrap_or(0) }
                    }
                    _ => {
                        return Err(serr(
                            selected_by,
                            format!("unresolved select source {:?}", selected_by.name),
                        ))
                    }
                };
                let node = b.add_mux(name.clone(), input_nodes, control)?;
                node_of.insert(i, node);
            }
            _ => {}
        }
    }
    let last = resolve(out_source)?;
    let from = tap(&mut b, &node_of, &mut tap_of, &consumers, elements, last);
    let so = b.scan_out();
    b.connect(from, so)?;
    Ok(b.finish()?)
}

/// Renders a network as a flat ICL module (the inverse of [`import_icl`]).
#[must_use]
pub fn export_icl(net: &ScanNetwork) -> String {
    let mut out = format!("Module {} {{\n", sanitize(net.name()));
    out.push_str("  ScanInPort SI;\n");
    let label = |n: NodeId| sanitize(&net.node(n).label(n));
    // Direct-controlled muxes need select ports.
    for m in net.muxes() {
        if net.node(m).kind.as_mux().map(|x| x.control) == Some(ControlSource::Direct) {
            out.push_str(&format!("  DataInPort {}_sel;\n", label(m)));
        }
    }
    // The scan-path source of a node: its predecessor, looking through
    // fan-outs.
    let source_of = |mut n: NodeId| -> NodeId {
        loop {
            let p = net.predecessors(n)[0];
            if matches!(net.node(p).kind, NodeKind::Fanout) {
                n = p;
            } else {
                return p;
            }
        }
    };
    let source_name = |n: NodeId| -> String {
        let p = source_of(n);
        if p == net.scan_in() {
            "SI".to_string()
        } else {
            label(p)
        }
    };
    for n in net.topological_order() {
        match &net.node(n).kind {
            NodeKind::Segment(seg) => {
                out.push_str(&format!(
                    "  ScanRegister {}[{}:0] {{\n    ScanInSource {};\n",
                    label(n),
                    seg.len - 1,
                    source_name(n)
                ));
                if let Some(i) = net.instrument_at(n) {
                    out.push_str(&format!(
                        "    Attribute instrument = \"{}\";\n",
                        kind_name(net.instrument(i).kind())
                    ));
                }
                out.push_str("  }\n");
            }
            NodeKind::Mux(m) => {
                let select = match m.control {
                    ControlSource::Direct => format!("{}_sel", label(n)),
                    ControlSource::Cell { segment, bit } => {
                        format!("{}[{bit}]", label(segment))
                    }
                };
                out.push_str(&format!("  ScanMux {} SelectedBy {select} {{\n", label(n)));
                let width = (usize::BITS - (m.inputs.len() - 1).leading_zeros()).max(1);
                for (v, &input) in m.inputs.iter().enumerate() {
                    let iname = if input == net.scan_in() {
                        "SI".to_string()
                    } else if matches!(net.node(input).kind, NodeKind::Fanout) {
                        // A fan-out as mux input: name its driver.
                        source_name(input)
                    } else {
                        label(input)
                    };
                    out.push_str(&format!("    {width}'d{v} : {iname};\n"));
                }
                out.push_str("  }\n");
            }
            _ => {}
        }
    }
    let last = {
        let p = net.predecessors(net.scan_out())[0];
        if matches!(net.node(p).kind, NodeKind::Fanout) {
            source_name(net.scan_out())
        } else if p == net.scan_in() {
            "SI".to_string()
        } else {
            label(p)
        }
    };
    out.push_str(&format!("  ScanOutPort SO {{ Source {last}; }}\n}}\n"));
    out
}

fn sanitize(name: &str) -> String {
    let mut s: String =
        name.chars().map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'n');
    }
    s
}

fn kind_name(kind: InstrumentKind) -> &'static str {
    match kind {
        InstrumentKind::Sensor => "sensor",
        InstrumentKind::RuntimeAdaptive => "runtime",
        InstrumentKind::Bist => "bist",
        InstrumentKind::Debug => "debug",
        _ => "generic",
    }
}

fn parse_kind(name: &str) -> InstrumentKind {
    match name {
        "sensor" => InstrumentKind::Sensor,
        "runtime" => InstrumentKind::RuntimeAdaptive,
        "bist" => InstrumentKind::Bist,
        "debug" => InstrumentKind::Debug,
        _ => InstrumentKind::Generic,
    }
}

// ---------------------------------------------------------------------------
// Lexing / parsing helpers
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
struct Tok {
    line: usize,
    text: String,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Self { chars: input.chars().peekable(), line: 1 }
    }
}

impl Iterator for Lexer<'_> {
    type Item = Result<Tok, IclError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let &c = self.chars.peek()?;
            match c {
                '\n' => {
                    self.line += 1;
                    self.chars.next();
                }
                c if c.is_whitespace() => {
                    self.chars.next();
                }
                '/' => {
                    self.chars.next();
                    if self.chars.peek() == Some(&'/') {
                        for c in self.chars.by_ref() {
                            if c == '\n' {
                                self.line += 1;
                                break;
                            }
                        }
                    } else {
                        return Some(Err(IclError {
                            line: self.line,
                            message: "stray '/'".into(),
                        }));
                    }
                }
                '{' | '}' | ';' | ':' | '[' | ']' | '=' => {
                    self.chars.next();
                    return Some(Ok(Tok { line: self.line, text: c.to_string() }));
                }
                '"' => {
                    self.chars.next();
                    let mut s = String::from("\"");
                    loop {
                        match self.chars.next() {
                            Some('"') => break,
                            Some(c) => s.push(c),
                            None => {
                                return Some(Err(IclError {
                                    line: self.line,
                                    message: "unterminated string".into(),
                                }))
                            }
                        }
                    }
                    return Some(Ok(Tok { line: self.line, text: s }));
                }
                c if c.is_alphanumeric() || c == '_' || c == '\'' => {
                    let mut s = String::new();
                    while let Some(&d) = self.chars.peek() {
                        if d.is_alphanumeric() || d == '_' || d == '\'' || d == '.' {
                            s.push(d);
                            self.chars.next();
                        } else {
                            break;
                        }
                    }
                    return Some(Ok(Tok { line: self.line, text: s }));
                }
                other => {
                    return Some(Err(IclError {
                        line: self.line,
                        message: format!("unexpected character {other:?}"),
                    }))
                }
            }
        }
    }
}

/// A streaming token cursor: tokens are lexed on demand with one token of
/// lookahead, so importing a fleet-scale generated ICL module never
/// materializes the whole token list (peak memory stays bounded by the
/// element list, not the source text).
struct P<'a> {
    lx: Lexer<'a>,
    /// One-token lookahead; `None` only at end of input.
    lookahead: Option<Tok>,
}

impl<'a> P<'a> {
    fn new(input: &'a str) -> Result<Self, IclError> {
        let mut lx = Lexer::new(input);
        let lookahead = lx.next().transpose()?;
        Ok(Self { lx, lookahead })
    }

    fn line(&self) -> usize {
        self.lookahead.as_ref().map_or(0, |t| t.line)
    }

    fn err(&self, message: String) -> IclError {
        IclError { line: self.line(), message }
    }

    fn peek_word(&self) -> Option<&str> {
        self.lookahead.as_ref().map(|t| t.text.as_str())
    }

    fn next_tok(&mut self) -> Result<Tok, IclError> {
        let t = self
            .lookahead
            .take()
            .ok_or(IclError { line: 0, message: "unexpected end of input".into() })?;
        self.lookahead = self.lx.next().transpose()?;
        Ok(t)
    }

    fn keyword(&mut self, kw: &str) -> Result<(), IclError> {
        let t = self.next_tok()?;
        if t.text == kw {
            Ok(())
        } else {
            Err(IclError { line: t.line, message: format!("expected {kw:?}, got {:?}", t.text) })
        }
    }

    fn sym(&mut self, s: &str) -> Result<(), IclError> {
        self.keyword(s)
    }

    fn ident(&mut self) -> Result<String, IclError> {
        let t = self.next_tok()?;
        if t.text.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
            Ok(t.text)
        } else {
            Err(IclError { line: t.line, message: format!("expected a name, got {:?}", t.text) })
        }
    }

    fn number<T: std::str::FromStr>(&mut self) -> Result<T, IclError> {
        let t = self.next_tok()?;
        t.text.parse().map_err(|_| IclError {
            line: t.line,
            message: format!("expected a number, got {:?}", t.text),
        })
    }

    /// Parses a sized literal like `1'b0` or `2'd3` (plain integers are also
    /// accepted).
    fn sized_number(&mut self) -> Result<u64, IclError> {
        let t = self.next_tok()?;
        let text = &t.text;
        let value = if let Some((_, rest)) = text.split_once('\'') {
            let (radix, digits) = match rest.split_at(1) {
                ("b", d) => (2, d),
                ("d", d) => (10, d),
                ("h", d) => (16, d),
                _ => {
                    return Err(IclError {
                        line: t.line,
                        message: format!("bad sized literal {text:?}"),
                    })
                }
            };
            u64::from_str_radix(digits, radix)
        } else {
            text.parse()
        };
        value.map_err(|_| IclError { line: t.line, message: format!("bad literal {text:?}") })
    }

    /// Parses `name` or `name[bit]`.
    fn source(&mut self) -> Result<SourceRef, IclError> {
        let line = self.line();
        let name = self.ident()?;
        let bit = if self.peek_word() == Some("[") {
            self.sym("[")?;
            let b: u32 = self.number()?;
            self.sym("]")?;
            Some(b)
        } else {
            None
        };
        Ok(SourceRef { name, bit, line })
    }

    /// Parses `Attribute key = "value";` (or `= token;`).
    fn attribute(&mut self) -> Result<(String, String), IclError> {
        self.keyword("Attribute")?;
        let key = self.ident()?;
        self.sym("=")?;
        let t = self.next_tok()?;
        let value = t.text.strip_prefix('"').unwrap_or(&t.text).to_string();
        self.sym(";")?;
        Ok((key, value))
    }

    /// Skips a `Keyword ... ;` statement.
    fn skip_statement(&mut self) -> Result<(), IclError> {
        loop {
            let t = self.next_tok()?;
            if t.text == ";" {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Structure;

    const DEMO: &str = r#"
// A SIB-gated register plus a two-way selection.
Module demo {
  ScanInPort SI;
  ScanOutPort SO { Source M1; }
  DataInPort m1_sel;
  ScanRegister cell { ScanInSource SI; }
  ScanRegister R0[7:0] {
    ScanInSource cell;
    Attribute instrument = "bist";
  }
  ScanMux M0 SelectedBy cell[0] {
    1'b0 : cell;
    1'b1 : R0;
  }
  ScanRegister A[3:0] { ScanInSource M0; Attribute instrument = "sensor"; }
  ScanRegister B[3:0] { ScanInSource M0; Attribute instrument = "debug"; }
  ScanMux M1 SelectedBy m1_sel {
    1'b0 : A;
    1'b1 : B;
  }
}
"#;

    #[test]
    fn imports_the_demo_module() {
        let net = import_icl(DEMO).unwrap();
        let stats = net.stats();
        assert_eq!(stats.segments, 4); // cell, R0, A, B
        assert_eq!(stats.muxes, 2);
        assert_eq!(stats.instruments, 3);
        assert_eq!(stats.scan_cells, 1 + 8 + 4 + 4);
        // M0 is SIB-style (cell-controlled), M1 direct.
        let m0 = net.nodes().find(|(_, n)| n.name.as_deref() == Some("M0")).unwrap().0;
        let m1 = net.nodes().find(|(_, n)| n.name.as_deref() == Some("M1")).unwrap().0;
        assert!(matches!(net.node(m0).kind.as_mux().unwrap().control, ControlSource::Cell { .. }));
        assert_eq!(net.node(m1).kind.as_mux().unwrap().control, ControlSource::Direct);
    }

    #[test]
    fn implicit_fanouts_materialize() {
        let net = import_icl(DEMO).unwrap();
        // `cell` feeds R0 and M0 (two consumers) and M0 feeds A and B.
        assert_eq!(net.stats().fanouts, 2);
        net.validate().unwrap();
    }

    #[test]
    fn export_import_roundtrip_preserves_the_network() {
        let s = Structure::series(vec![
            Structure::sib("s0", Structure::instrument_seg("r0", 6, InstrumentKind::Bist)),
            Structure::parallel(
                vec![
                    Structure::instrument_seg("a", 2, InstrumentKind::Sensor),
                    Structure::instrument_seg("b", 3, InstrumentKind::Debug),
                ],
                "m0",
            ),
            Structure::seg("tail", 2),
        ]);
        let (net, _) = s.build("round").unwrap();
        let icl = export_icl(&net);
        let back = import_icl(&icl).unwrap_or_else(|e| panic!("{e}\n{icl}"));
        assert_eq!(back.stats().segments, net.stats().segments);
        assert_eq!(back.stats().muxes, net.stats().muxes);
        assert_eq!(back.stats().instruments, net.stats().instruments);
        assert_eq!(back.stats().scan_cells, net.stats().scan_cells);
        back.validate().unwrap();
    }

    #[test]
    fn sib_bypass_wire_roundtrips() {
        // A SIB's bypass branch is a wire: on export the mux input names the
        // fan-out's driver, which must re-import identically.
        let s = Structure::sib("s", Structure::seg("d", 4));
        let (net, _) = s.build("wire").unwrap();
        let icl = export_icl(&net);
        let back = import_icl(&icl).unwrap_or_else(|e| panic!("{e}\n{icl}"));
        assert_eq!(back.stats().segments, 2);
        assert_eq!(back.stats().muxes, 1);
    }

    #[test]
    fn rejects_unresolved_sources() {
        let bad = "Module m {\n  ScanInPort SI;\n  ScanOutPort SO { Source ghost; }\n}";
        let e = import_icl(bad).unwrap_err();
        assert!(e.message.contains("ghost"), "{e}");
    }

    #[test]
    fn rejects_sparse_select_values() {
        let bad = r#"Module m {
  ScanInPort SI;
  ScanOutPort SO { Source M; }
  DataInPort s;
  ScanRegister A { ScanInSource SI; }
  ScanRegister B { ScanInSource SI; }
  ScanMux M SelectedBy s {
    2'd0 : A;
    2'd2 : B;
  }
}"#;
        let e = import_icl(bad).unwrap_err();
        assert!(e.message.contains("dense"), "{e}");
    }

    #[test]
    fn rejects_cyclic_scan_paths() {
        let bad = r#"Module m {
  ScanInPort SI;
  ScanOutPort SO { Source B; }
  ScanRegister A { ScanInSource B; }
  ScanRegister B { ScanInSource A; }
}"#;
        let e = import_icl(bad).unwrap_err();
        assert!(e.message.contains("cyclic"), "{e}");
    }

    #[test]
    fn reports_line_numbers_for_syntax_errors() {
        let bad = "Module m {\n  ScanInPort SI;\n  Bogus x;\n}";
        let e = import_icl(bad).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn ignores_tolerated_register_properties() {
        let src = r#"Module m {
  ScanInPort SI;
  ScanOutPort SO { Source A; }
  ScanRegister A[1:0] {
    ScanInSource SI;
    CaptureSource something;
    ResetValue 2'b00;
  }
}"#;
        let net = import_icl(src).unwrap();
        assert_eq!(net.stats().segments, 1);
    }
}
