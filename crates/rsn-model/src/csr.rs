//! Compressed-sparse-row adjacency view of a [`ScanNetwork`].
//!
//! The analysis kernels traverse the graph millions of times (one
//! reachability sweep per fault mode and direction). The nested
//! `Vec<Vec<NodeId>>` adjacency owned by [`ScanNetwork`] is convenient to
//! build but pointer-chases one heap allocation per vertex; [`Csr`] flattens
//! both directions into two `(offsets, targets)` array pairs so a traversal
//! touches exactly two contiguous slices. Build it once per analysis with
//! [`ScanNetwork::csr`] and share it across worker threads — the view is
//! immutable and [`Sync`].

use crate::ids::NodeId;
use crate::network::ScanNetwork;

/// Flattened forward + reverse adjacency of a [`ScanNetwork`].
///
/// Node and edge indices are `u32` (networks are bounded by `u32` node ids,
/// see [`NodeId`]); edge targets preserve the order of
/// [`ScanNetwork::successors`] / [`ScanNetwork::predecessors`], so for a
/// multiplexer the predecessor slice still matches the select-port order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    fwd_offsets: Vec<u32>,
    fwd_targets: Vec<u32>,
    bwd_offsets: Vec<u32>,
    bwd_targets: Vec<u32>,
}

impl Csr {
    /// Builds the view from a network's adjacency lists.
    #[must_use]
    pub fn build(net: &ScanNetwork) -> Self {
        fn flatten<'a>(
            n: usize,
            neighbors: impl Fn(NodeId) -> &'a [NodeId],
        ) -> (Vec<u32>, Vec<u32>) {
            // Pre-size both arrays: for million-node networks the doubling
            // growth of an unsized `targets` would transiently hold ~2x the
            // final edge memory, which matters for the streaming-build path.
            let total: usize = (0..n).map(|v| neighbors(NodeId::new(v)).len()).sum();
            let mut offsets = Vec::with_capacity(n + 1);
            let mut targets = Vec::with_capacity(total);
            offsets.push(0u32);
            for v in 0..n {
                for &w in neighbors(NodeId::new(v)) {
                    targets.push(w.index() as u32);
                }
                offsets.push(targets.len() as u32);
            }
            (offsets, targets)
        }
        let n = net.node_count();
        let (fwd_offsets, fwd_targets) = flatten(n, |v| net.successors(v));
        let (bwd_offsets, bwd_targets) = flatten(n, |v| net.predecessors(v));
        Self { fwd_offsets, fwd_targets, bwd_offsets, bwd_targets }
    }

    /// Number of vertices covered by the view.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.fwd_offsets.len() - 1
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.fwd_targets.len()
    }

    /// Successors of vertex `v`, as raw `u32` indices.
    #[inline]
    #[must_use]
    pub fn successors(&self, v: u32) -> &[u32] {
        &self.fwd_targets
            [self.fwd_offsets[v as usize] as usize..self.fwd_offsets[v as usize + 1] as usize]
    }

    /// Predecessors of vertex `v`, as raw `u32` indices (select-port order
    /// for multiplexers).
    #[inline]
    #[must_use]
    pub fn predecessors(&self, v: u32) -> &[u32] {
        &self.bwd_targets
            [self.bwd_offsets[v as usize] as usize..self.bwd_offsets[v as usize + 1] as usize]
    }

    /// Neighbors in the requested direction.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: u32, backward: bool) -> &[u32] {
        if backward {
            self.predecessors(v)
        } else {
            self.successors(v)
        }
    }
}

impl ScanNetwork {
    /// Builds the flattened [`Csr`] adjacency view of this network.
    ///
    /// The view is a snapshot: build it once per analysis and reuse it for
    /// every traversal (the analysis kernels in `robust-rsn` do exactly
    /// that).
    #[must_use]
    pub fn csr(&self) -> Csr {
        Csr::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::{ControlSource, Segment};
    use crate::NetworkBuilder;

    fn diamond() -> ScanNetwork {
        let mut b = NetworkBuilder::new("diamond");
        let f = b.add_fanout("f");
        let a = b.add_segment("a", Segment::new(1));
        let c = b.add_segment("c", Segment::new(2));
        let (si, so) = (b.scan_in(), b.scan_out());
        b.connect(si, f).unwrap();
        b.connect(f, a).unwrap();
        b.connect(f, c).unwrap();
        let m = b.add_mux("m", vec![a, c], ControlSource::Direct).unwrap();
        b.connect(m, so).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn csr_matches_the_nested_adjacency() {
        let net = diamond();
        let csr = net.csr();
        assert_eq!(csr.node_count(), net.node_count());
        let mut edges = 0;
        for (id, _) in net.nodes() {
            let v = id.index() as u32;
            let succs: Vec<u32> = net.successors(id).iter().map(|w| w.index() as u32).collect();
            let preds: Vec<u32> = net.predecessors(id).iter().map(|w| w.index() as u32).collect();
            assert_eq!(csr.successors(v), succs.as_slice(), "successors of {id}");
            assert_eq!(csr.predecessors(v), preds.as_slice(), "predecessors of {id}");
            assert_eq!(csr.neighbors(v, false), succs.as_slice());
            assert_eq!(csr.neighbors(v, true), preds.as_slice());
            edges += succs.len();
        }
        assert_eq!(csr.edge_count(), edges);
    }

    #[test]
    fn mux_predecessors_keep_port_order() {
        let net = diamond();
        let csr = net.csr();
        let m = net.muxes().next().unwrap();
        let ports: Vec<u32> =
            net.node(m).kind.as_mux().unwrap().inputs.iter().map(|w| w.index() as u32).collect();
        assert_eq!(csr.predecessors(m.index() as u32), ports.as_slice());
    }
}
