//! Embedded instruments accessed through the scan network.
//!
//! An instrument is attached to exactly one scan segment; reading the segment
//! observes the instrument and writing the segment controls it. Damage
//! weights for losing observability or settability are *not* stored here —
//! they belong to the criticality specification of the `robust-rsn` crate,
//! which can assign and reassign weights without rebuilding the network.

use serde::{Deserialize, Serialize};

use crate::ids::{InstrumentId, NodeId};

/// Functional class of an instrument, as motivated in §IV-A of the paper.
///
/// The class is advisory metadata: it drives the default weight assignment of
/// the criticality specification (e.g. sensors get low settability damage,
/// runtime-adaptive instruments get high settability damage).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum InstrumentKind {
    /// One of several interchangeably used sensors; low individual
    /// observability damage, near-zero settability damage.
    Sensor,
    /// Runtime-adaptive instrument (AVFS, error-rate adaption); high
    /// settability damage, low observability damage.
    RuntimeAdaptive,
    /// Built-in self-test engine; observability and settability both matter
    /// during validation.
    Bist,
    /// Debug/trace instrument used during post-silicon validation.
    Debug,
    /// Anything else.
    #[default]
    Generic,
}

/// An embedded instrument attached to a scan segment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instrument {
    name: Option<String>,
    segment: NodeId,
    kind: InstrumentKind,
}

impl Instrument {
    /// Creates an instrument attached to `segment`.
    #[must_use]
    pub fn new(segment: NodeId, kind: InstrumentKind) -> Self {
        Self { name: None, segment, kind }
    }

    /// Creates a named instrument attached to `segment`.
    #[must_use]
    pub fn named(name: impl Into<String>, segment: NodeId, kind: InstrumentKind) -> Self {
        Self { name: Some(name.into()), segment, kind }
    }

    /// The instrument's name, if it has one.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The scan segment hosting this instrument.
    #[must_use]
    pub fn segment(&self) -> NodeId {
        self.segment
    }

    /// The functional class of this instrument.
    #[must_use]
    pub fn kind(&self) -> InstrumentKind {
        self.kind
    }

    /// Returns a display label: the name if present, otherwise the id.
    #[must_use]
    pub fn label(&self, id: InstrumentId) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => id.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attaches_to_segment() {
        let inst = Instrument::new(NodeId::new(4), InstrumentKind::Sensor);
        assert_eq!(inst.segment(), NodeId::new(4));
        assert_eq!(inst.kind(), InstrumentKind::Sensor);
        assert_eq!(inst.name(), None);
    }

    #[test]
    fn named_instrument_labels_by_name() {
        let inst = Instrument::named("temp0", NodeId::new(1), InstrumentKind::Sensor);
        assert_eq!(inst.label(InstrumentId::new(0)), "temp0");
        let anon = Instrument::new(NodeId::new(1), InstrumentKind::Generic);
        assert_eq!(anon.label(InstrumentId::new(3)), "i3");
    }

    #[test]
    fn default_kind_is_generic() {
        assert_eq!(InstrumentKind::default(), InstrumentKind::Generic);
    }
}
