//! Permanent fault model for scan primitives (§IV-B).
//!
//! Two fault classes are considered, matching the paper:
//!
//! * a **broken segment** destroys the integrity of every scan path that
//!   traverses the segment;
//! * a **stuck-at multiplexer** permanently selects one input, independent of
//!   its address port, making the other branches unreachable.
//!
//! SIB faults are expressed through these two classes on the SIB's control
//! cell and bypass multiplexer ("a combination of those for a scan segment
//! and a multiplexer").

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;
use crate::network::ScanNetwork;
use crate::primitive::NodeKind;

/// The kind of a permanent fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The segment no longer shifts data; every path through it is broken.
    SegmentBroken,
    /// The multiplexer permanently selects input `port`.
    MuxStuckAt(u16),
}

/// A permanent fault at a specific scan primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fault {
    /// The faulty primitive.
    pub node: NodeId,
    /// What is wrong with it.
    pub kind: FaultKind,
}

impl Fault {
    /// A broken-segment fault at `node`.
    #[must_use]
    pub fn broken_segment(node: NodeId) -> Self {
        Self { node, kind: FaultKind::SegmentBroken }
    }

    /// A stuck-at fault forcing multiplexer `node` to select `port`.
    #[must_use]
    pub fn mux_stuck_at(node: NodeId, port: u16) -> Self {
        Self { node, kind: FaultKind::MuxStuckAt(port) }
    }

    /// Returns `true` when the fault kind is applicable to the node kind in
    /// `net` (broken segments on segments, stuck-ats on multiplexers with a
    /// valid port).
    #[must_use]
    pub fn is_applicable(&self, net: &ScanNetwork) -> bool {
        match (&net.node(self.node).kind, self.kind) {
            (NodeKind::Segment(_), FaultKind::SegmentBroken) => true,
            (NodeKind::Mux(m), FaultKind::MuxStuckAt(p)) => usize::from(p) < m.fan_in(),
            _ => false,
        }
    }
}

/// Enumerates every single fault of the paper's model in `net`: one broken
/// fault per segment and one stuck-at fault per multiplexer input.
#[must_use]
pub fn enumerate_single_faults(net: &ScanNetwork) -> Vec<Fault> {
    let mut out = Vec::new();
    for (id, node) in net.nodes() {
        match &node.kind {
            NodeKind::Segment(_) => out.push(Fault::broken_segment(id)),
            NodeKind::Mux(m) => {
                for port in 0..m.fan_in() {
                    out.push(Fault::mux_stuck_at(id, port as u16));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Structure;

    #[test]
    fn enumerates_one_fault_per_segment_and_per_mux_port() {
        let s = Structure::series(vec![
            Structure::seg("a", 2),
            Structure::parallel(
                vec![Structure::seg("b", 1), Structure::seg("c", 1), Structure::seg("d", 1)],
                "m",
            ),
        ]);
        let (net, _) = s.build("t").unwrap();
        let faults = enumerate_single_faults(&net);
        // 4 segments + 3 mux ports.
        assert_eq!(faults.len(), 7);
        assert!(faults.iter().all(|f| f.is_applicable(&net)));
    }

    #[test]
    fn applicability_rejects_mismatches() {
        let (net, _) = Structure::seg("a", 1).build("t").unwrap();
        let seg = net.segments().next().unwrap();
        assert!(Fault::broken_segment(seg).is_applicable(&net));
        assert!(!Fault::mux_stuck_at(seg, 0).is_applicable(&net));
        assert!(!Fault::broken_segment(net.scan_in()).is_applicable(&net));
    }

    #[test]
    fn stuck_port_must_be_in_range() {
        let s = Structure::parallel(vec![Structure::seg("a", 1), Structure::seg("b", 1)], "m");
        let (net, _) = s.build("t").unwrap();
        let m = net.muxes().next().unwrap();
        assert!(Fault::mux_stuck_at(m, 1).is_applicable(&net));
        assert!(!Fault::mux_stuck_at(m, 2).is_applicable(&net));
    }
}
