//! Modeling substrate for Reconfigurable Scan Networks (RSNs) as
//! standardized by IEEE Std 1687 (IJTAG) and IEEE Std 1149.1.
//!
//! An RSN accesses embedded instruments through scan segments; control
//! primitives — scan multiplexers and Segment Insertion Bits (SIBs) —
//! configure which segments lie on the active scan path between the primary
//! scan-in and scan-out ports. This crate provides:
//!
//! * the RSN **graph model** ([`ScanNetwork`], [`NetworkBuilder`]) with
//!   segments, multiplexers, fan-outs, and instruments (§III of the paper
//!   reproduced by this workspace: *Robust Reconfigurable Scan Networks*,
//!   DATE 2022);
//! * **structural descriptions** ([`Structure`]) in hierarchical
//!   series-parallel form, with a textual [`mod@format`] module;
//! * **configurations and active scan paths** ([`Config`], [`ScanPath`],
//!   [`active_path`]);
//! * a bit-level **CSU simulator** ([`Simulator`]) with permanent-fault
//!   injection ([`Fault`]);
//! * **access patterns** ([`patterns`]) to observe and control instruments.
//!
//! # Examples
//!
//! Build a network with one SIB-gated BIST register, open the SIB with real
//! scan traffic, and read the instrument:
//!
//! ```
//! use rsn_model::{patterns, AccessKind, InstrumentKind, Simulator, Structure};
//!
//! let s = Structure::series(vec![
//!     Structure::seg("head", 2),
//!     Structure::sib("s0", Structure::instrument_seg("bist", 4, InstrumentKind::Bist)),
//! ]);
//! let (net, _built) = s.build("demo")?;
//! let mut sim = Simulator::new(&net);
//! let (id, _) = net.instruments().next().expect("one instrument");
//! sim.set_instrument_data(id, &[true, true, false, true])?;
//! let pattern = patterns::pattern_for(&net, id, AccessKind::Observe)?;
//! assert_eq!(pattern.read(&mut sim)?, vec![true, true, false, true]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod csr;
pub mod error;
pub mod fault;
pub mod format;
pub mod icl;
mod ids;
mod instrument;
mod network;
pub mod path;
pub mod pattern_io;
pub mod patterns;
pub mod prelude;
mod primitive;
mod sim;
pub mod structure;

pub use csr::Csr;
pub use error::{NetworkError, SimError};
pub use fault::{enumerate_single_faults, Fault, FaultKind};
pub use ids::{InstrumentId, NodeId};
pub use instrument::{Instrument, InstrumentKind};
pub use network::{NetworkBuilder, NetworkStats, ScanNetwork};
pub use path::{active_path, active_path_with, Config, ScanPath};
pub use patterns::{AccessKind, AccessPattern};
pub use primitive::{ControlSource, Mux, Node, NodeKind, Segment};
pub use sim::Simulator;
pub use structure::{BuiltStructure, InstrumentSpec, MuxSpec, SegmentSpec, Structure};
