//! Bit-level capture–shift–update (CSU) simulator with fault injection.
//!
//! The simulator owns the register state of every scan segment, the update
//! latches driving SIB-style scan-controlled multiplexers, and the values of
//! directly controlled selects. Permanent faults ([`Fault`]) can be injected;
//! a broken segment freezes its cells and emits a constant `0`, a stuck-at
//! multiplexer ignores its address source.
//!
//! The simulator is the *operational* counterpart to the analytical
//! accessibility results of the `robust-rsn` crate: an instrument is
//! observable iff a CSU sequence exists that moves its captured data to the
//! scan-out port, and settable iff a sequence exists that moves chosen data
//! into its segment's update stage.

use crate::error::SimError;
use crate::fault::{Fault, FaultKind};
use crate::ids::{InstrumentId, NodeId};
use crate::network::ScanNetwork;
use crate::path::{active_path_with, Config, ScanPath};
use crate::primitive::{ControlSource, NodeKind};

/// Bit-level simulator for a [`ScanNetwork`].
///
/// # Examples
///
/// ```
/// use rsn_model::{Structure, Simulator};
///
/// let (net, _) = Structure::seg("c0", 4).build("demo")?;
/// let mut sim = Simulator::new(&net);
/// let path = sim.active_path()?;
/// // Shift a pattern through the single 4-bit segment.
/// let out = sim.shift(&[true, false, true, true])?;
/// assert_eq!(out, vec![false, false, false, false]); // initial contents
/// let out = sim.shift(&[false; 4])?;
/// assert_eq!(out, vec![true, false, true, true]); // first-in, first-out
/// assert_eq!(path.bit_len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    net: &'a ScanNetwork,
    /// Shift registers, indexed by node id (empty for non-segments).
    regs: Vec<Vec<bool>>,
    /// Update latches, indexed by node id (empty for non-segments).
    latches: Vec<Vec<bool>>,
    /// Select values of directly controlled multiplexers.
    direct_selects: Vec<u16>,
    /// Captured-on-next-capture instrument data, indexed by instrument id.
    instrument_inputs: Vec<Vec<bool>>,
    /// Data delivered to instruments at the last update, by instrument id.
    instrument_outputs: Vec<Vec<bool>>,
    /// Broken-segment flags by node id.
    broken: Vec<bool>,
    /// Stuck-at select overrides by node id.
    stuck: Vec<Option<u16>>,
    /// For each segment node id, the scan-controlled multiplexers whose
    /// control cell lives in that segment, as `(mux, bit)` pairs.
    control_map: Vec<Vec<(NodeId, u32)>>,
    /// Scratch buffer reused by [`Self::shift`] for run contents.
    run_buf: Vec<bool>,
}

impl<'a> Simulator<'a> {
    /// Creates a fault-free simulator with all state zeroed.
    #[must_use]
    pub fn new(net: &'a ScanNetwork) -> Self {
        let n = net.node_count();
        let mut regs = vec![Vec::new(); n];
        let mut latches = vec![Vec::new(); n];
        for (id, node) in net.nodes() {
            if let NodeKind::Segment(s) = &node.kind {
                regs[id.index()] = vec![false; s.len as usize];
                latches[id.index()] = vec![false; s.len as usize];
            }
        }
        let widths: Vec<usize> =
            net.instruments().map(|(_, i)| net.segment_len(i.segment()) as usize).collect();
        let mut control_map: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); n];
        for m in net.muxes() {
            if let Some(ControlSource::Cell { segment, bit }) =
                net.node(m).kind.as_mux().map(|x| x.control)
            {
                control_map[segment.index()].push((m, bit));
            }
        }
        Self {
            net,
            regs,
            latches,
            direct_selects: vec![0; n],
            instrument_inputs: widths.iter().map(|&w| vec![false; w]).collect(),
            instrument_outputs: widths.iter().map(|&w| vec![false; w]).collect(),
            broken: vec![false; n],
            stuck: vec![None; n],
            control_map,
            run_buf: Vec::new(),
        }
    }

    /// Returns the simulator to its power-on state: all registers, latches,
    /// direct selects, and instrument data zeroed, and all faults removed.
    ///
    /// Allocated capacity is kept, so resetting a simulator between runs is
    /// cheaper than constructing a fresh one.
    pub fn reset(&mut self) {
        for r in &mut self.regs {
            r.fill(false);
        }
        for l in &mut self.latches {
            l.fill(false);
        }
        self.direct_selects.fill(0);
        for i in &mut self.instrument_inputs {
            i.fill(false);
        }
        for o in &mut self.instrument_outputs {
            o.fill(false);
        }
        self.clear_faults();
    }

    /// The simulated network.
    #[must_use]
    pub fn network(&self) -> &'a ScanNetwork {
        self.net
    }

    /// Injects a permanent fault.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASegment`] / [`SimError::NotAMux`] when the
    /// fault kind does not match the node, and
    /// [`SimError::SelectOutOfRange`] for an out-of-range stuck port.
    pub fn inject(&mut self, fault: Fault) -> Result<(), SimError> {
        match fault.kind {
            FaultKind::SegmentBroken => {
                if !self.net.node(fault.node).kind.is_segment() {
                    return Err(SimError::NotASegment(fault.node));
                }
                self.broken[fault.node.index()] = true;
            }
            FaultKind::MuxStuckAt(p) => {
                let m =
                    self.net.node(fault.node).kind.as_mux().ok_or(SimError::NotAMux(fault.node))?;
                if usize::from(p) >= m.fan_in() {
                    return Err(SimError::SelectOutOfRange {
                        mux: fault.node,
                        select: usize::from(p),
                        inputs: m.fan_in(),
                    });
                }
                self.stuck[fault.node.index()] = Some(p);
            }
        }
        Ok(())
    }

    /// Removes all injected faults (state is kept).
    pub fn clear_faults(&mut self) {
        self.broken.fill(false);
        self.stuck.fill(None);
    }

    /// Supplies the data an instrument will present at the next capture.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownInstrument`] for an out-of-range id, and
    /// [`SimError::DataWidthMismatch`] when `data` does not exactly match the
    /// width of the instrument's segment.
    pub fn set_instrument_data(&mut self, id: InstrumentId, data: &[bool]) -> Result<(), SimError> {
        let slot =
            self.instrument_inputs.get_mut(id.index()).ok_or(SimError::UnknownInstrument(id))?;
        if data.len() != slot.len() {
            return Err(SimError::DataWidthMismatch {
                instrument: id,
                got: data.len(),
                expected: slot.len(),
            });
        }
        slot.copy_from_slice(data);
        Ok(())
    }

    /// Presets a segment's cell state — both the shift register and the
    /// update latch — directly, bypassing the scan chain.
    ///
    /// This is a white-box hook for test and validation harnesses that need a
    /// known cell state without running CSU cycles (e.g. to preset a sentinel
    /// value, or to establish a configuration's control-cell latches before a
    /// fault-injection experiment).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASegment`] for non-segments and
    /// [`SimError::ShiftLengthMismatch`] when `bits` does not match the
    /// segment length.
    pub fn load_register(&mut self, seg: NodeId, bits: &[bool]) -> Result<(), SimError> {
        if !self.net.node(seg).kind.is_segment() {
            return Err(SimError::NotASegment(seg));
        }
        let reg = &mut self.regs[seg.index()];
        if bits.len() != reg.len() {
            return Err(SimError::ShiftLengthMismatch { got: bits.len(), expected: reg.len() });
        }
        reg.copy_from_slice(bits);
        self.latches[seg.index()].copy_from_slice(bits);
        Ok(())
    }

    /// The data delivered to an instrument by the most recent update.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownInstrument`] for an out-of-range id.
    pub fn instrument_output(&self, id: InstrumentId) -> Result<&[bool], SimError> {
        self.instrument_outputs
            .get(id.index())
            .map(Vec::as_slice)
            .ok_or(SimError::UnknownInstrument(id))
    }

    /// Sets the select of a *directly controlled* multiplexer.
    ///
    /// Scan-controlled (SIB-style) multiplexers must be configured by
    /// shifting and updating their control cell; see [`Self::retarget`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotAMux`] or [`SimError::SelectOutOfRange`].
    pub fn set_direct_select(&mut self, mux: NodeId, value: u16) -> Result<(), SimError> {
        let m = self.net.node(mux).kind.as_mux().ok_or(SimError::NotAMux(mux))?;
        if usize::from(value) >= m.fan_in() {
            return Err(SimError::SelectOutOfRange {
                mux,
                select: usize::from(value),
                inputs: m.fan_in(),
            });
        }
        self.direct_selects[mux.index()] = value;
        Ok(())
    }

    /// The select value a multiplexer *effectively* applies right now,
    /// honoring stuck-at faults, direct selects, and control-cell latches.
    #[must_use]
    pub fn effective_select(&self, mux: NodeId) -> u16 {
        if let Some(p) = self.stuck[mux.index()] {
            return p;
        }
        match self.net.node(mux).kind.as_mux().map(|m| m.control) {
            Some(ControlSource::Direct) | None => self.direct_selects[mux.index()],
            Some(ControlSource::Cell { segment, bit }) => {
                u16::from(self.latches[segment.index()][bit as usize])
            }
        }
    }

    /// Traces the active scan path under the current control state.
    ///
    /// # Errors
    ///
    /// See [`active_path_with`](crate::path::active_path_with).
    pub fn active_path(&self) -> Result<ScanPath, SimError> {
        active_path_with(self.net, |m| self.effective_select(m))
    }

    /// Capture: segments on the active path reload from their instrument (if
    /// any); broken segments keep their frozen contents.
    ///
    /// # Errors
    ///
    /// Propagates path-trace errors.
    pub fn capture(&mut self) -> Result<(), SimError> {
        let path = self.active_path()?;
        for &seg in path.segments() {
            if self.broken[seg.index()] {
                continue;
            }
            if let Some(inst) = self.net.instrument_at(seg) {
                self.regs[seg.index()].copy_from_slice(&self.instrument_inputs[inst.index()]);
            }
        }
        Ok(())
    }

    /// Shifts `input` through the active path, one bit per cycle, and returns
    /// the bits observed at scan-out.
    ///
    /// Runs a full path-length shift in closed form — `O(path)` instead of
    /// `O(path²)` — by treating the chain as clean runs of cells separated by
    /// broken segments (which drop incoming data and emit a constant `0`
    /// without adding delay):
    ///
    /// - the scan-out observes the *last* clean run's old contents, last cell
    ///   first, then zeros (or the tail of `input` when nothing is broken);
    /// - the run adjacent to scan-in absorbs `input`; every other clean run
    ///   absorbs only zeros; broken segments keep their frozen contents.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ShiftLengthMismatch`] unless `input.len()` equals
    /// the active path's [`bit_len`](ScanPath::bit_len); propagates
    /// path-trace errors.
    pub fn shift(&mut self, input: &[bool]) -> Result<Vec<bool>, SimError> {
        let path = self.active_path()?;
        let n = path.bit_len();
        if input.len() != n {
            return Err(SimError::ShiftLengthMismatch { got: input.len(), expected: n });
        }
        let segs = path.segments();
        let mut out = vec![false; n];
        // Output: old contents of the clean run adjacent to scan-out, emitted
        // last cell first. If the final segment is broken the port sees only
        // zeros; if nothing is broken the whole chain is one run of length n.
        if segs.last().is_some_and(|s| !self.broken[s.index()]) {
            let mut run = std::mem::take(&mut self.run_buf);
            run.clear();
            let first_clean =
                segs.iter().rposition(|s| self.broken[s.index()]).map_or(0, |i| i + 1);
            for seg in &segs[first_clean..] {
                run.extend_from_slice(&self.regs[seg.index()]);
            }
            for (t, slot) in out.iter_mut().take(run.len()).enumerate() {
                *slot = run[run.len() - 1 - t];
            }
            self.run_buf = run;
        }
        // New state: the run adjacent to scan-in absorbs `input`; cell i of
        // that run (in path order) ends up holding input[n - 1 - i]. Every
        // other clean cell has only seen zeros; broken cells are frozen.
        let mut pos = 0;
        let mut feed = true;
        for &seg in segs {
            if self.broken[seg.index()] {
                feed = false;
                continue;
            }
            let reg = &mut self.regs[seg.index()];
            if feed {
                for (i, cell) in reg.iter_mut().enumerate() {
                    *cell = input[n - 1 - (pos + i)];
                }
                pos += reg.len();
            } else {
                reg.fill(false);
            }
        }
        Ok(out)
    }

    /// Shifts exactly `cycles` bits of `input` (which may be shorter or
    /// longer than the path) and returns the observed output bits.
    ///
    /// # Errors
    ///
    /// Propagates path-trace errors.
    pub fn shift_cycles(&mut self, input: &[bool], cycles: usize) -> Result<Vec<bool>, SimError> {
        let path = self.active_path()?;
        let mut out = Vec::with_capacity(cycles);
        for i in 0..cycles {
            let bit = input.get(i).copied().unwrap_or(false);
            out.push(self.shift_one(&path, bit));
        }
        Ok(out)
    }

    fn shift_one(&mut self, path: &ScanPath, input: bool) -> bool {
        let mut carry = input;
        for &seg in path.segments() {
            if self.broken[seg.index()] {
                // A broken segment drops incoming data and emits a constant 0.
                carry = false;
                continue;
            }
            let reg = &mut self.regs[seg.index()];
            let out = *reg.last().expect("segments have len >= 1");
            for i in (1..reg.len()).rev() {
                reg[i] = reg[i - 1];
            }
            reg[0] = carry;
            carry = out;
        }
        carry
    }

    /// Update: segments on the active path copy their shift register into the
    /// update stage, driving control cells and instrument inputs.
    ///
    /// # Errors
    ///
    /// Propagates path-trace errors.
    pub fn update(&mut self) -> Result<(), SimError> {
        let path = self.active_path()?;
        for &seg in path.segments() {
            if self.broken[seg.index()] {
                continue;
            }
            let reg = &self.regs[seg.index()];
            self.latches[seg.index()].copy_from_slice(reg);
            if let Some(inst) = self.net.instrument_at(seg) {
                self.instrument_outputs[inst.index()].copy_from_slice(reg);
            }
        }
        Ok(())
    }

    /// One full capture–shift–update cycle; returns the shifted-out bits.
    ///
    /// # Errors
    ///
    /// See [`capture`](Self::capture), [`shift`](Self::shift), and
    /// [`update`](Self::update).
    pub fn csu(&mut self, input: &[bool]) -> Result<Vec<bool>, SimError> {
        self.capture()?;
        let out = self.shift(input)?;
        self.update()?;
        Ok(out)
    }

    /// The current shift-register contents of a segment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASegment`] for non-segments.
    pub fn register(&self, seg: NodeId) -> Result<&[bool], SimError> {
        if !self.net.node(seg).kind.is_segment() {
            return Err(SimError::NotASegment(seg));
        }
        Ok(&self.regs[seg.index()])
    }

    /// The current update-latch contents of a segment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASegment`] for non-segments.
    pub fn latch(&self, seg: NodeId) -> Result<&[bool], SimError> {
        if !self.net.node(seg).kind.is_segment() {
            return Err(SimError::NotASegment(seg));
        }
        Ok(&self.latches[seg.index()])
    }

    /// Drives the network toward `config` with real CSU cycles: directly
    /// controlled selects are written immediately; scan-controlled selects
    /// are programmed by shifting their control cells, opening hierarchical
    /// SIBs level by level. Returns the number of CSU rounds used.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SelectOutOfRange`] when `config` asks a
    /// cell-controlled multiplexer (without a stuck-at override) for a select
    /// value ≥ 2 — a single-bit control cell can only ever address inputs 0
    /// and 1, so such a configuration is unrealizable by construction.
    ///
    /// Returns [`SimError::PathTraceFailed`] (wrapping the first offending
    /// multiplexer) if the configuration is unreachable — the retarget loop
    /// detects a fixed point (a CSU round that changes no effective select)
    /// and fails fast rather than burning the remaining `max_rounds`, e.g.
    /// when a fault makes a control cell unreachable.
    pub fn retarget(&mut self, config: &Config, max_rounds: usize) -> Result<usize, SimError> {
        for m in self.net.muxes() {
            if self.stuck[m.index()].is_some() {
                // A stuck-at override decides this select; whether the config
                // is met is judged by the effective-select check below.
                continue;
            }
            match self.net.node(m).kind.as_mux().map(|x| x.control) {
                // Direct selects can be applied immediately.
                Some(ControlSource::Direct) => self.set_direct_select(m, config.select(m))?,
                // A single-bit control cell only addresses inputs 0 and 1.
                Some(ControlSource::Cell { .. }) if config.select(m) >= 2 => {
                    return Err(SimError::SelectOutOfRange {
                        mux: m,
                        select: usize::from(config.select(m)),
                        inputs: 2,
                    });
                }
                Some(ControlSource::Cell { .. }) | None => {}
            }
        }
        let mut prev: Vec<u16> = self.net.muxes().map(|m| self.effective_select(m)).collect();
        let mut converged_round = None;
        for round in 0..max_rounds {
            if self.net.muxes().all(|m| self.effective_select(m) == config.select(m)) {
                converged_round = Some(round);
                break;
            }
            // Program every control cell currently on the active path.
            let path = self.active_path()?;
            let mut image = vec![false; path.bit_len()];
            for &seg in path.segments() {
                let range = path.segment_range(seg).expect("segment on path");
                image[range.clone()].copy_from_slice(&self.regs[seg.index()]);
                // Control cells hosted here get the target select bit instead.
                for &(m, bit) in &self.control_map[seg.index()] {
                    image[range.start + bit as usize] = config.select(m) != 0;
                }
            }
            let seq = path.to_shift_sequence(&image);
            self.shift(&seq)?;
            self.update()?;
            let now: Vec<u16> = self.net.muxes().map(|m| self.effective_select(m)).collect();
            if now == prev {
                // Fixed point: a round that changes no effective select can
                // never make progress, so the target is unreachable.
                break;
            }
            prev = now;
        }
        if let Some(round) = converged_round {
            return Ok(round);
        }
        if self.net.muxes().all(|m| self.effective_select(m) == config.select(m)) {
            return Ok(max_rounds);
        }
        let first_bad = self
            .net
            .muxes()
            .find(|&m| self.effective_select(m) != config.select(m))
            .expect("retarget failed, so a mismatch exists");
        Err(SimError::PathTraceFailed(first_bad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::InstrumentKind;
    use crate::structure::Structure;

    fn inst_net() -> ScanNetwork {
        let s = Structure::series(vec![
            Structure::seg("head", 2),
            Structure::instrument_seg("sensor", 4, InstrumentKind::Sensor),
            Structure::seg("tail", 3),
        ]);
        s.build("t").unwrap().0
    }

    fn find(net: &ScanNetwork, name: &str) -> NodeId {
        net.nodes().find(|(_, n)| n.name.as_deref() == Some(name)).map(|(id, _)| id).unwrap()
    }

    #[test]
    fn capture_shift_reads_instrument_data() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        sim.set_instrument_data(inst, &[true, false, true, true]).unwrap();
        let path = sim.active_path().unwrap();
        let out = sim.csu(&vec![false; path.bit_len()]).unwrap();
        let image = path.from_shift_sequence(&out);
        let sensor = find(&net, "sensor");
        let range = path.segment_range(sensor).unwrap();
        assert_eq!(&image[range], &[true, false, true, true]);
    }

    #[test]
    fn shift_update_writes_instrument_data() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        let path = sim.active_path().unwrap();
        let sensor = find(&net, "sensor");
        let range = path.segment_range(sensor).unwrap();
        let mut image = vec![false; path.bit_len()];
        image[range.start] = true;
        image[range.start + 2] = true;
        sim.shift(&path.to_shift_sequence(&image)).unwrap();
        sim.update().unwrap();
        assert_eq!(sim.instrument_output(inst).unwrap(), &[true, false, true, false]);
    }

    #[test]
    fn broken_segment_blocks_downstream_observation() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        sim.set_instrument_data(inst, &[true; 4]).unwrap();
        // Break "tail" (scan-out side of the sensor): captured data can no
        // longer reach the scan-out port.
        sim.inject(Fault::broken_segment(find(&net, "tail"))).unwrap();
        let path = sim.active_path().unwrap();
        let out = sim.csu(&vec![false; path.bit_len()]).unwrap();
        assert!(out.iter().all(|&b| !b), "broken tail must emit only zeros");
    }

    #[test]
    fn broken_segment_blocks_downstream_setting() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        // Break "head" (scan-in side): chosen data cannot reach the sensor.
        sim.inject(Fault::broken_segment(find(&net, "head"))).unwrap();
        let path = sim.active_path().unwrap();
        sim.shift(&vec![true; path.bit_len()]).unwrap();
        sim.update().unwrap();
        assert_eq!(sim.instrument_output(inst).unwrap(), &[false; 4]);
    }

    #[test]
    fn stuck_mux_forces_branch() {
        let s = Structure::parallel(vec![Structure::seg("a", 1), Structure::seg("b", 1)], "m");
        let (net, _) = s.build("t").unwrap();
        let m = net.muxes().next().unwrap();
        let mut sim = Simulator::new(&net);
        sim.inject(Fault::mux_stuck_at(m, 1)).unwrap();
        sim.set_direct_select(m, 0).unwrap();
        let path = sim.active_path().unwrap();
        assert!(path.contains(find(&net, "b")));
        assert!(!path.contains(find(&net, "a")));
    }

    #[test]
    fn retarget_opens_nested_sibs() {
        let s = Structure::sib(
            "outer",
            Structure::sib("inner", Structure::instrument_seg("d", 2, InstrumentKind::Bist)),
        );
        let (net, _) = s.build("t").unwrap();
        let outer = find(&net, "outer.mux");
        let inner = find(&net, "inner.mux");
        let mut sim = Simulator::new(&net);
        // Initially both SIBs are closed: only the outer cell is on the path.
        assert_eq!(sim.active_path().unwrap().bit_len(), 1);
        let mut cfg = Config::new(&net);
        cfg.set_select(&net, outer, 1).unwrap();
        cfg.set_select(&net, inner, 1).unwrap();
        let rounds = sim.retarget(&cfg, 8).unwrap();
        assert!(rounds >= 2, "nested SIBs need one round per level, got {rounds}");
        let path = sim.active_path().unwrap();
        assert!(path.contains(find(&net, "d")));
    }

    #[test]
    fn retarget_fails_when_sib_cell_is_broken() {
        let s = Structure::sib("s", Structure::seg("d", 2));
        let (net, _) = s.build("t").unwrap();
        let m = find(&net, "s.mux");
        let cell = find(&net, "s.cell");
        let mut sim = Simulator::new(&net);
        sim.inject(Fault::broken_segment(cell)).unwrap();
        let mut cfg = Config::new(&net);
        cfg.set_select(&net, m, 1).unwrap();
        assert!(sim.retarget(&cfg, 8).is_err());
    }

    #[test]
    fn set_instrument_data_rejects_width_mismatch() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        for bad in [&[true; 3][..], &[true; 5][..], &[][..]] {
            let err = sim.set_instrument_data(inst, bad).unwrap_err();
            assert_eq!(
                err,
                SimError::DataWidthMismatch { instrument: inst, got: bad.len(), expected: 4 }
            );
        }
        // The exact width still works.
        sim.set_instrument_data(inst, &[true, false, true, false]).unwrap();
    }

    #[test]
    fn retarget_fails_fast_on_fixed_point() {
        // A broken SIB control cell makes the target unreachable. Without
        // fixed-point detection this would spin for `max_rounds` rounds, so
        // passing usize::MAX turns a missing fail-fast into a hang.
        let s = Structure::sib("s", Structure::seg("d", 2));
        let (net, _) = s.build("t").unwrap();
        let m = find(&net, "s.mux");
        let cell = find(&net, "s.cell");
        let mut sim = Simulator::new(&net);
        sim.inject(Fault::broken_segment(cell)).unwrap();
        let mut cfg = Config::new(&net);
        cfg.set_select(&net, m, 1).unwrap();
        assert_eq!(sim.retarget(&cfg, usize::MAX), Err(SimError::PathTraceFailed(m)));
    }

    fn three_way_cell_mux() -> (ScanNetwork, NodeId) {
        use crate::network::NetworkBuilder;
        use crate::primitive::Segment;
        let mut b = NetworkBuilder::new("t");
        let cell = b.add_segment("cell", Segment::new(1));
        let f = b.add_fanout("f");
        let branches: Vec<NodeId> =
            ["a", "b", "c"].iter().map(|n| b.add_segment(*n, Segment::new(1))).collect();
        b.connect(b.scan_in(), cell).unwrap();
        b.connect(cell, f).unwrap();
        for &br in &branches {
            b.connect(f, br).unwrap();
        }
        let m = b.add_mux("m", branches, ControlSource::Cell { segment: cell, bit: 0 }).unwrap();
        b.connect(m, b.scan_out()).unwrap();
        (b.finish().unwrap(), m)
    }

    #[test]
    fn retarget_rejects_select_a_single_bit_cell_cannot_realize() {
        let (net, m) = three_way_cell_mux();
        let mut sim = Simulator::new(&net);
        let mut cfg = Config::new(&net);
        cfg.set_select(&net, m, 2).unwrap(); // valid for fan-in 3 …
        assert_eq!(
            sim.retarget(&cfg, 8), // … but a 1-bit cell only addresses 0 and 1
            Err(SimError::SelectOutOfRange { mux: m, select: 2, inputs: 2 })
        );
    }

    #[test]
    fn retarget_accepts_high_select_realized_by_stuck_at() {
        let (net, m) = three_way_cell_mux();
        let mut sim = Simulator::new(&net);
        sim.inject(Fault::mux_stuck_at(m, 2)).unwrap();
        let mut cfg = Config::new(&net);
        cfg.set_select(&net, m, 2).unwrap();
        // The stuck-at override realizes select 2, so retarget converges.
        assert_eq!(sim.retarget(&cfg, 8), Ok(0));
    }

    #[test]
    fn bulk_shift_matches_cycle_accurate_shift_under_faults() {
        let net = inst_net();
        let segs = ["head", "sensor", "tail"];
        for broken in [vec![], vec!["head"], vec!["sensor"], vec!["tail"], vec!["head", "tail"]] {
            let mut bulk = Simulator::new(&net);
            let mut slow = Simulator::new(&net);
            for &name in &broken {
                bulk.inject(Fault::broken_segment(find(&net, name))).unwrap();
                slow.inject(Fault::broken_segment(find(&net, name))).unwrap();
            }
            let inst = net.instruments().next().unwrap().0;
            bulk.set_instrument_data(inst, &[true, false, true, true]).unwrap();
            slow.set_instrument_data(inst, &[true, false, true, true]).unwrap();
            bulk.capture().unwrap();
            slow.capture().unwrap();
            let n = bulk.active_path().unwrap().bit_len();
            let input: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
            let out_bulk = bulk.shift(&input).unwrap();
            let out_slow = slow.shift_cycles(&input, n).unwrap();
            assert_eq!(out_bulk, out_slow, "outputs differ with broken {broken:?}");
            for name in segs {
                let seg = find(&net, name);
                assert_eq!(
                    bulk.register(seg).unwrap(),
                    slow.register(seg).unwrap(),
                    "register {name} differs with broken {broken:?}"
                );
            }
        }
    }

    #[test]
    fn reset_restores_power_on_state() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        sim.set_instrument_data(inst, &[true; 4]).unwrap();
        sim.inject(Fault::broken_segment(find(&net, "tail"))).unwrap();
        let path = sim.active_path().unwrap();
        sim.csu(&vec![true; path.bit_len()]).unwrap();
        sim.reset();
        let fresh = Simulator::new(&net);
        for name in ["head", "sensor", "tail"] {
            let seg = find(&net, name);
            assert_eq!(sim.register(seg).unwrap(), fresh.register(seg).unwrap());
            assert_eq!(sim.latch(seg).unwrap(), fresh.latch(seg).unwrap());
        }
        assert_eq!(sim.instrument_output(inst).unwrap(), &[false; 4]);
        // Faults are gone: the previously broken tail passes data again.
        sim.set_instrument_data(inst, &[true; 4]).unwrap();
        let out = sim.csu(&vec![false; path.bit_len()]).unwrap();
        assert!(out.iter().any(|&b| b), "reset must clear injected faults");
    }

    #[test]
    fn load_register_presets_segment_state() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let head = find(&net, "head");
        sim.load_register(head, &[true, false]).unwrap();
        assert_eq!(sim.register(head).unwrap(), &[true, false]);
        assert_eq!(sim.latch(head).unwrap(), &[true, false], "latch is preset too");
        assert_eq!(
            sim.load_register(head, &[true]),
            Err(SimError::ShiftLengthMismatch { got: 1, expected: 2 })
        );
        assert_eq!(
            sim.load_register(net.scan_in(), &[true]),
            Err(SimError::NotASegment(net.scan_in()))
        );
    }

    #[test]
    fn shift_cycles_pads_with_zeros() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let out = sim.shift_cycles(&[true], 12).unwrap();
        assert_eq!(out.len(), 12);
        // The injected one appears after a full path length of cycles.
        assert!(out[9], "bit should traverse 9 cells");
    }
}
