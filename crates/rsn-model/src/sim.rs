//! Bit-level capture–shift–update (CSU) simulator with fault injection.
//!
//! The simulator owns the register state of every scan segment, the update
//! latches driving SIB-style scan-controlled multiplexers, and the values of
//! directly controlled selects. Permanent faults ([`Fault`]) can be injected;
//! a broken segment freezes its cells and emits a constant `0`, a stuck-at
//! multiplexer ignores its address source.
//!
//! The simulator is the *operational* counterpart to the analytical
//! accessibility results of the `robust-rsn` crate: an instrument is
//! observable iff a CSU sequence exists that moves its captured data to the
//! scan-out port, and settable iff a sequence exists that moves chosen data
//! into its segment's update stage.

use crate::error::SimError;
use crate::fault::{Fault, FaultKind};
use crate::ids::{InstrumentId, NodeId};
use crate::network::ScanNetwork;
use crate::path::{active_path_with, Config, ScanPath};
use crate::primitive::{ControlSource, NodeKind};

/// Bit-level simulator for a [`ScanNetwork`].
///
/// # Examples
///
/// ```
/// use rsn_model::{Structure, Simulator};
///
/// let (net, _) = Structure::seg("c0", 4).build("demo")?;
/// let mut sim = Simulator::new(&net);
/// let path = sim.active_path()?;
/// // Shift a pattern through the single 4-bit segment.
/// let out = sim.shift(&[true, false, true, true])?;
/// assert_eq!(out, vec![false, false, false, false]); // initial contents
/// let out = sim.shift(&[false; 4])?;
/// assert_eq!(out, vec![true, false, true, true]); // first-in, first-out
/// assert_eq!(path.bit_len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    net: &'a ScanNetwork,
    /// Shift registers, indexed by node id (empty for non-segments).
    regs: Vec<Vec<bool>>,
    /// Update latches, indexed by node id (empty for non-segments).
    latches: Vec<Vec<bool>>,
    /// Select values of directly controlled multiplexers.
    direct_selects: Vec<u16>,
    /// Captured-on-next-capture instrument data, indexed by instrument id.
    instrument_inputs: Vec<Vec<bool>>,
    /// Data delivered to instruments at the last update, by instrument id.
    instrument_outputs: Vec<Vec<bool>>,
    /// Broken-segment flags by node id.
    broken: Vec<bool>,
    /// Stuck-at select overrides by node id.
    stuck: Vec<Option<u16>>,
}

impl<'a> Simulator<'a> {
    /// Creates a fault-free simulator with all state zeroed.
    #[must_use]
    pub fn new(net: &'a ScanNetwork) -> Self {
        let n = net.node_count();
        let mut regs = vec![Vec::new(); n];
        let mut latches = vec![Vec::new(); n];
        for (id, node) in net.nodes() {
            if let NodeKind::Segment(s) = &node.kind {
                regs[id.index()] = vec![false; s.len as usize];
                latches[id.index()] = vec![false; s.len as usize];
            }
        }
        let widths: Vec<usize> =
            net.instruments().map(|(_, i)| net.segment_len(i.segment()) as usize).collect();
        Self {
            net,
            regs,
            latches,
            direct_selects: vec![0; n],
            instrument_inputs: widths.iter().map(|&w| vec![false; w]).collect(),
            instrument_outputs: widths.iter().map(|&w| vec![false; w]).collect(),
            broken: vec![false; n],
            stuck: vec![None; n],
        }
    }

    /// The simulated network.
    #[must_use]
    pub fn network(&self) -> &'a ScanNetwork {
        self.net
    }

    /// Injects a permanent fault.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASegment`] / [`SimError::NotAMux`] when the
    /// fault kind does not match the node, and
    /// [`SimError::SelectOutOfRange`] for an out-of-range stuck port.
    pub fn inject(&mut self, fault: Fault) -> Result<(), SimError> {
        match fault.kind {
            FaultKind::SegmentBroken => {
                if !self.net.node(fault.node).kind.is_segment() {
                    return Err(SimError::NotASegment(fault.node));
                }
                self.broken[fault.node.index()] = true;
            }
            FaultKind::MuxStuckAt(p) => {
                let m =
                    self.net.node(fault.node).kind.as_mux().ok_or(SimError::NotAMux(fault.node))?;
                if usize::from(p) >= m.fan_in() {
                    return Err(SimError::SelectOutOfRange {
                        mux: fault.node,
                        select: usize::from(p),
                        inputs: m.fan_in(),
                    });
                }
                self.stuck[fault.node.index()] = Some(p);
            }
        }
        Ok(())
    }

    /// Removes all injected faults (state is kept).
    pub fn clear_faults(&mut self) {
        self.broken.fill(false);
        self.stuck.fill(None);
    }

    /// Supplies the data an instrument will present at the next capture.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownInstrument`] for an out-of-range id.
    pub fn set_instrument_data(&mut self, id: InstrumentId, data: &[bool]) -> Result<(), SimError> {
        let slot =
            self.instrument_inputs.get_mut(id.index()).ok_or(SimError::UnknownInstrument(id))?;
        for (dst, src) in slot.iter_mut().zip(data.iter().copied().chain(std::iter::repeat(false)))
        {
            *dst = src;
        }
        Ok(())
    }

    /// The data delivered to an instrument by the most recent update.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownInstrument`] for an out-of-range id.
    pub fn instrument_output(&self, id: InstrumentId) -> Result<&[bool], SimError> {
        self.instrument_outputs
            .get(id.index())
            .map(Vec::as_slice)
            .ok_or(SimError::UnknownInstrument(id))
    }

    /// Sets the select of a *directly controlled* multiplexer.
    ///
    /// Scan-controlled (SIB-style) multiplexers must be configured by
    /// shifting and updating their control cell; see [`Self::retarget`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotAMux`] or [`SimError::SelectOutOfRange`].
    pub fn set_direct_select(&mut self, mux: NodeId, value: u16) -> Result<(), SimError> {
        let m = self.net.node(mux).kind.as_mux().ok_or(SimError::NotAMux(mux))?;
        if usize::from(value) >= m.fan_in() {
            return Err(SimError::SelectOutOfRange {
                mux,
                select: usize::from(value),
                inputs: m.fan_in(),
            });
        }
        self.direct_selects[mux.index()] = value;
        Ok(())
    }

    /// The select value a multiplexer *effectively* applies right now,
    /// honoring stuck-at faults, direct selects, and control-cell latches.
    #[must_use]
    pub fn effective_select(&self, mux: NodeId) -> u16 {
        if let Some(p) = self.stuck[mux.index()] {
            return p;
        }
        match self.net.node(mux).kind.as_mux().map(|m| m.control) {
            Some(ControlSource::Direct) | None => self.direct_selects[mux.index()],
            Some(ControlSource::Cell { segment, bit }) => {
                u16::from(self.latches[segment.index()][bit as usize])
            }
        }
    }

    /// Traces the active scan path under the current control state.
    ///
    /// # Errors
    ///
    /// See [`active_path_with`](crate::path::active_path_with).
    pub fn active_path(&self) -> Result<ScanPath, SimError> {
        active_path_with(self.net, |m| self.effective_select(m))
    }

    /// Capture: segments on the active path reload from their instrument (if
    /// any); broken segments keep their frozen contents.
    ///
    /// # Errors
    ///
    /// Propagates path-trace errors.
    pub fn capture(&mut self) -> Result<(), SimError> {
        let path = self.active_path()?;
        for &seg in path.segments() {
            if self.broken[seg.index()] {
                continue;
            }
            if let Some(inst) = self.net.instrument_at(seg) {
                let data = self.instrument_inputs[inst.index()].clone();
                self.regs[seg.index()].copy_from_slice(&data);
            }
        }
        Ok(())
    }

    /// Shifts `input` through the active path, one bit per cycle, and returns
    /// the bits observed at scan-out.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ShiftLengthMismatch`] unless `input.len()` equals
    /// the active path's [`bit_len`](ScanPath::bit_len); propagates
    /// path-trace errors.
    pub fn shift(&mut self, input: &[bool]) -> Result<Vec<bool>, SimError> {
        let path = self.active_path()?;
        if input.len() != path.bit_len() {
            return Err(SimError::ShiftLengthMismatch {
                got: input.len(),
                expected: path.bit_len(),
            });
        }
        let mut out = Vec::with_capacity(input.len());
        for &bit in input {
            out.push(self.shift_one(&path, bit));
        }
        Ok(out)
    }

    /// Shifts exactly `cycles` bits of `input` (which may be shorter or
    /// longer than the path) and returns the observed output bits.
    ///
    /// # Errors
    ///
    /// Propagates path-trace errors.
    pub fn shift_cycles(&mut self, input: &[bool], cycles: usize) -> Result<Vec<bool>, SimError> {
        let path = self.active_path()?;
        let mut out = Vec::with_capacity(cycles);
        for i in 0..cycles {
            let bit = input.get(i).copied().unwrap_or(false);
            out.push(self.shift_one(&path, bit));
        }
        Ok(out)
    }

    fn shift_one(&mut self, path: &ScanPath, input: bool) -> bool {
        let mut carry = input;
        for &seg in path.segments() {
            if self.broken[seg.index()] {
                // A broken segment drops incoming data and emits a constant 0.
                carry = false;
                continue;
            }
            let reg = &mut self.regs[seg.index()];
            let out = *reg.last().expect("segments have len >= 1");
            for i in (1..reg.len()).rev() {
                reg[i] = reg[i - 1];
            }
            reg[0] = carry;
            carry = out;
        }
        carry
    }

    /// Update: segments on the active path copy their shift register into the
    /// update stage, driving control cells and instrument inputs.
    ///
    /// # Errors
    ///
    /// Propagates path-trace errors.
    pub fn update(&mut self) -> Result<(), SimError> {
        let path = self.active_path()?;
        for &seg in path.segments() {
            if self.broken[seg.index()] {
                continue;
            }
            let reg = self.regs[seg.index()].clone();
            self.latches[seg.index()].copy_from_slice(&reg);
            if let Some(inst) = self.net.instrument_at(seg) {
                self.instrument_outputs[inst.index()].copy_from_slice(&reg);
            }
        }
        Ok(())
    }

    /// One full capture–shift–update cycle; returns the shifted-out bits.
    ///
    /// # Errors
    ///
    /// See [`capture`](Self::capture), [`shift`](Self::shift), and
    /// [`update`](Self::update).
    pub fn csu(&mut self, input: &[bool]) -> Result<Vec<bool>, SimError> {
        self.capture()?;
        let out = self.shift(input)?;
        self.update()?;
        Ok(out)
    }

    /// The current shift-register contents of a segment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASegment`] for non-segments.
    pub fn register(&self, seg: NodeId) -> Result<&[bool], SimError> {
        if !self.net.node(seg).kind.is_segment() {
            return Err(SimError::NotASegment(seg));
        }
        Ok(&self.regs[seg.index()])
    }

    /// The current update-latch contents of a segment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASegment`] for non-segments.
    pub fn latch(&self, seg: NodeId) -> Result<&[bool], SimError> {
        if !self.net.node(seg).kind.is_segment() {
            return Err(SimError::NotASegment(seg));
        }
        Ok(&self.latches[seg.index()])
    }

    /// Drives the network toward `config` with real CSU cycles: directly
    /// controlled selects are written immediately; scan-controlled selects
    /// are programmed by shifting their control cells, opening hierarchical
    /// SIBs level by level. Returns the number of CSU rounds used.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PathTraceFailed`] (wrapping the first offending
    /// multiplexer) if the configuration is not reached within `max_rounds`
    /// rounds — e.g. because a fault makes a control cell unreachable.
    pub fn retarget(&mut self, config: &Config, max_rounds: usize) -> Result<usize, SimError> {
        // Direct selects can be applied immediately.
        for m in self.net.muxes() {
            if let Some(mux) = self.net.node(m).kind.as_mux() {
                if mux.control == ControlSource::Direct {
                    self.set_direct_select(m, config.select(m))?;
                }
            }
        }
        for round in 0..max_rounds {
            let mismatch = self.net.muxes().find(|&m| self.effective_select(m) != config.select(m));
            let Some(first_bad) = mismatch else {
                return Ok(round);
            };
            // Program every control cell currently on the active path.
            let path = self.active_path()?;
            let mut image = vec![false; path.bit_len()];
            for &seg in path.segments() {
                let range = path.segment_range(seg).expect("segment on path");
                let current = &self.regs[seg.index()];
                image[range.clone()].copy_from_slice(current);
                // If this segment controls a multiplexer, write the target
                // select bit instead.
                for m in self.net.muxes() {
                    if let Some(ControlSource::Cell { segment, bit }) =
                        self.net.node(m).kind.as_mux().map(|x| x.control)
                    {
                        if segment == seg {
                            image[range.start + bit as usize] = config.select(m) != 0;
                        }
                    }
                }
            }
            let seq = path.to_shift_sequence(&image);
            self.shift(&seq)?;
            self.update()?;
            // No progress is detectable only at the round limit; loop on.
            let _ = first_bad;
        }
        let first_bad = self
            .net
            .muxes()
            .find(|&m| self.effective_select(m) != config.select(m))
            .expect("retarget failed, so a mismatch exists");
        Err(SimError::PathTraceFailed(first_bad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::InstrumentKind;
    use crate::structure::Structure;

    fn inst_net() -> ScanNetwork {
        let s = Structure::series(vec![
            Structure::seg("head", 2),
            Structure::instrument_seg("sensor", 4, InstrumentKind::Sensor),
            Structure::seg("tail", 3),
        ]);
        s.build("t").unwrap().0
    }

    fn find(net: &ScanNetwork, name: &str) -> NodeId {
        net.nodes().find(|(_, n)| n.name.as_deref() == Some(name)).map(|(id, _)| id).unwrap()
    }

    #[test]
    fn capture_shift_reads_instrument_data() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        sim.set_instrument_data(inst, &[true, false, true, true]).unwrap();
        let path = sim.active_path().unwrap();
        let out = sim.csu(&vec![false; path.bit_len()]).unwrap();
        let image = path.from_shift_sequence(&out);
        let sensor = find(&net, "sensor");
        let range = path.segment_range(sensor).unwrap();
        assert_eq!(&image[range], &[true, false, true, true]);
    }

    #[test]
    fn shift_update_writes_instrument_data() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        let path = sim.active_path().unwrap();
        let sensor = find(&net, "sensor");
        let range = path.segment_range(sensor).unwrap();
        let mut image = vec![false; path.bit_len()];
        image[range.start] = true;
        image[range.start + 2] = true;
        sim.shift(&path.to_shift_sequence(&image)).unwrap();
        sim.update().unwrap();
        assert_eq!(sim.instrument_output(inst).unwrap(), &[true, false, true, false]);
    }

    #[test]
    fn broken_segment_blocks_downstream_observation() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        sim.set_instrument_data(inst, &[true; 4]).unwrap();
        // Break "tail" (scan-out side of the sensor): captured data can no
        // longer reach the scan-out port.
        sim.inject(Fault::broken_segment(find(&net, "tail"))).unwrap();
        let path = sim.active_path().unwrap();
        let out = sim.csu(&vec![false; path.bit_len()]).unwrap();
        assert!(out.iter().all(|&b| !b), "broken tail must emit only zeros");
    }

    #[test]
    fn broken_segment_blocks_downstream_setting() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let inst = net.instruments().next().unwrap().0;
        // Break "head" (scan-in side): chosen data cannot reach the sensor.
        sim.inject(Fault::broken_segment(find(&net, "head"))).unwrap();
        let path = sim.active_path().unwrap();
        sim.shift(&vec![true; path.bit_len()]).unwrap();
        sim.update().unwrap();
        assert_eq!(sim.instrument_output(inst).unwrap(), &[false; 4]);
    }

    #[test]
    fn stuck_mux_forces_branch() {
        let s = Structure::parallel(vec![Structure::seg("a", 1), Structure::seg("b", 1)], "m");
        let (net, _) = s.build("t").unwrap();
        let m = net.muxes().next().unwrap();
        let mut sim = Simulator::new(&net);
        sim.inject(Fault::mux_stuck_at(m, 1)).unwrap();
        sim.set_direct_select(m, 0).unwrap();
        let path = sim.active_path().unwrap();
        assert!(path.contains(find(&net, "b")));
        assert!(!path.contains(find(&net, "a")));
    }

    #[test]
    fn retarget_opens_nested_sibs() {
        let s = Structure::sib(
            "outer",
            Structure::sib("inner", Structure::instrument_seg("d", 2, InstrumentKind::Bist)),
        );
        let (net, _) = s.build("t").unwrap();
        let outer = find(&net, "outer.mux");
        let inner = find(&net, "inner.mux");
        let mut sim = Simulator::new(&net);
        // Initially both SIBs are closed: only the outer cell is on the path.
        assert_eq!(sim.active_path().unwrap().bit_len(), 1);
        let mut cfg = Config::new(&net);
        cfg.set_select(&net, outer, 1).unwrap();
        cfg.set_select(&net, inner, 1).unwrap();
        let rounds = sim.retarget(&cfg, 8).unwrap();
        assert!(rounds >= 2, "nested SIBs need one round per level, got {rounds}");
        let path = sim.active_path().unwrap();
        assert!(path.contains(find(&net, "d")));
    }

    #[test]
    fn retarget_fails_when_sib_cell_is_broken() {
        let s = Structure::sib("s", Structure::seg("d", 2));
        let (net, _) = s.build("t").unwrap();
        let m = find(&net, "s.mux");
        let cell = find(&net, "s.cell");
        let mut sim = Simulator::new(&net);
        sim.inject(Fault::broken_segment(cell)).unwrap();
        let mut cfg = Config::new(&net);
        cfg.set_select(&net, m, 1).unwrap();
        assert!(sim.retarget(&cfg, 8).is_err());
    }

    #[test]
    fn shift_cycles_pads_with_zeros() {
        let net = inst_net();
        let mut sim = Simulator::new(&net);
        let out = sim.shift_cycles(&[true], 12).unwrap();
        assert_eq!(out.len(), 12);
        // The injected one appears after a full path length of cycles.
        assert!(out[9], "bit should traverse 9 cells");
    }
}
