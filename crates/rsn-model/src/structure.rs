//! Structural (series-parallel) network descriptions.
//!
//! A [`Structure`] describes an RSN as a composition of segments, series
//! chains, multiplexed parallel sections, and SIBs — the hierarchical
//! series-parallel form of §III (Definition 1). Building a structure yields
//! both the flat [`ScanNetwork`] graph and a [`BuiltStructure`] that mirrors
//! the composition with concrete node ids, from which the `rsn-sp` crate
//! derives the binary decomposition tree without re-running SP recognition.

use serde::{Deserialize, Serialize};

use crate::error::NetworkError;
use crate::ids::NodeId;
use crate::instrument::InstrumentKind;
use crate::network::{NetworkBuilder, ScanNetwork};
use crate::primitive::{ControlSource, Segment};

/// Specification of one scan segment inside a [`Structure`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSpec {
    /// Optional segment name.
    pub name: Option<String>,
    /// Length in scan cells (≥ 1).
    pub len: u32,
    /// Instrument hosted by the segment, if any.
    pub instrument: Option<InstrumentSpec>,
}

/// Specification of an instrument inside a [`SegmentSpec`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentSpec {
    /// Optional instrument name (defaults to the segment name).
    pub name: Option<String>,
    /// Functional class used by the default weight assignment.
    pub kind: InstrumentKind,
}

/// Specification of the multiplexer closing a parallel section.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxSpec {
    /// Optional multiplexer name.
    pub name: Option<String>,
}

impl MuxSpec {
    /// Creates a named multiplexer spec.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        Self { name: Some(name.into()) }
    }

    /// Creates an anonymous multiplexer spec.
    #[must_use]
    pub fn anon() -> Self {
        Self { name: None }
    }
}

/// A hierarchical series-parallel description of an RSN.
///
/// # Examples
///
/// Figure 1 of the paper contains (among others) a segment in series with a
/// two-branch multiplexer section:
///
/// ```
/// use rsn_model::Structure;
///
/// let s = Structure::series(vec![
///     Structure::seg("c0", 4),
///     Structure::parallel(vec![Structure::seg("c1", 2), Structure::seg("c2", 2)], "m0"),
/// ]);
/// let (net, _built) = s.build("example")?;
/// assert_eq!(net.stats().segments, 3);
/// assert_eq!(net.stats().muxes, 1);
/// # Ok::<(), rsn_model::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Structure {
    /// A single scan segment.
    Segment(SegmentSpec),
    /// A pure bypass wire (no scan cells). Only meaningful as a parallel
    /// branch.
    Wire,
    /// Components traversed in scan order (scan-in side first).
    Series(Vec<Structure>),
    /// Alternative branches joined by a scan multiplexer; branch `k` is
    /// selected by address value `k`.
    Parallel {
        /// The alternative branches in select order.
        branches: Vec<Structure>,
        /// The closing multiplexer.
        mux: MuxSpec,
    },
    /// A Segment Insertion Bit: a 1-bit control cell followed by a bypassable
    /// sub-network. Select 0 bypasses, select 1 includes the sub-network.
    Sib {
        /// Base name for the generated cell and multiplexer.
        name: Option<String>,
        /// The gated sub-network.
        inner: Box<Structure>,
    },
}

impl Structure {
    /// A named segment of `len` cells without an instrument.
    #[must_use]
    pub fn seg(name: impl Into<String>, len: u32) -> Self {
        Self::Segment(SegmentSpec { name: Some(name.into()), len, instrument: None })
    }

    /// An anonymous segment of `len` cells without an instrument.
    #[must_use]
    pub fn anon_seg(len: u32) -> Self {
        Self::Segment(SegmentSpec { name: None, len, instrument: None })
    }

    /// A named segment hosting an instrument of the given kind.
    #[must_use]
    pub fn instrument_seg(name: impl Into<String>, len: u32, kind: InstrumentKind) -> Self {
        let name = name.into();
        Self::Segment(SegmentSpec {
            name: Some(name.clone()),
            len,
            instrument: Some(InstrumentSpec { name: Some(name), kind }),
        })
    }

    /// A series composition.
    #[must_use]
    pub fn series(parts: Vec<Structure>) -> Self {
        Self::Series(parts)
    }

    /// A parallel composition closed by a named multiplexer.
    #[must_use]
    pub fn parallel(branches: Vec<Structure>, mux_name: impl Into<String>) -> Self {
        Self::Parallel { branches, mux: MuxSpec::named(mux_name) }
    }

    /// A SIB gating `inner`.
    #[must_use]
    pub fn sib(name: impl Into<String>, inner: Structure) -> Self {
        Self::Sib { name: Some(name.into()), inner: Box::new(inner) }
    }

    /// Visits every node of the structure tree with an explicit work list
    /// (pre-order; sibling order unspecified), so arbitrarily deep nestings —
    /// the giant benchmark generators emit SIB towers 10⁵ levels deep —
    /// cannot overflow the call stack.
    fn for_each_node<'a>(&'a self, mut f: impl FnMut(&'a Self)) {
        let mut stack = vec![self];
        while let Some(s) = stack.pop() {
            f(s);
            match s {
                Self::Series(parts) => stack.extend(parts.iter()),
                Self::Parallel { branches, .. } => stack.extend(branches.iter()),
                Self::Sib { inner, .. } => stack.push(inner),
                Self::Segment(_) | Self::Wire => {}
            }
        }
    }

    /// Number of scan segments this structure will produce (SIB cells count).
    #[must_use]
    pub fn count_segments(&self) -> usize {
        let mut n = 0usize;
        self.for_each_node(|s| n += usize::from(matches!(s, Self::Segment(_) | Self::Sib { .. })));
        n
    }

    /// Number of scan multiplexers this structure will produce.
    #[must_use]
    pub fn count_muxes(&self) -> usize {
        let mut n = 0usize;
        self.for_each_node(|s| {
            n += usize::from(matches!(s, Self::Parallel { .. } | Self::Sib { .. }));
        });
        n
    }

    /// Number of instruments this structure will produce.
    #[must_use]
    pub fn count_instruments(&self) -> usize {
        let mut n = 0usize;
        self.for_each_node(|s| {
            n += usize::from(matches!(s, Self::Segment(spec) if spec.instrument.is_some()));
        });
        n
    }

    /// Builds the flat network graph and the id-annotated composition.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] if the composition is malformed: a parallel
    /// section with fewer than two branches, more than one bypass wire in one
    /// section, or any graph invariant violation found by validation.
    pub fn build(
        &self,
        name: impl Into<String>,
    ) -> Result<(ScanNetwork, BuiltStructure), NetworkError> {
        let mut ctx = BuildCtx { b: NetworkBuilder::new(name), fresh: 0 };
        let (ends, built) = ctx.emit(self)?;
        let (si, so) = (ctx.b.scan_in(), ctx.b.scan_out());
        match ends {
            Some((entry, exit)) => {
                ctx.b.connect(si, entry)?;
                ctx.b.connect(exit, so)?;
            }
            None => ctx.b.connect(si, so)?,
        }
        Ok((ctx.b.finish()?, built))
    }
}

/// A [`Structure`] whose components carry the node ids assigned during
/// [`Structure::build`]. SIBs are desugared into their series/parallel form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BuiltStructure {
    /// A scan segment.
    Segment(NodeId),
    /// A bypass wire.
    Wire,
    /// Series composition in scan order.
    Series(Vec<BuiltStructure>),
    /// Parallel branches (in select order) closed by the multiplexer.
    Parallel {
        /// Branch compositions; index = select value.
        branches: Vec<BuiltStructure>,
        /// The closing multiplexer.
        mux: NodeId,
    },
}

struct BuildCtx {
    b: NetworkBuilder,
    fresh: u32,
}

type Endpoints = Option<(NodeId, NodeId)>;

impl BuildCtx {
    fn fresh_name(&mut self, prefix: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("_{prefix}{n}")
    }

    /// Emits nodes for `root`; returns the (entry, exit) pair (`None` =
    /// wire).
    ///
    /// Implemented with an explicit continuation stack rather than call-stack
    /// recursion so that building the 10⁵-level-deep SIB towers of the giant
    /// benchmark generators cannot overflow the stack. The frames replay the
    /// former recursive evaluation order exactly: node ids and connection
    /// order are bit-identical to what the recursive implementation produced.
    fn emit(&mut self, root: &Structure) -> Result<(Endpoints, BuiltStructure), NetworkError> {
        enum Frame<'a> {
            /// A series composition with parts still to emit.
            Series {
                iter: std::slice::Iter<'a, Structure>,
                built: Vec<BuiltStructure>,
                entry: Option<NodeId>,
                exit: Option<NodeId>,
            },
            /// A parallel section: fan-out already emitted, branches pending.
            Parallel {
                iter: std::slice::Iter<'a, Structure>,
                mux: &'a MuxSpec,
                fanout: NodeId,
                inputs: Vec<NodeId>,
                built: Vec<BuiltStructure>,
                wires: usize,
            },
            /// A SIB: cell and fan-out already emitted, inner pending.
            Sib { base: String, cell: NodeId, fanout: NodeId },
        }

        let mut frames: Vec<Frame> = Vec::new();
        // The next structure to descend into; `None` while a completed child
        // result (`done`) is being folded into its parent frame.
        let mut pending: Option<&Structure> = Some(root);
        let mut done: Option<(Endpoints, BuiltStructure)> = None;
        loop {
            while let Some(s) = pending.take() {
                match s {
                    Structure::Segment(spec) => {
                        let seg = Segment::new(spec.len);
                        let id = match &spec.name {
                            Some(n) => self.b.add_segment(n.clone(), seg),
                            None => self.b.add_anon_segment(seg),
                        };
                        if let Some(inst) = &spec.instrument {
                            match inst.name.clone().or_else(|| spec.name.clone()) {
                                Some(name) => self.b.add_instrument(name, id, inst.kind)?,
                                None => self.b.add_anon_instrument(id, inst.kind)?,
                            };
                        }
                        done = Some((Some((id, id)), BuiltStructure::Segment(id)));
                    }
                    Structure::Wire => done = Some((None, BuiltStructure::Wire)),
                    Structure::Series(parts) => frames.push(Frame::Series {
                        iter: parts.iter(),
                        built: Vec::with_capacity(parts.len()),
                        entry: None,
                        exit: None,
                    }),
                    Structure::Parallel { branches, mux } => {
                        if branches.len() < 2 {
                            // A parallel section needs a real choice;
                            // surfaced as a too-few-inputs error on a
                            // placeholder id.
                            return Err(NetworkError::TooFewMuxInputs(NodeId::new(
                                self.b.node_count(),
                            )));
                        }
                        let fname = self.fresh_name("fan");
                        let fanout = self.b.add_fanout(fname);
                        frames.push(Frame::Parallel {
                            iter: branches.iter(),
                            mux,
                            fanout,
                            inputs: Vec::with_capacity(branches.len()),
                            built: Vec::with_capacity(branches.len()),
                            wires: 0,
                        });
                    }
                    Structure::Sib { name, inner } => {
                        let base = name.clone().unwrap_or_else(|| self.fresh_name("sib"));
                        let cell = self.b.add_segment(format!("{base}.cell"), Segment::sib_cell());
                        let fanout = self.b.add_fanout(format!("{base}.fan"));
                        self.b.connect(cell, fanout)?;
                        frames.push(Frame::Sib { base, cell, fanout });
                        pending = Some(inner);
                    }
                }
            }
            // Fold the completed child into the innermost open frame and
            // advance to that frame's next child.
            let Some(top) = frames.last_mut() else {
                return Ok(done.take().expect("the root structure emits a result"));
            };
            match top {
                Frame::Series { iter, built, entry, exit } => {
                    if let Some((ends, bs)) = done.take() {
                        built.push(bs);
                        if let Some((e, x)) = ends {
                            match *exit {
                                Some(prev) => self.b.connect(prev, e)?,
                                None => *entry = Some(e),
                            }
                            *exit = Some(x);
                        }
                    }
                    pending = iter.next();
                }
                Frame::Parallel { iter, fanout, inputs, built, wires, .. } => {
                    if let Some((ends, bs)) = done.take() {
                        built.push(bs);
                        match ends {
                            Some((e, x)) => {
                                self.b.connect(*fanout, e)?;
                                inputs.push(x);
                            }
                            None => {
                                *wires += 1;
                                if *wires > 1 {
                                    return Err(NetworkError::DuplicateWire(*fanout));
                                }
                                inputs.push(*fanout);
                            }
                        }
                    }
                    pending = iter.next();
                }
                // A SIB has exactly one child; it closes below.
                Frame::Sib { .. } => {}
            }
            if pending.is_some() {
                continue;
            }
            // Frame exhausted: close it and hand its result to the parent.
            match frames.pop().expect("an open frame was just inspected") {
                Frame::Series { built, entry, exit, .. } => {
                    let ends = entry.map(|e| (e, exit.expect("exit set with entry")));
                    done = Some((ends, BuiltStructure::Series(built)));
                }
                Frame::Parallel { mux, fanout, inputs, built, .. } => {
                    let mname = match &mux.name {
                        Some(n) => n.clone(),
                        None => self.fresh_name("mux"),
                    };
                    let m = self.b.add_mux(mname, inputs, ControlSource::Direct)?;
                    done = Some((
                        Some((fanout, m)),
                        BuiltStructure::Parallel { branches: built, mux: m },
                    ));
                }
                Frame::Sib { base, cell, fanout } => {
                    let (ends, inner_built) = done.take().expect("a SIB inner emits a result");
                    let inner_exit = match ends {
                        Some((e, x)) => {
                            self.b.connect(fanout, e)?;
                            x
                        }
                        // A SIB around a wire degenerates to cell + mux with
                        // two wire inputs, which is ill-formed.
                        None => return Err(NetworkError::DuplicateWire(fanout)),
                    };
                    let m = self.b.add_mux(
                        format!("{base}.mux"),
                        vec![fanout, inner_exit],
                        ControlSource::Cell { segment: cell, bit: 0 },
                    )?;
                    let built = BuiltStructure::Series(vec![
                        BuiltStructure::Segment(cell),
                        BuiltStructure::Parallel {
                            branches: vec![BuiltStructure::Wire, inner_built],
                            mux: m,
                        },
                    ]);
                    done = Some((Some((cell, m)), built));
                }
            }
        }
    }
}

impl BuiltStructure {
    /// Iterates over all segment ids in scan order (scan-in side first).
    #[must_use]
    pub fn segments_in_order(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_segments(&mut out);
        out
    }

    fn collect_segments(&self, out: &mut Vec<NodeId>) {
        // Iterative depth-first walk; children are pushed in reverse so they
        // pop in scan order. Deep trees (desugared SIB towers) must not
        // recurse on the call stack.
        let mut stack = vec![self];
        while let Some(s) = stack.pop() {
            match s {
                Self::Segment(id) => out.push(*id),
                Self::Wire => {}
                Self::Series(parts) => stack.extend(parts.iter().rev()),
                Self::Parallel { branches, .. } => stack.extend(branches.iter().rev()),
            }
        }
    }
}

/// Drops a deep structure without call-stack recursion.
///
/// The derived (recursive) drop glue overflows the stack on the 10⁵-level
/// SIB towers the giant benchmark generators produce, so both structure
/// enums drain their children into a flat work list instead. Each popped
/// node runs this impl again, but with its children already removed it
/// terminates in O(1).
impl Drop for Structure {
    fn drop(&mut self) {
        let mut stack: Vec<Structure> = Vec::new();
        let drain = |s: &mut Structure, stack: &mut Vec<Structure>| match s {
            Structure::Series(parts) => stack.append(parts),
            Structure::Parallel { branches, .. } => stack.append(branches),
            Structure::Sib { inner, .. } => {
                stack.push(std::mem::replace(&mut **inner, Structure::Wire));
            }
            Structure::Segment(_) | Structure::Wire => {}
        };
        drain(self, &mut stack);
        while let Some(mut s) = stack.pop() {
            drain(&mut s, &mut stack);
        }
    }
}

/// See [`Structure`]'s `Drop`: identical child-draining scheme.
impl Drop for BuiltStructure {
    fn drop(&mut self) {
        let mut stack: Vec<BuiltStructure> = Vec::new();
        let drain = |s: &mut BuiltStructure, stack: &mut Vec<BuiltStructure>| match s {
            BuiltStructure::Series(parts) => stack.append(parts),
            BuiltStructure::Parallel { branches, .. } => stack.append(branches),
            BuiltStructure::Segment(_) | BuiltStructure::Wire => {}
        };
        drain(self, &mut stack);
        while let Some(mut s) = stack.pop() {
            drain(&mut s, &mut stack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RSN of Fig. 1: segments c0..c4, muxes m0..m2 (approximated from
    /// the paper's description: m1/m2 nested under one branch of m0).
    pub(crate) fn fig1() -> Structure {
        Structure::series(vec![
            Structure::seg("c0", 2),
            Structure::parallel(
                vec![
                    Structure::series(vec![
                        Structure::seg("c1", 2),
                        Structure::parallel(vec![Structure::seg("c2", 2), Structure::Wire], "m1"),
                    ]),
                    Structure::seg("c3", 2),
                ],
                "m0",
            ),
            Structure::seg("c4", 2),
        ])
    }

    #[test]
    fn builds_fig1_like_network() {
        let s = fig1();
        assert_eq!(s.count_segments(), 5);
        assert_eq!(s.count_muxes(), 2);
        let (net, built) = s.build("fig1").unwrap();
        let stats = net.stats();
        assert_eq!(stats.segments, 5);
        assert_eq!(stats.muxes, 2);
        assert_eq!(built.segments_in_order().len(), 5);
    }

    #[test]
    fn sib_desugars_to_cell_plus_mux() {
        let s = Structure::sib("s1", Structure::seg("d0", 6));
        assert_eq!(s.count_segments(), 2); // cell + d0
        assert_eq!(s.count_muxes(), 1);
        let (net, built) = s.build("sib").unwrap();
        assert_eq!(net.stats().segments, 2);
        assert_eq!(net.stats().muxes, 1);
        // Select 0 must be the bypass: mux input 0 is the fan-out.
        let mux = net.muxes().next().unwrap();
        let m = net.node(mux).kind.as_mux().unwrap().clone();
        assert!(matches!(net.node(m.inputs[0]).kind, crate::NodeKind::Fanout));
        match &built {
            BuiltStructure::Series(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], BuiltStructure::Segment(_)));
                match &parts[1] {
                    BuiltStructure::Parallel { branches, .. } => {
                        assert!(matches!(branches[0], BuiltStructure::Wire));
                    }
                    other => panic!("expected parallel, got {other:?}"),
                }
            }
            other => panic!("expected series, got {other:?}"),
        }
    }

    #[test]
    fn rejects_single_branch_parallel() {
        let s = Structure::parallel(vec![Structure::seg("a", 1)], "m");
        assert!(s.build("bad").is_err());
    }

    #[test]
    fn rejects_two_wires_in_one_parallel() {
        let s = Structure::parallel(vec![Structure::Wire, Structure::Wire], "m");
        assert!(matches!(s.build("bad"), Err(NetworkError::DuplicateWire(_))));
    }

    #[test]
    fn wire_in_series_is_transparent() {
        let s = Structure::series(vec![
            Structure::Wire,
            Structure::seg("a", 1),
            Structure::Wire,
            Structure::seg("b", 1),
        ]);
        let (net, _) = s.build("wires").unwrap();
        assert_eq!(net.stats().segments, 2);
    }

    #[test]
    fn nary_parallel_orders_inputs_by_branch() {
        let s = Structure::parallel(
            vec![Structure::seg("a", 1), Structure::seg("b", 1), Structure::seg("c", 1)],
            "m",
        );
        let (net, _) = s.build("nary").unwrap();
        let m = net.muxes().next().unwrap();
        let inputs = &net.node(m).kind.as_mux().unwrap().inputs;
        let names: Vec<_> = inputs.iter().map(|&i| net.node(i).name.clone().unwrap()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn segments_in_order_is_scan_order() {
        let (net, built) = fig1().build("fig1").unwrap();
        let names: Vec<_> =
            built.segments_in_order().iter().map(|&s| net.node(s).name.clone().unwrap()).collect();
        assert_eq!(names, ["c0", "c1", "c2", "c3", "c4"]);
    }

    #[test]
    fn deep_sib_tower_builds_without_call_stack_recursion() {
        // Counting, emission, segment collection, and drop all walk the tree
        // with explicit work lists; the former recursive versions overflow
        // the test-thread stack well before this depth.
        const DEPTH: usize = 100_000;
        let mut s = Structure::seg("leaf", 1);
        for _ in 0..DEPTH {
            s = Structure::Sib { name: None, inner: Box::new(s) };
        }
        assert_eq!(s.count_segments(), DEPTH + 1);
        assert_eq!(s.count_muxes(), DEPTH);
        assert_eq!(s.count_instruments(), 0);
        let (net, built) = s.build("tower").unwrap();
        assert_eq!(net.stats().segments, DEPTH + 1);
        assert_eq!(built.segments_in_order().len(), DEPTH + 1);
        drop(built);
        drop(s);
    }

    #[test]
    fn empty_series_builds_degenerate_wire_network() {
        let s = Structure::series(vec![]);
        let (net, _) = s.build("empty").unwrap();
        assert_eq!(net.stats().segments, 0);
        assert_eq!(net.successors(net.scan_in()), &[net.scan_out()]);
    }
}
