//! Structural (series-parallel) network descriptions.
//!
//! A [`Structure`] describes an RSN as a composition of segments, series
//! chains, multiplexed parallel sections, and SIBs — the hierarchical
//! series-parallel form of §III (Definition 1). Building a structure yields
//! both the flat [`ScanNetwork`] graph and a [`BuiltStructure`] that mirrors
//! the composition with concrete node ids, from which the `rsn-sp` crate
//! derives the binary decomposition tree without re-running SP recognition.

use serde::{Deserialize, Serialize};

use crate::error::NetworkError;
use crate::ids::NodeId;
use crate::instrument::InstrumentKind;
use crate::network::{NetworkBuilder, ScanNetwork};
use crate::primitive::{ControlSource, Segment};

/// Specification of one scan segment inside a [`Structure`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSpec {
    /// Optional segment name.
    pub name: Option<String>,
    /// Length in scan cells (≥ 1).
    pub len: u32,
    /// Instrument hosted by the segment, if any.
    pub instrument: Option<InstrumentSpec>,
}

/// Specification of an instrument inside a [`SegmentSpec`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentSpec {
    /// Optional instrument name (defaults to the segment name).
    pub name: Option<String>,
    /// Functional class used by the default weight assignment.
    pub kind: InstrumentKind,
}

/// Specification of the multiplexer closing a parallel section.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxSpec {
    /// Optional multiplexer name.
    pub name: Option<String>,
}

impl MuxSpec {
    /// Creates a named multiplexer spec.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        Self { name: Some(name.into()) }
    }

    /// Creates an anonymous multiplexer spec.
    #[must_use]
    pub fn anon() -> Self {
        Self { name: None }
    }
}

/// A hierarchical series-parallel description of an RSN.
///
/// # Examples
///
/// Figure 1 of the paper contains (among others) a segment in series with a
/// two-branch multiplexer section:
///
/// ```
/// use rsn_model::Structure;
///
/// let s = Structure::series(vec![
///     Structure::seg("c0", 4),
///     Structure::parallel(vec![Structure::seg("c1", 2), Structure::seg("c2", 2)], "m0"),
/// ]);
/// let (net, _built) = s.build("example")?;
/// assert_eq!(net.stats().segments, 3);
/// assert_eq!(net.stats().muxes, 1);
/// # Ok::<(), rsn_model::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Structure {
    /// A single scan segment.
    Segment(SegmentSpec),
    /// A pure bypass wire (no scan cells). Only meaningful as a parallel
    /// branch.
    Wire,
    /// Components traversed in scan order (scan-in side first).
    Series(Vec<Structure>),
    /// Alternative branches joined by a scan multiplexer; branch `k` is
    /// selected by address value `k`.
    Parallel {
        /// The alternative branches in select order.
        branches: Vec<Structure>,
        /// The closing multiplexer.
        mux: MuxSpec,
    },
    /// A Segment Insertion Bit: a 1-bit control cell followed by a bypassable
    /// sub-network. Select 0 bypasses, select 1 includes the sub-network.
    Sib {
        /// Base name for the generated cell and multiplexer.
        name: Option<String>,
        /// The gated sub-network.
        inner: Box<Structure>,
    },
}

impl Structure {
    /// A named segment of `len` cells without an instrument.
    #[must_use]
    pub fn seg(name: impl Into<String>, len: u32) -> Self {
        Self::Segment(SegmentSpec { name: Some(name.into()), len, instrument: None })
    }

    /// An anonymous segment of `len` cells without an instrument.
    #[must_use]
    pub fn anon_seg(len: u32) -> Self {
        Self::Segment(SegmentSpec { name: None, len, instrument: None })
    }

    /// A named segment hosting an instrument of the given kind.
    #[must_use]
    pub fn instrument_seg(name: impl Into<String>, len: u32, kind: InstrumentKind) -> Self {
        let name = name.into();
        Self::Segment(SegmentSpec {
            name: Some(name.clone()),
            len,
            instrument: Some(InstrumentSpec { name: Some(name), kind }),
        })
    }

    /// A series composition.
    #[must_use]
    pub fn series(parts: Vec<Structure>) -> Self {
        Self::Series(parts)
    }

    /// A parallel composition closed by a named multiplexer.
    #[must_use]
    pub fn parallel(branches: Vec<Structure>, mux_name: impl Into<String>) -> Self {
        Self::Parallel { branches, mux: MuxSpec::named(mux_name) }
    }

    /// A SIB gating `inner`.
    #[must_use]
    pub fn sib(name: impl Into<String>, inner: Structure) -> Self {
        Self::Sib { name: Some(name.into()), inner: Box::new(inner) }
    }

    /// Number of scan segments this structure will produce (SIB cells count).
    #[must_use]
    pub fn count_segments(&self) -> usize {
        match self {
            Self::Segment(_) => 1,
            Self::Wire => 0,
            Self::Series(parts) => parts.iter().map(Self::count_segments).sum(),
            Self::Parallel { branches, .. } => branches.iter().map(Self::count_segments).sum(),
            Self::Sib { inner, .. } => 1 + inner.count_segments(),
        }
    }

    /// Number of scan multiplexers this structure will produce.
    #[must_use]
    pub fn count_muxes(&self) -> usize {
        match self {
            Self::Segment(_) | Self::Wire => 0,
            Self::Series(parts) => parts.iter().map(Self::count_muxes).sum(),
            Self::Parallel { branches, .. } => {
                1 + branches.iter().map(Self::count_muxes).sum::<usize>()
            }
            Self::Sib { inner, .. } => 1 + inner.count_muxes(),
        }
    }

    /// Number of instruments this structure will produce.
    #[must_use]
    pub fn count_instruments(&self) -> usize {
        match self {
            Self::Segment(s) => usize::from(s.instrument.is_some()),
            Self::Wire => 0,
            Self::Series(parts) => parts.iter().map(Self::count_instruments).sum(),
            Self::Parallel { branches, .. } => branches.iter().map(Self::count_instruments).sum(),
            Self::Sib { inner, .. } => inner.count_instruments(),
        }
    }

    /// Builds the flat network graph and the id-annotated composition.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] if the composition is malformed: a parallel
    /// section with fewer than two branches, more than one bypass wire in one
    /// section, or any graph invariant violation found by validation.
    pub fn build(
        &self,
        name: impl Into<String>,
    ) -> Result<(ScanNetwork, BuiltStructure), NetworkError> {
        let mut ctx = BuildCtx { b: NetworkBuilder::new(name), fresh: 0 };
        let (ends, built) = ctx.emit(self)?;
        let (si, so) = (ctx.b.scan_in(), ctx.b.scan_out());
        match ends {
            Some((entry, exit)) => {
                ctx.b.connect(si, entry)?;
                ctx.b.connect(exit, so)?;
            }
            None => ctx.b.connect(si, so)?,
        }
        Ok((ctx.b.finish()?, built))
    }
}

/// A [`Structure`] whose components carry the node ids assigned during
/// [`Structure::build`]. SIBs are desugared into their series/parallel form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BuiltStructure {
    /// A scan segment.
    Segment(NodeId),
    /// A bypass wire.
    Wire,
    /// Series composition in scan order.
    Series(Vec<BuiltStructure>),
    /// Parallel branches (in select order) closed by the multiplexer.
    Parallel {
        /// Branch compositions; index = select value.
        branches: Vec<BuiltStructure>,
        /// The closing multiplexer.
        mux: NodeId,
    },
}

struct BuildCtx {
    b: NetworkBuilder,
    fresh: u32,
}

type Endpoints = Option<(NodeId, NodeId)>;

impl BuildCtx {
    fn fresh_name(&mut self, prefix: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("_{prefix}{n}")
    }

    /// Emits nodes for `s`; returns the (entry, exit) pair (`None` = wire).
    fn emit(&mut self, s: &Structure) -> Result<(Endpoints, BuiltStructure), NetworkError> {
        match s {
            Structure::Segment(spec) => {
                let seg = Segment::new(spec.len);
                let id = match &spec.name {
                    Some(n) => self.b.add_segment(n.clone(), seg),
                    None => self.b.add_anon_segment(seg),
                };
                if let Some(inst) = &spec.instrument {
                    match inst.name.clone().or_else(|| spec.name.clone()) {
                        Some(name) => self.b.add_instrument(name, id, inst.kind)?,
                        None => self.b.add_anon_instrument(id, inst.kind)?,
                    };
                }
                Ok((Some((id, id)), BuiltStructure::Segment(id)))
            }
            Structure::Wire => Ok((None, BuiltStructure::Wire)),
            Structure::Series(parts) => {
                let mut built = Vec::with_capacity(parts.len());
                let mut entry: Option<NodeId> = None;
                let mut exit: Option<NodeId> = None;
                for part in parts {
                    let (ends, bs) = self.emit(part)?;
                    built.push(bs);
                    if let Some((e, x)) = ends {
                        match exit {
                            Some(prev) => self.b.connect(prev, e)?,
                            None => entry = Some(e),
                        }
                        exit = Some(x);
                    }
                }
                let ends = entry.map(|e| (e, exit.expect("exit set with entry")));
                Ok((ends, BuiltStructure::Series(built)))
            }
            Structure::Parallel { branches, mux } => {
                if branches.len() < 2 {
                    // A parallel section needs a real choice; surfaced as a
                    // too-few-inputs error on a placeholder id.
                    return Err(NetworkError::TooFewMuxInputs(NodeId::new(self.b.node_count())));
                }
                let fname = self.fresh_name("fan");
                let fanout = self.b.add_fanout(fname);
                let mut inputs = Vec::with_capacity(branches.len());
                let mut built = Vec::with_capacity(branches.len());
                let mut wires = 0usize;
                for branch in branches {
                    let (ends, bs) = self.emit(branch)?;
                    built.push(bs);
                    match ends {
                        Some((e, x)) => {
                            self.b.connect(fanout, e)?;
                            inputs.push(x);
                        }
                        None => {
                            wires += 1;
                            if wires > 1 {
                                return Err(NetworkError::DuplicateWire(fanout));
                            }
                            inputs.push(fanout);
                        }
                    }
                }
                let mname = match &mux.name {
                    Some(n) => n.clone(),
                    None => self.fresh_name("mux"),
                };
                let m = self.b.add_mux(mname, inputs, ControlSource::Direct)?;
                Ok((Some((fanout, m)), BuiltStructure::Parallel { branches: built, mux: m }))
            }
            Structure::Sib { name, inner } => {
                let base = name.clone().unwrap_or_else(|| self.fresh_name("sib"));
                let cell = self.b.add_segment(format!("{base}.cell"), Segment::sib_cell());
                let fanout = self.b.add_fanout(format!("{base}.fan"));
                self.b.connect(cell, fanout)?;
                let (ends, inner_built) = self.emit(inner)?;
                let inner_exit = match ends {
                    Some((e, x)) => {
                        self.b.connect(fanout, e)?;
                        x
                    }
                    // A SIB around a wire degenerates to cell + mux with two
                    // wire inputs, which is ill-formed.
                    None => return Err(NetworkError::DuplicateWire(fanout)),
                };
                let m = self.b.add_mux(
                    format!("{base}.mux"),
                    vec![fanout, inner_exit],
                    ControlSource::Cell { segment: cell, bit: 0 },
                )?;
                let built = BuiltStructure::Series(vec![
                    BuiltStructure::Segment(cell),
                    BuiltStructure::Parallel {
                        branches: vec![BuiltStructure::Wire, inner_built],
                        mux: m,
                    },
                ]);
                Ok((Some((cell, m)), built))
            }
        }
    }
}

impl BuiltStructure {
    /// Iterates over all segment ids in scan order (scan-in side first).
    #[must_use]
    pub fn segments_in_order(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_segments(&mut out);
        out
    }

    fn collect_segments(&self, out: &mut Vec<NodeId>) {
        match self {
            Self::Segment(id) => out.push(*id),
            Self::Wire => {}
            Self::Series(parts) => {
                for p in parts {
                    p.collect_segments(out);
                }
            }
            Self::Parallel { branches, .. } => {
                for b in branches {
                    b.collect_segments(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RSN of Fig. 1: segments c0..c4, muxes m0..m2 (approximated from
    /// the paper's description: m1/m2 nested under one branch of m0).
    pub(crate) fn fig1() -> Structure {
        Structure::series(vec![
            Structure::seg("c0", 2),
            Structure::parallel(
                vec![
                    Structure::series(vec![
                        Structure::seg("c1", 2),
                        Structure::parallel(vec![Structure::seg("c2", 2), Structure::Wire], "m1"),
                    ]),
                    Structure::seg("c3", 2),
                ],
                "m0",
            ),
            Structure::seg("c4", 2),
        ])
    }

    #[test]
    fn builds_fig1_like_network() {
        let s = fig1();
        assert_eq!(s.count_segments(), 5);
        assert_eq!(s.count_muxes(), 2);
        let (net, built) = s.build("fig1").unwrap();
        let stats = net.stats();
        assert_eq!(stats.segments, 5);
        assert_eq!(stats.muxes, 2);
        assert_eq!(built.segments_in_order().len(), 5);
    }

    #[test]
    fn sib_desugars_to_cell_plus_mux() {
        let s = Structure::sib("s1", Structure::seg("d0", 6));
        assert_eq!(s.count_segments(), 2); // cell + d0
        assert_eq!(s.count_muxes(), 1);
        let (net, built) = s.build("sib").unwrap();
        assert_eq!(net.stats().segments, 2);
        assert_eq!(net.stats().muxes, 1);
        // Select 0 must be the bypass: mux input 0 is the fan-out.
        let mux = net.muxes().next().unwrap();
        let m = net.node(mux).kind.as_mux().unwrap().clone();
        assert!(matches!(net.node(m.inputs[0]).kind, crate::NodeKind::Fanout));
        match built {
            BuiltStructure::Series(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], BuiltStructure::Segment(_)));
                match &parts[1] {
                    BuiltStructure::Parallel { branches, .. } => {
                        assert!(matches!(branches[0], BuiltStructure::Wire));
                    }
                    other => panic!("expected parallel, got {other:?}"),
                }
            }
            other => panic!("expected series, got {other:?}"),
        }
    }

    #[test]
    fn rejects_single_branch_parallel() {
        let s = Structure::parallel(vec![Structure::seg("a", 1)], "m");
        assert!(s.build("bad").is_err());
    }

    #[test]
    fn rejects_two_wires_in_one_parallel() {
        let s = Structure::parallel(vec![Structure::Wire, Structure::Wire], "m");
        assert!(matches!(s.build("bad"), Err(NetworkError::DuplicateWire(_))));
    }

    #[test]
    fn wire_in_series_is_transparent() {
        let s = Structure::series(vec![
            Structure::Wire,
            Structure::seg("a", 1),
            Structure::Wire,
            Structure::seg("b", 1),
        ]);
        let (net, _) = s.build("wires").unwrap();
        assert_eq!(net.stats().segments, 2);
    }

    #[test]
    fn nary_parallel_orders_inputs_by_branch() {
        let s = Structure::parallel(
            vec![Structure::seg("a", 1), Structure::seg("b", 1), Structure::seg("c", 1)],
            "m",
        );
        let (net, _) = s.build("nary").unwrap();
        let m = net.muxes().next().unwrap();
        let inputs = &net.node(m).kind.as_mux().unwrap().inputs;
        let names: Vec<_> = inputs.iter().map(|&i| net.node(i).name.clone().unwrap()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn segments_in_order_is_scan_order() {
        let (net, built) = fig1().build("fig1").unwrap();
        let names: Vec<_> =
            built.segments_in_order().iter().map(|&s| net.node(s).name.clone().unwrap()).collect();
        assert_eq!(names, ["c0", "c1", "c2", "c3", "c4"]);
    }

    #[test]
    fn empty_series_builds_degenerate_wire_network() {
        let s = Structure::series(vec![]);
        let (net, _) = s.build("empty").unwrap();
        assert_eq!(net.stats().segments, 0);
        assert_eq!(net.successors(net.scan_in()), &[net.scan_out()]);
    }
}
