//! Access-pattern generation and application.
//!
//! An [`AccessPattern`] is the network-level recipe to observe or control one
//! instrument: a multiplexer configuration activating a scan path through the
//! instrument's segment plus the position of the segment on that path.
//! Patterns depend only on the network *topology*; the selective hardening of
//! the `robust-rsn` crate never alters the topology, so patterns generated
//! for the initial network remain valid for the hardened one (§V: "can also
//! use the same access patterns as the initial RSNs").

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::ids::{InstrumentId, NodeId};
use crate::network::ScanNetwork;
use crate::path::{active_path, Config};
use crate::primitive::NodeKind;
use crate::sim::Simulator;

/// The direction of an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Capture the instrument's data and shift it out.
    Observe,
    /// Shift chosen data in and update it into the instrument.
    Control,
}

/// A recipe to access one instrument through the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessPattern {
    /// The instrument being accessed.
    pub instrument: InstrumentId,
    /// The segment hosting it.
    pub segment: NodeId,
    /// Observation or control.
    pub kind: AccessKind,
    /// Configuration activating a path through the segment.
    pub config: Config,
    /// Length of the active path under `config`, in scan cells.
    pub path_len: usize,
    /// Cell positions of the segment on the active path.
    pub range: core::ops::Range<usize>,
}

/// Finds a configuration whose active path traverses `target`.
///
/// The fast greedy walk is verified against the traced active path; when it
/// yields a configuration that misses `target` — possible on unvalidated
/// networks where the up- and down-traces disagree on a shared multiplexer —
/// a breadth-first trace is used instead and re-verified.
///
/// Returns `None` when no verifiable scan-in → scan-out path through `target`
/// exists (impossible on validated fault-free networks).
#[must_use]
pub fn config_through(net: &ScanNetwork, target: NodeId) -> Option<Config> {
    let greedy = config_from_traces(
        net,
        target,
        trace_any(net, target, Direction::Backward),
        trace_any(net, target, Direction::Forward),
    );
    if greedy.is_some() {
        return greedy;
    }
    config_from_traces(
        net,
        target,
        trace_bfs(net, target, Direction::Backward),
        trace_bfs(net, target, Direction::Forward),
    )
}

/// Builds a configuration from an up-trace and a down-trace and verifies that
/// its active path really contains `target`.
fn config_from_traces(
    net: &ScanNetwork,
    target: NodeId,
    up: Option<Vec<NodeId>>,
    down: Option<Vec<NodeId>>,
) -> Option<Config> {
    // Any scan-in → target → scan-out node path determines the selects of the
    // multiplexers it crosses; all other selects are irrelevant (left at 0).
    let (up, down) = (up?, down?);
    let mut config = Config::new(net);
    let mut apply = |path: &[NodeId]| -> Option<()> {
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if let NodeKind::Mux(m) = &net.node(b).kind {
                let sel = m.inputs.iter().position(|&i| i == a)?;
                config.set_select(net, b, sel as u16).ok()?;
            }
        }
        Some(())
    };
    apply(&up)?;
    apply(&down)?;
    let path = active_path(net, &config).ok()?;
    path.contains(target).then_some(config)
}

enum Direction {
    /// From `target` back to scan-in (result returned in scan order).
    Backward,
    /// From `target` forward to scan-out.
    Forward,
}

fn trace_any(net: &ScanNetwork, target: NodeId, dir: Direction) -> Option<Vec<NodeId>> {
    let goal = match dir {
        Direction::Backward => net.scan_in(),
        Direction::Forward => net.scan_out(),
    };
    let mut path = vec![target];
    let mut cur = target;
    let limit = net.node_count() + 1;
    while cur != goal {
        let next = match dir {
            Direction::Backward => net.predecessors(cur).first().copied(),
            Direction::Forward => net.successors(cur).first().copied(),
        }?;
        path.push(next);
        cur = next;
        if path.len() > limit {
            return None;
        }
    }
    if matches!(dir, Direction::Backward) {
        path.reverse();
    }
    Some(path)
}

/// Breadth-first fallback for [`trace_any`]: finds *some* node path between
/// `target` and the goal port even when the greedy first-edge walk dead-ends
/// in a branch that never reaches it.
fn trace_bfs(net: &ScanNetwork, target: NodeId, dir: Direction) -> Option<Vec<NodeId>> {
    let goal = match dir {
        Direction::Backward => net.scan_in(),
        Direction::Forward => net.scan_out(),
    };
    let mut parent: Vec<Option<NodeId>> = vec![None; net.node_count()];
    let mut visited = vec![false; net.node_count()];
    visited[target.index()] = true;
    let mut queue = std::collections::VecDeque::from([target]);
    while let Some(cur) = queue.pop_front() {
        if cur == goal {
            // Parent pointers lead from the goal back to `target`; each hop
            // follows one graph edge, oriented by the search direction.
            let mut path = vec![goal];
            let mut c = goal;
            while c != target {
                let p = parent[c.index()].expect("BFS reached goal, so parents are set");
                path.push(p);
                c = p;
            }
            if matches!(dir, Direction::Forward) {
                path.reverse();
            }
            return Some(path);
        }
        let nexts = match dir {
            Direction::Backward => net.predecessors(cur),
            Direction::Forward => net.successors(cur),
        };
        for &nx in nexts {
            if !visited[nx.index()] {
                visited[nx.index()] = true;
                parent[nx.index()] = Some(cur);
                queue.push_back(nx);
            }
        }
    }
    None
}

/// Generates the access pattern for one instrument.
///
/// # Errors
///
/// Returns [`SimError::UnknownInstrument`] for an out-of-range instrument and
/// [`SimError::PathTraceFailed`] when no path through its segment exists.
pub fn pattern_for(
    net: &ScanNetwork,
    instrument: InstrumentId,
    kind: AccessKind,
) -> Result<AccessPattern, SimError> {
    let segment = net
        .instruments()
        .find(|(id, _)| *id == instrument)
        .map(|(_, i)| i.segment())
        .ok_or(SimError::UnknownInstrument(instrument))?;
    let config = config_through(net, segment).ok_or(SimError::PathTraceFailed(segment))?;
    let path = active_path(net, &config)?;
    let range = path.segment_range(segment).ok_or(SimError::PathTraceFailed(segment))?;
    Ok(AccessPattern { instrument, segment, kind, config, path_len: path.bit_len(), range })
}

/// Generates observe and control patterns for every instrument.
///
/// # Errors
///
/// See [`pattern_for`].
pub fn all_patterns(net: &ScanNetwork) -> Result<Vec<AccessPattern>, SimError> {
    let mut out = Vec::with_capacity(net.instrument_count() * 2);
    for (id, _) in net.instruments() {
        out.push(pattern_for(net, id, AccessKind::Observe)?);
        out.push(pattern_for(net, id, AccessKind::Control)?);
    }
    Ok(out)
}

impl AccessPattern {
    /// Applies an observe pattern on a simulator: retargets to the pattern's
    /// configuration, captures, shifts out, and returns the instrument data.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; retargeting may fail under faults.
    pub fn read(&self, sim: &mut Simulator<'_>) -> Result<Vec<bool>, SimError> {
        sim.retarget(&self.config, retarget_rounds(sim.network()))?;
        let path = sim.active_path()?;
        sim.capture()?;
        // Shift the committed latch image back in so the update closing the
        // CSU cycle re-commits the same configuration; shifting zeros would
        // clear every on-path control cell and deconfigure the path.
        let mut image = vec![false; path.bit_len()];
        for &seg in path.segments() {
            let r = path.segment_range(seg).expect("segment on path");
            image[r].copy_from_slice(sim.latch(seg)?);
        }
        let out = sim.shift(&path.to_shift_sequence(&image))?;
        sim.update()?;
        let observed = path.from_shift_sequence(&out);
        Ok(observed[self.range.clone()].to_vec())
    }

    /// Applies a control pattern on a simulator: retargets, shifts `data`
    /// into the instrument's segment, and updates.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; retargeting may fail under faults.
    pub fn write(&self, sim: &mut Simulator<'_>, data: &[bool]) -> Result<(), SimError> {
        sim.retarget(&self.config, retarget_rounds(sim.network()))?;
        let path = sim.active_path()?;
        let mut image = vec![false; path.bit_len()];
        // Preserve the *committed* (latched) control-cell values so the
        // update does not deconfigure the path that was just set up; the
        // shift registers may hold stale transient data from a prior access.
        for &seg in path.segments() {
            let r = path.segment_range(seg).expect("segment on path");
            image[r].copy_from_slice(sim.latch(seg)?);
        }
        let r = self.range.clone();
        for (dst, src) in image[r].iter_mut().zip(data.iter().copied()) {
            *dst = src;
        }
        let seq = path.to_shift_sequence(&image);
        sim.shift(&seq)?;
        sim.update()?;
        Ok(())
    }
}

/// A safe upper bound for retargeting rounds: one per multiplexer plus one.
fn retarget_rounds(net: &ScanNetwork) -> usize {
    net.muxes().count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::InstrumentKind;
    use crate::structure::Structure;

    fn nested() -> ScanNetwork {
        Structure::series(vec![
            Structure::seg("head", 1),
            Structure::sib(
                "s0",
                Structure::series(vec![
                    Structure::instrument_seg("i0", 3, InstrumentKind::Sensor),
                    Structure::sib("s1", Structure::instrument_seg("i1", 2, InstrumentKind::Bist)),
                ]),
            ),
            Structure::parallel(
                vec![
                    Structure::instrument_seg("i2", 4, InstrumentKind::RuntimeAdaptive),
                    Structure::instrument_seg("i3", 2, InstrumentKind::Debug),
                ],
                "m0",
            ),
        ])
        .build("nested")
        .unwrap()
        .0
    }

    #[test]
    fn config_through_reaches_buried_segment() {
        let net = nested();
        let i1_seg =
            net.nodes().find(|(_, n)| n.name.as_deref() == Some("i1")).map(|(id, _)| id).unwrap();
        let cfg = config_through(&net, i1_seg).unwrap();
        let path = active_path(&net, &cfg).unwrap();
        assert!(path.contains(i1_seg));
    }

    #[test]
    fn read_recovers_instrument_data_end_to_end() {
        let net = nested();
        let mut sim = Simulator::new(&net);
        for (id, _) in net.instruments() {
            let width = net.segment_len(net.instrument(id).segment()) as usize;
            let data: Vec<bool> = (0..width).map(|b| (id.index() + b) % 2 == 0).collect();
            sim.set_instrument_data(id, &data).unwrap();
            let pat = pattern_for(&net, id, AccessKind::Observe).unwrap();
            assert_eq!(pat.read(&mut sim).unwrap(), data, "instrument {id}");
        }
    }

    #[test]
    fn write_delivers_instrument_data_end_to_end() {
        let net = nested();
        let mut sim = Simulator::new(&net);
        for (id, _) in net.instruments() {
            let width = net.segment_len(net.instrument(id).segment()) as usize;
            let data: Vec<bool> = (0..width).map(|b| (id.index() * 3 + b) % 2 == 1).collect();
            let pat = pattern_for(&net, id, AccessKind::Control).unwrap();
            pat.write(&mut sim, &data).unwrap();
            assert_eq!(sim.instrument_output(id).unwrap(), &data[..], "instrument {id}");
        }
    }

    #[test]
    fn all_patterns_covers_every_instrument_twice() {
        let net = nested();
        let pats = all_patterns(&net).unwrap();
        assert_eq!(pats.len(), net.instrument_count() * 2);
    }

    #[test]
    fn config_through_falls_back_to_bfs_when_greedy_dead_ends() {
        // Fan-out whose first branch is a dangling sink (only constructible
        // with finish_unchecked): the greedy forward walk from "deep" takes
        // `.first()` into "dead" and stops with no successor. Only the BFS
        // fallback finds the path through the mux legs.
        use crate::network::NetworkBuilder;
        use crate::primitive::{ControlSource, Segment};
        let mut b = NetworkBuilder::new("t");
        let deep = b.add_segment("deep", Segment::new(2));
        let f = b.add_fanout("f");
        let dead = b.add_segment("dead", Segment::new(1));
        let live1 = b.add_segment("live1", Segment::new(1));
        let live2 = b.add_segment("live2", Segment::new(1));
        b.connect(b.scan_in(), deep).unwrap();
        b.connect(deep, f).unwrap();
        b.connect(f, dead).unwrap(); // dangling: no successor
        b.connect(f, live1).unwrap();
        b.connect(f, live2).unwrap();
        let m = b.add_mux("m", vec![live1, live2], ControlSource::Direct).unwrap();
        b.connect(m, b.scan_out()).unwrap();
        let net = b.finish_unchecked();
        let cfg = config_through(&net, deep).expect("BFS fallback must route around the sink");
        let path = active_path(&net, &cfg).unwrap();
        assert!(path.contains(deep));
        assert!(!path.contains(dead), "the dangling branch is never on an active path");
    }

    #[test]
    fn config_through_rejects_conflicting_shared_mux_instead_of_overwriting() {
        // Cycle through mux "m" (only constructible with finish_unchecked):
        // the up-trace into "t" crosses m via input 0 ("a"), while the
        // down-trace out of "t" feeds back into m via input 1 ("t" itself)
        // before exiting to scan-out. The old code silently overwrote the
        // select (last writer wins, m := 1) and returned a configuration
        // whose active path cannot even be traced; the fixed version
        // verifies the path and reports that no consistent config exists.
        use crate::network::NetworkBuilder;
        use crate::primitive::{ControlSource, Segment};
        let mut b = NetworkBuilder::new("t");
        let a = b.add_segment("a", Segment::new(1));
        let t = b.add_segment("t", Segment::new(1));
        b.connect(b.scan_in(), a).unwrap();
        let m = b.add_mux("m", vec![a, t], ControlSource::Direct).unwrap();
        b.connect(m, b.scan_out()).unwrap();
        b.connect(m, t).unwrap(); // m also feeds t …
        let net = b.finish_unchecked(); // … and t -> m closes the cycle
        assert!(
            config_through(&net, t).is_none(),
            "no static select of m puts t on a traceable scan-in -> scan-out path"
        );
    }

    #[test]
    fn pattern_read_fails_when_blocking_fault_injected() {
        use crate::fault::Fault;
        let net = nested();
        let s1_cell = net
            .nodes()
            .find(|(_, n)| n.name.as_deref() == Some("s1.cell"))
            .map(|(id, _)| id)
            .unwrap();
        let i1 = net
            .instruments()
            .find(|(_, inst)| net.node(inst.segment()).name.as_deref() == Some("i1"))
            .map(|(id, _)| id)
            .unwrap();
        let mut sim = Simulator::new(&net);
        sim.inject(Fault::broken_segment(s1_cell)).unwrap();
        let pat = pattern_for(&net, i1, AccessKind::Observe).unwrap();
        assert!(pat.read(&mut sim).is_err(), "broken SIB cell must block retargeting");
    }
}
