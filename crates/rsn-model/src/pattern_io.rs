//! Textual persistence for access patterns.
//!
//! Selective hardening keeps the RSN topology, so pattern sets generated for
//! the initial network remain valid for the hardened one (§V). This module
//! lets a pattern set be written out once and replayed later — the artifact
//! a test floor would keep:
//!
//! ```text
//! patterns demo {
//!   observe i2 segment=n7 len=24 range=8..12 {
//!     select m0 = 1;
//!     select s0.mux = 1;
//!   }
//! }
//! ```

use core::fmt;

use crate::error::SimError;
use crate::ids::{InstrumentId, NodeId};
use crate::network::ScanNetwork;
use crate::path::Config;
use crate::patterns::{AccessKind, AccessPattern};

/// Error raised when parsing a pattern file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PatternParseError {}

/// Renders a pattern set in the textual format.
///
/// Only non-zero selects are listed; the replaying side starts from the
/// all-zero configuration.
#[must_use]
pub fn export_patterns(net: &ScanNetwork, name: &str, patterns: &[AccessPattern]) -> String {
    let mut out = format!("patterns {name} {{\n");
    for p in patterns {
        let kind = match p.kind {
            AccessKind::Observe => "observe",
            AccessKind::Control => "control",
        };
        out.push_str(&format!(
            "  {kind} {} segment={} len={} range={}..{} {{\n",
            net.instrument(p.instrument).label(p.instrument),
            p.segment,
            p.path_len,
            p.range.start,
            p.range.end,
        ));
        for m in net.muxes() {
            let sel = p.config.select(m);
            if sel != 0 {
                out.push_str(&format!("    select {} = {sel};\n", net.node(m).label(m)));
            }
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

/// Parses a pattern set against `net` (names must resolve in this network).
///
/// # Errors
///
/// Returns a [`PatternParseError`] for syntax errors, unknown instrument or
/// multiplexer names, and select values out of range.
pub fn parse_patterns(
    net: &ScanNetwork,
    input: &str,
) -> Result<(String, Vec<AccessPattern>), PatternParseError> {
    let mut lines = input.lines().enumerate().peekable();
    let err = |line: usize, message: String| PatternParseError { line: line + 1, message };

    let (hline, header) = lines.next().ok_or_else(|| err(0, "empty input".into()))?;
    let name = header
        .trim()
        .strip_prefix("patterns ")
        .and_then(|r| r.strip_suffix('{'))
        .map(str::trim)
        .ok_or_else(|| err(hline, "expected `patterns <name> {`".to_string()))?
        .to_string();

    let mut patterns = Vec::new();
    loop {
        let Some((lno, line)) = lines.next() else {
            return Err(err(0, "unterminated pattern block".into()));
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            break;
        }
        // Pattern header.
        let mut toks = line.split_whitespace();
        let kind = match toks.next() {
            Some("observe") => AccessKind::Observe,
            Some("control") => AccessKind::Control,
            other => return Err(err(lno, format!("expected observe/control, got {other:?}"))),
        };
        let iname = toks.next().ok_or_else(|| err(lno, "missing instrument name".into()))?;
        let instrument = resolve_instrument(net, iname)
            .ok_or_else(|| err(lno, format!("unknown instrument {iname:?}")))?;
        let mut segment = None;
        let mut len = None;
        let mut range = None;
        for tok in toks {
            if let Some(v) = tok.strip_prefix("segment=") {
                let raw: String = v.chars().filter(char::is_ascii_digit).collect();
                let idx: usize =
                    raw.parse().map_err(|_| err(lno, format!("bad segment id {v:?}")))?;
                segment = Some(NodeId::new(idx));
            } else if let Some(v) = tok.strip_prefix("len=") {
                len = Some(v.parse::<usize>().map_err(|_| err(lno, format!("bad len {v:?}")))?);
            } else if let Some(v) = tok.strip_prefix("range=") {
                let (a, b) =
                    v.split_once("..").ok_or_else(|| err(lno, format!("bad range {v:?}")))?;
                let a: usize = a.parse().map_err(|_| err(lno, format!("bad range {v:?}")))?;
                let b: usize = b.parse().map_err(|_| err(lno, format!("bad range {v:?}")))?;
                range = Some(a..b);
            } else if tok == "{" {
                break;
            } else {
                return Err(err(lno, format!("unexpected token {tok:?}")));
            }
        }
        let segment = segment.ok_or_else(|| err(lno, "missing segment=".into()))?;
        let path_len = len.ok_or_else(|| err(lno, "missing len=".into()))?;
        let range = range.ok_or_else(|| err(lno, "missing range=".into()))?;
        // Select body.
        let mut config = Config::new(net);
        loop {
            let Some((slno, sline)) = lines.next() else {
                return Err(err(lno, "unterminated select block".into()));
            };
            let sline = sline.trim();
            if sline == "}" {
                break;
            }
            if sline.is_empty() {
                continue;
            }
            let body = sline.strip_prefix("select ").and_then(|r| r.strip_suffix(';')).ok_or_else(
                || err(slno, format!("expected `select <mux> = <v>;`, got {sline:?}")),
            )?;
            let (mname, v) = body
                .split_once('=')
                .ok_or_else(|| err(slno, format!("expected `=` in {body:?}")))?;
            let mux = resolve_mux(net, mname.trim())
                .ok_or_else(|| err(slno, format!("unknown multiplexer {:?}", mname.trim())))?;
            let value: u16 =
                v.trim().parse().map_err(|_| err(slno, format!("bad select value {v:?}")))?;
            config.set_select(net, mux, value).map_err(|e: SimError| err(slno, e.to_string()))?;
        }
        patterns.push(AccessPattern { instrument, segment, kind, config, path_len, range });
    }
    Ok((name, patterns))
}

fn resolve_instrument(net: &ScanNetwork, name: &str) -> Option<InstrumentId> {
    net.instruments().find(|(id, inst)| inst.label(*id) == name).map(|(id, _)| id)
}

fn resolve_mux(net: &ScanNetwork, name: &str) -> Option<NodeId> {
    net.muxes().find(|&m| net.node(m).label(m) == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::InstrumentKind;
    use crate::patterns::all_patterns;
    use crate::sim::Simulator;
    use crate::structure::Structure;

    fn net() -> ScanNetwork {
        Structure::series(vec![
            Structure::sib("s0", Structure::instrument_seg("alpha", 3, InstrumentKind::Bist)),
            Structure::parallel(
                vec![
                    Structure::instrument_seg("beta", 2, InstrumentKind::Sensor),
                    Structure::instrument_seg("gamma", 2, InstrumentKind::Sensor),
                ],
                "m0",
            ),
        ])
        .build("pat")
        .unwrap()
        .0
    }

    #[test]
    fn roundtrips_a_full_pattern_set() {
        let net = net();
        let pats = all_patterns(&net).unwrap();
        let text = export_patterns(&net, "pat", &pats);
        let (name, back) = parse_patterns(&net, &text).unwrap();
        assert_eq!(name, "pat");
        assert_eq!(back, pats);
    }

    #[test]
    fn replayed_patterns_behave_identically() {
        let net = net();
        let pats = all_patterns(&net).unwrap();
        let text = export_patterns(&net, "pat", &pats);
        let (_, back) = parse_patterns(&net, &text).unwrap();
        let mut sim = Simulator::new(&net);
        for (id, _) in net.instruments() {
            let width = net.segment_len(net.instrument(id).segment()) as usize;
            let data: Vec<bool> = (0..width).map(|b| b % 2 == 0).collect();
            sim.set_instrument_data(id, &data).unwrap();
        }
        for (orig, replay) in pats.iter().zip(&back) {
            if orig.kind == AccessKind::Observe {
                let a = orig.read(&mut sim).unwrap();
                let b = replay.read(&mut sim).unwrap();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn unknown_names_are_rejected_with_line_numbers() {
        let net = net();
        let bad = "patterns p {\n  observe nosuch segment=n1 len=3 range=0..3 {\n  }\n}";
        let e = parse_patterns(&net, bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("nosuch"));

        let bad = "patterns p {\n  observe alpha segment=n2 len=3 range=0..3 {\n    select zz = 1;\n  }\n}";
        let e = parse_patterns(&net, bad).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn out_of_range_selects_are_rejected() {
        let net = net();
        let bad =
            "patterns p {\n  observe alpha segment=n2 len=3 range=0..3 {\n    select m0 = 9;\n  }\n}";
        let e = parse_patterns(&net, bad).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn malformed_headers_are_rejected() {
        let net = net();
        assert!(parse_patterns(&net, "nope").is_err());
        assert!(parse_patterns(&net, "patterns p {\n  frobnicate x {\n  }\n}").is_err());
    }
}
