//! A small textual description language for structural RSNs.
//!
//! The format mirrors [`Structure`] one-to-one and is what the benchmark
//! suite and the examples use to persist networks:
//!
//! ```text
//! network demo {
//!   seg c0 len=8;
//!   sib s1 {
//!     seg d0 len=6 instrument(kind=bist);
//!   }
//!   parallel m0 {
//!     branch { seg c1 len=2; }
//!     branch { wire; }
//!   }
//! }
//! ```
//!
//! Body lists (`network`, `branch`, `sib`) are implicit series compositions.
//! Comments run from `#` or `//` to the end of the line.

use core::fmt;

use crate::instrument::InstrumentKind;
use crate::structure::{InstrumentSpec, MuxSpec, SegmentSpec, Structure};

/// Error raised when parsing the textual format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a `network <name> { ... }` description.
///
/// # Errors
///
/// Returns a [`ParseError`] with the line number of the first offending
/// token.
///
/// # Examples
///
/// ```
/// let (name, s) = rsn_model::format::parse_network("network t { seg a len=3; }")?;
/// assert_eq!(name, "t");
/// assert_eq!(s.count_segments(), 1);
/// # Ok::<(), rsn_model::format::ParseError>(())
/// ```
pub fn parse_network(input: &str) -> Result<(String, Structure), ParseError> {
    let mut p = StreamingParser::new();
    p.push_str(input)?;
    p.finish()
}

/// Renders a structure in the textual format.
#[must_use]
pub fn print_network(name: &str, s: &Structure) -> String {
    let mut out = String::new();
    out.push_str(&format!("network {name} {{\n"));
    match s {
        Structure::Series(parts) => {
            for part in parts {
                print_element(part, 1, &mut out);
            }
        }
        other => print_element(other, 1, &mut out),
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    // Indentation is purely cosmetic (whitespace is insignificant to the
    // parser); cap it so printing a 10⁵-level-deep tower stays linear in the
    // structure size instead of quadratic.
    const MAX_INDENT: usize = 40;
    for _ in 0..depth.min(MAX_INDENT) {
        out.push_str("  ");
    }
}

fn print_element(s: &Structure, depth: usize, out: &mut String) {
    /// One unit of pending print work; kept on an explicit stack so deeply
    /// nested structures render without call-stack recursion.
    enum Task<'a> {
        /// Render one element at the given depth.
        El(&'a Structure, usize),
        /// Render a structure as an implicit series body (sib inners and
        /// parallel branches print their series parts unwrapped).
        Body(&'a Structure, usize),
        /// Emit a `}` line closing a block at the given depth.
        Close(usize),
        /// Emit an indented `branch {` opener.
        OpenBranch(usize),
    }

    let mut stack = vec![Task::El(s, depth)];
    while let Some(task) = stack.pop() {
        match task {
            Task::Close(depth) => {
                indent(out, depth);
                out.push_str("}\n");
            }
            Task::OpenBranch(depth) => {
                indent(out, depth);
                out.push_str("branch {\n");
            }
            Task::Body(s, depth) => match s {
                Structure::Series(parts) => {
                    stack.extend(parts.iter().rev().map(|p| Task::El(p, depth)));
                }
                other => stack.push(Task::El(other, depth)),
            },
            Task::El(s, depth) => match s {
                Structure::Segment(spec) => {
                    indent(out, depth);
                    out.push_str("seg");
                    if let Some(n) = &spec.name {
                        out.push(' ');
                        out.push_str(n);
                    }
                    out.push_str(&format!(" len={}", spec.len));
                    if let Some(inst) = &spec.instrument {
                        out.push_str(" instrument(");
                        let mut first = true;
                        if let Some(n) = &inst.name {
                            out.push_str(&format!("name={n}"));
                            first = false;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("kind={}", kind_name(inst.kind)));
                        out.push(')');
                    }
                    out.push_str(";\n");
                }
                Structure::Wire => {
                    indent(out, depth);
                    out.push_str("wire;\n");
                }
                Structure::Series(parts) => {
                    indent(out, depth);
                    out.push_str("series {\n");
                    stack.push(Task::Close(depth));
                    stack.extend(parts.iter().rev().map(|p| Task::El(p, depth + 1)));
                }
                Structure::Parallel { branches, mux } => {
                    indent(out, depth);
                    out.push_str("parallel");
                    if let Some(n) = &mux.name {
                        out.push(' ');
                        out.push_str(n);
                    }
                    out.push_str(" {\n");
                    stack.push(Task::Close(depth));
                    for branch in branches.iter().rev() {
                        stack.push(Task::Close(depth + 1));
                        stack.push(Task::Body(branch, depth + 2));
                        stack.push(Task::OpenBranch(depth + 1));
                    }
                }
                Structure::Sib { name, inner } => {
                    indent(out, depth);
                    out.push_str("sib");
                    if let Some(n) = name {
                        out.push(' ');
                        out.push_str(n);
                    }
                    out.push_str(" {\n");
                    stack.push(Task::Close(depth));
                    stack.push(Task::Body(inner, depth + 1));
                }
            },
        }
    }
}

fn kind_name(kind: InstrumentKind) -> &'static str {
    match kind {
        InstrumentKind::Sensor => "sensor",
        InstrumentKind::RuntimeAdaptive => "runtime",
        InstrumentKind::Bist => "bist",
        InstrumentKind::Debug => "debug",
        InstrumentKind::Generic => "generic",
    }
}

fn kind_from_name(name: &str) -> Option<InstrumentKind> {
    Some(match name {
        "sensor" => InstrumentKind::Sensor,
        "runtime" => InstrumentKind::RuntimeAdaptive,
        "bist" => InstrumentKind::Bist,
        "debug" => InstrumentKind::Debug,
        "generic" => InstrumentKind::Generic,
        _ => return None,
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Sym(char),
}

/// Resumable lexer state carried between input chunks.
#[derive(Debug)]
enum LexState {
    /// Between tokens.
    Ready,
    /// Inside a `#` or `//` comment (until end of line).
    InComment,
    /// A `/` was seen; the next char decides comment vs error.
    SlashSeen,
    /// Inside an integer literal.
    InInt(u64),
    /// Inside an identifier.
    InIdent(String),
}

/// What to build when a body's closing `}` is reached.
#[derive(Debug)]
enum BodyKind {
    /// The outermost body; its `}` completes the network.
    Top,
    /// A `series { ... }` element.
    Series,
    /// A `sib name? { ... }` element.
    Sib { name: Option<String> },
    /// A `branch { ... }` of the enclosing parallel frame.
    Branch,
}

/// One level of open nesting, kept on an explicit stack so arbitrarily deep
/// descriptions parse in O(depth) heap instead of call-stack recursion.
#[derive(Debug)]
enum Frame {
    /// An implicit series collecting elements.
    Body { parts: Vec<Structure>, kind: BodyKind },
    /// A parallel section between branches.
    Parallel { name: Option<String>, branches: Vec<Structure> },
}

fn attach(frames: &mut [Frame], s: Structure) {
    match frames.last_mut() {
        Some(Frame::Body { parts, .. }) => parts.push(s),
        _ => unreachable!("elements always attach to an open body"),
    }
}

/// The grammar position between tokens — every state names the token(s) it
/// accepts next, so a token can be dispatched the moment the lexer finishes
/// it, with no lookahead or rewind.
#[derive(Debug)]
enum St {
    /// Expect the `network` keyword.
    KwNetwork,
    /// Expect the network's name.
    NetName,
    /// Expect the network body's `{`.
    NetOpen,
    /// Inside a body: an element keyword or the closing `}`.
    Body,
    /// Inside a parallel section between branches: `branch` or `}`.
    BranchGap,
    /// After `branch`: expect `{`.
    BranchOpen,
    /// After `seg`: an optional name or the `len` keyword.
    SegStart,
    /// After the segment name: the `len` keyword.
    SegLen,
    /// After `len`: `=`.
    SegEq,
    /// After `len=`: the length integer.
    SegVal,
    /// After the length: `instrument` or `;`.
    SegAfter,
    /// After `instrument`: `(`.
    InstOpen,
    /// Inside the instrument attribute list: `name`, `kind`, `,` or `)`.
    InstAttr,
    /// After the `name` attribute keyword: `=`.
    InstNameEq,
    /// After `name=`: the instrument name.
    InstNameVal,
    /// After the `kind` attribute keyword: `=`.
    InstKindEq,
    /// After `kind=`: the kind name.
    InstKindVal,
    /// After the instrument's `)`: `;`.
    SegSemi,
    /// After `wire`: `;`.
    WireSemi,
    /// After `series`: `{`.
    SeriesOpen,
    /// After `parallel`: an optional name or `{`.
    ParallelName,
    /// After the parallel name: `{`.
    ParallelOpen,
    /// After `sib`: an optional name or `{`.
    SibName,
    /// After the sib name: `{`.
    SibOpen,
    /// The network closed; any further token is trailing input.
    Done,
}

/// The segment currently being assembled (at most one is ever in flight).
#[derive(Debug, Default)]
struct SegBuild {
    name: Option<String>,
    len: u32,
    inst_name: Option<String>,
    inst_kind: Option<InstrumentKind>,
    instrument: Option<InstrumentSpec>,
}

/// An incremental push parser for the textual network format.
///
/// Feed the description in arbitrary chunks with [`push_str`] (or raw bytes
/// with [`push_bytes`], which carries split UTF-8 sequences across chunk
/// boundaries), then call [`finish`]. Peak memory is bounded by the output
/// [`Structure`] plus one partial token — the input text itself is never
/// buffered, so a multi-gigabyte upload can be parsed straight off a socket.
/// Nesting lives on an explicit frame stack, so arbitrarily deep
/// descriptions cannot overflow the call stack.
///
/// [`parse_network`] is a thin wrapper that pushes one chunk; both paths
/// share this single grammar implementation and report identical
/// [`ParseError`]s.
///
/// After an error the parser is poisoned: feeding further input has
/// unspecified (but memory-safe) results.
///
/// [`push_str`]: StreamingParser::push_str
/// [`push_bytes`]: StreamingParser::push_bytes
/// [`finish`]: StreamingParser::finish
#[derive(Debug)]
pub struct StreamingParser {
    /// Up to 3 trailing bytes of a UTF-8 sequence split across chunks.
    utf8_carry: Vec<u8>,
    lex: LexState,
    /// 1-based line the lexer is currently on.
    line: usize,
    /// Line of the token currently being dispatched (for error reports).
    tok_line: usize,
    st: St,
    frames: Vec<Frame>,
    seg: SegBuild,
    /// Holds a `parallel`/`sib` name until its `{` arrives.
    pending_name: Option<String>,
    net_name: Option<String>,
    body: Option<Structure>,
}

impl Default for StreamingParser {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingParser {
    /// A parser expecting a fresh `network <name> { ... }` description.
    #[must_use]
    pub fn new() -> Self {
        Self {
            utf8_carry: Vec::new(),
            lex: LexState::Ready,
            line: 1,
            tok_line: 1,
            st: St::KwNetwork,
            frames: Vec::new(),
            seg: SegBuild::default(),
            pending_name: None,
            net_name: None,
            body: None,
        }
    }

    /// Feeds one chunk of input text.
    ///
    /// # Errors
    ///
    /// The first [`ParseError`] in the input, as soon as the offending
    /// character or token is seen.
    pub fn push_str(&mut self, chunk: &str) -> Result<(), ParseError> {
        for c in chunk.chars() {
            self.feed_char(c)?;
        }
        Ok(())
    }

    /// Feeds one chunk of raw bytes, carrying a UTF-8 sequence split across
    /// the chunk boundary into the next call.
    ///
    /// # Errors
    ///
    /// A [`ParseError`] for invalid UTF-8, plus everything [`push_str`]
    /// raises.
    ///
    /// [`push_str`]: StreamingParser::push_str
    pub fn push_bytes(&mut self, chunk: &[u8]) -> Result<(), ParseError> {
        let carried;
        let bytes: &[u8] = if self.utf8_carry.is_empty() {
            chunk
        } else {
            let mut buf = std::mem::take(&mut self.utf8_carry);
            buf.extend_from_slice(chunk);
            carried = buf;
            &carried
        };
        match std::str::from_utf8(bytes) {
            Ok(s) => self.push_str(s),
            Err(e) if e.error_len().is_some() => {
                Err(ParseError { line: self.line, message: "invalid UTF-8 in input".into() })
            }
            Err(e) => {
                let (head, tail) = bytes.split_at(e.valid_up_to());
                let tail = tail.to_vec();
                self.push_str(std::str::from_utf8(head).expect("validated prefix"))?;
                self.utf8_carry = tail;
                Ok(())
            }
        }
    }

    /// Flushes any partial token and returns the parsed network.
    ///
    /// # Errors
    ///
    /// A [`ParseError`] when the input ends mid-token, mid-element, or
    /// before the network's closing `}`.
    pub fn finish(mut self) -> Result<(String, Structure), ParseError> {
        if !self.utf8_carry.is_empty() {
            return Err(ParseError {
                line: self.line,
                message: "incomplete UTF-8 sequence at end of input".into(),
            });
        }
        match std::mem::replace(&mut self.lex, LexState::Ready) {
            LexState::Ready | LexState::InComment => {}
            LexState::SlashSeen => {
                return Err(ParseError {
                    line: self.line,
                    message: "stray '/' (use // for comments)".into(),
                })
            }
            LexState::InInt(v) => {
                self.tok_line = self.line;
                self.step(Tok::Int(v))?;
            }
            LexState::InIdent(s) => {
                self.tok_line = self.line;
                self.step(Tok::Ident(s))?;
            }
        }
        match self.st {
            St::Done => Ok((
                self.net_name.take().expect("a completed network has a name"),
                self.body.take().expect("a completed network has a body"),
            )),
            ref st => Err(ParseError {
                line: self.tok_line,
                message: format!("expected {}, found None", expected(st)),
            }),
        }
    }

    /// Advances the lexer by one character, dispatching completed tokens to
    /// the grammar.
    fn feed_char(&mut self, c: char) -> Result<(), ParseError> {
        // Close out a multi-character token this char does not extend, then
        // fall through so the char itself is processed from `Ready`.
        match &mut self.lex {
            LexState::InInt(v) => {
                if let Some(d) = c.to_digit(10) {
                    match v.checked_mul(10).and_then(|x| x.checked_add(u64::from(d))) {
                        Some(nv) => {
                            *v = nv;
                            return Ok(());
                        }
                        None => {
                            return Err(ParseError {
                                line: self.line,
                                message: "integer overflow".into(),
                            })
                        }
                    }
                }
                let v = *v;
                self.lex = LexState::Ready;
                self.step(Tok::Int(v))?;
            }
            LexState::InIdent(s) => {
                if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' {
                    s.push(c);
                    return Ok(());
                }
                let s = std::mem::take(s);
                self.lex = LexState::Ready;
                self.step(Tok::Ident(s))?;
            }
            _ => {}
        }
        match self.lex {
            LexState::InComment => {
                if c == '\n' {
                    self.line += 1;
                    self.lex = LexState::Ready;
                }
                Ok(())
            }
            LexState::SlashSeen => {
                if c == '/' {
                    self.lex = LexState::InComment;
                    Ok(())
                } else {
                    Err(ParseError {
                        line: self.line,
                        message: "stray '/' (use // for comments)".into(),
                    })
                }
            }
            LexState::Ready => match c {
                '\n' => {
                    self.line += 1;
                    Ok(())
                }
                c if c.is_whitespace() => Ok(()),
                '#' => {
                    self.lex = LexState::InComment;
                    Ok(())
                }
                '/' => {
                    self.lex = LexState::SlashSeen;
                    Ok(())
                }
                '{' | '}' | '(' | ')' | '=' | ',' | ';' => {
                    self.tok_line = self.line;
                    self.step(Tok::Sym(c))
                }
                c if c.is_ascii_digit() => {
                    self.tok_line = self.line;
                    self.lex = LexState::InInt(u64::from(c.to_digit(10).expect("ascii digit")));
                    Ok(())
                }
                c if c.is_alphabetic() || c == '_' => {
                    self.tok_line = self.line;
                    self.lex = LexState::InIdent(String::from(c));
                    Ok(())
                }
                other => Err(ParseError {
                    line: self.line,
                    message: format!("unexpected character {other:?}"),
                }),
            },
            _ => unreachable!("multi-char states were handled above"),
        }
    }

    fn terr(&self, message: String) -> ParseError {
        ParseError { line: self.tok_line, message }
    }

    /// Advances the grammar by one token.
    fn step(&mut self, tok: Tok) -> Result<(), ParseError> {
        self.st = match std::mem::replace(&mut self.st, St::Body) {
            St::KwNetwork => match tok {
                Tok::Ident(s) if s == "network" => St::NetName,
                other => {
                    return Err(self.terr(format!("expected \"network\", found {:?}", Some(other))))
                }
            },
            St::NetName => match tok {
                Tok::Ident(s) => {
                    self.net_name = Some(s);
                    St::NetOpen
                }
                other => return Err(self.terr(format!("expected a name, found {:?}", Some(other)))),
            },
            St::NetOpen => match tok {
                Tok::Sym('{') => {
                    self.frames.push(Frame::Body { parts: Vec::new(), kind: BodyKind::Top });
                    St::Body
                }
                other => return Err(self.terr(format!("expected '{{', found {:?}", Some(other)))),
            },
            St::Body => match tok {
                Tok::Sym('}') => self.close_body(),
                Tok::Ident(kw) => match kw.as_str() {
                    "seg" => {
                        self.seg = SegBuild::default();
                        St::SegStart
                    }
                    "wire" => St::WireSemi,
                    "series" => St::SeriesOpen,
                    "parallel" => St::ParallelName,
                    "sib" => St::SibName,
                    other => return Err(self.terr(format!("unknown element {other:?}"))),
                },
                other => {
                    return Err(self.terr(format!("expected an element, found {:?}", Some(other))))
                }
            },
            St::BranchGap => match tok {
                Tok::Ident(s) if s == "branch" => St::BranchOpen,
                Tok::Sym('}') => {
                    let Some(Frame::Parallel { name, branches }) = self.frames.pop() else {
                        unreachable!("branch gaps always have an open parallel frame")
                    };
                    attach(
                        &mut self.frames,
                        Structure::Parallel { branches, mux: MuxSpec { name } },
                    );
                    St::Body
                }
                other => return Err(self.terr(format!("expected '}}', found {:?}", Some(other)))),
            },
            St::BranchOpen => match tok {
                Tok::Sym('{') => {
                    self.frames.push(Frame::Body { parts: Vec::new(), kind: BodyKind::Branch });
                    St::Body
                }
                other => return Err(self.terr(format!("expected '{{', found {:?}", Some(other)))),
            },
            St::SegStart => match tok {
                Tok::Ident(s) if s == "len" => St::SegEq,
                Tok::Ident(s) => {
                    self.seg.name = Some(s);
                    St::SegLen
                }
                other => {
                    return Err(self.terr(format!("expected \"len\", found {:?}", Some(other))))
                }
            },
            St::SegLen => match tok {
                Tok::Ident(s) if s == "len" => St::SegEq,
                other => {
                    return Err(self.terr(format!("expected \"len\", found {:?}", Some(other))))
                }
            },
            St::SegEq => match tok {
                Tok::Sym('=') => St::SegVal,
                other => return Err(self.terr(format!("expected '=', found {:?}", Some(other)))),
            },
            St::SegVal => match tok {
                Tok::Int(v) => {
                    self.seg.len = u32::try_from(v)
                        .map_err(|_| self.terr("segment length too large".into()))?;
                    St::SegAfter
                }
                other => {
                    return Err(self.terr(format!("expected an integer, found {:?}", Some(other))))
                }
            },
            St::SegAfter => match tok {
                Tok::Ident(s) if s == "instrument" => St::InstOpen,
                Tok::Sym(';') => self.finish_segment(),
                other => return Err(self.terr(format!("expected ';', found {:?}", Some(other)))),
            },
            St::InstOpen => match tok {
                Tok::Sym('(') => {
                    self.seg.inst_name = None;
                    self.seg.inst_kind = Some(InstrumentKind::Generic);
                    St::InstAttr
                }
                other => return Err(self.terr(format!("expected '(', found {:?}", Some(other)))),
            },
            St::InstAttr => match tok {
                Tok::Ident(k) if k == "name" => St::InstNameEq,
                Tok::Ident(k) if k == "kind" => St::InstKindEq,
                Tok::Sym(',') => St::InstAttr,
                Tok::Sym(')') => {
                    self.seg.instrument = Some(InstrumentSpec {
                        name: self.seg.inst_name.take(),
                        kind: self.seg.inst_kind.take().expect("set when the list opened"),
                    });
                    St::SegSemi
                }
                other => {
                    return Err(self
                        .terr(format!("expected instrument attribute, found {:?}", Some(other))))
                }
            },
            St::InstNameEq => match tok {
                Tok::Sym('=') => St::InstNameVal,
                other => return Err(self.terr(format!("expected '=', found {:?}", Some(other)))),
            },
            St::InstNameVal => match tok {
                Tok::Ident(s) => {
                    self.seg.inst_name = Some(s);
                    St::InstAttr
                }
                other => return Err(self.terr(format!("expected a name, found {:?}", Some(other)))),
            },
            St::InstKindEq => match tok {
                Tok::Sym('=') => St::InstKindVal,
                other => return Err(self.terr(format!("expected '=', found {:?}", Some(other)))),
            },
            St::InstKindVal => match tok {
                Tok::Ident(kn) => {
                    self.seg.inst_kind = Some(
                        kind_from_name(&kn)
                            .ok_or_else(|| self.terr(format!("unknown instrument kind {kn:?}")))?,
                    );
                    St::InstAttr
                }
                other => return Err(self.terr(format!("expected a name, found {:?}", Some(other)))),
            },
            St::SegSemi => match tok {
                Tok::Sym(';') => self.finish_segment(),
                other => return Err(self.terr(format!("expected ';', found {:?}", Some(other)))),
            },
            St::WireSemi => match tok {
                Tok::Sym(';') => {
                    attach(&mut self.frames, Structure::Wire);
                    St::Body
                }
                other => return Err(self.terr(format!("expected ';', found {:?}", Some(other)))),
            },
            St::SeriesOpen => match tok {
                Tok::Sym('{') => {
                    self.frames.push(Frame::Body { parts: Vec::new(), kind: BodyKind::Series });
                    St::Body
                }
                other => return Err(self.terr(format!("expected '{{', found {:?}", Some(other)))),
            },
            St::ParallelName => match tok {
                Tok::Ident(s) => {
                    self.pending_name = Some(s);
                    St::ParallelOpen
                }
                Tok::Sym('{') => {
                    self.frames.push(Frame::Parallel { name: None, branches: Vec::new() });
                    St::BranchGap
                }
                other => return Err(self.terr(format!("expected '{{', found {:?}", Some(other)))),
            },
            St::ParallelOpen => match tok {
                Tok::Sym('{') => {
                    self.frames.push(Frame::Parallel {
                        name: self.pending_name.take(),
                        branches: Vec::new(),
                    });
                    St::BranchGap
                }
                other => return Err(self.terr(format!("expected '{{', found {:?}", Some(other)))),
            },
            St::SibName => match tok {
                Tok::Ident(s) => {
                    self.pending_name = Some(s);
                    St::SibOpen
                }
                Tok::Sym('{') => {
                    self.frames.push(Frame::Body {
                        parts: Vec::new(),
                        kind: BodyKind::Sib { name: None },
                    });
                    St::Body
                }
                other => return Err(self.terr(format!("expected '{{', found {:?}", Some(other)))),
            },
            St::SibOpen => match tok {
                Tok::Sym('{') => {
                    self.frames.push(Frame::Body {
                        parts: Vec::new(),
                        kind: BodyKind::Sib { name: self.pending_name.take() },
                    });
                    St::Body
                }
                other => return Err(self.terr(format!("expected '{{', found {:?}", Some(other)))),
            },
            St::Done => {
                return Err(self.terr(format!("trailing input starting with {tok:?}")));
            }
        };
        Ok(())
    }

    /// Closes the innermost body on its `}` and returns the follow state.
    fn close_body(&mut self) -> St {
        let Some(Frame::Body { parts, kind }) = self.frames.pop() else {
            unreachable!("body states always have an open body frame")
        };
        let body = Structure::Series(parts);
        match kind {
            BodyKind::Top => {
                self.body = Some(body);
                St::Done
            }
            BodyKind::Series => {
                attach(&mut self.frames, body);
                St::Body
            }
            BodyKind::Sib { name } => {
                attach(&mut self.frames, Structure::Sib { name, inner: Box::new(body) });
                St::Body
            }
            BodyKind::Branch => {
                match self.frames.last_mut() {
                    Some(Frame::Parallel { branches, .. }) => branches.push(body),
                    _ => unreachable!("branches open inside parallel frames"),
                }
                St::BranchGap
            }
        }
    }

    /// Attaches the assembled segment and returns to the body state.
    fn finish_segment(&mut self) -> St {
        let seg = std::mem::take(&mut self.seg);
        attach(
            &mut self.frames,
            Structure::Segment(SegmentSpec {
                name: seg.name,
                len: seg.len,
                instrument: seg.instrument,
            }),
        );
        St::Body
    }
}

/// The token class a grammar state expects — for end-of-input errors.
fn expected(st: &St) -> &'static str {
    match st {
        St::KwNetwork => "\"network\"",
        St::NetName | St::InstNameVal | St::InstKindVal => "a name",
        St::NetOpen
        | St::BranchOpen
        | St::SeriesOpen
        | St::ParallelName
        | St::ParallelOpen
        | St::SibName
        | St::SibOpen => "'{'",
        St::Body | St::BranchGap => "'}'",
        St::SegStart | St::SegLen => "\"len\"",
        St::SegEq | St::InstNameEq | St::InstKindEq => "'='",
        St::SegVal => "an integer",
        St::SegAfter | St::SegSemi | St::WireSemi => "';'",
        St::InstOpen => "'('",
        St::InstAttr => "an instrument attribute",
        St::Done => unreachable!("Done never raises an end-of-input error"),
    }
}

impl Structure {
    /// Flattens nested series and unwraps singleton series, producing the
    /// canonical shape the parser emits. Useful to compare structures across
    /// a print/parse roundtrip.
    #[must_use]
    pub fn normalized(&self) -> Structure {
        // Explicit continuation stack (same scheme as `Structure::build`'s
        // emitter): deeply nested structures normalize without call-stack
        // recursion.
        enum Frame<'a> {
            Series {
                iter: std::slice::Iter<'a, Structure>,
                flat: Vec<Structure>,
            },
            Parallel {
                iter: std::slice::Iter<'a, Structure>,
                out: Vec<Structure>,
                mux: &'a MuxSpec,
            },
            Sib {
                name: &'a Option<String>,
            },
        }

        let mut frames: Vec<Frame> = Vec::new();
        let mut pending: Option<&Structure> = Some(self);
        let mut done: Option<Structure> = None;
        loop {
            while let Some(s) = pending.take() {
                match s {
                    Self::Series(parts) => {
                        frames.push(Frame::Series { iter: parts.iter(), flat: Vec::new() });
                    }
                    Self::Parallel { branches, mux } => frames.push(Frame::Parallel {
                        iter: branches.iter(),
                        out: Vec::with_capacity(branches.len()),
                        mux,
                    }),
                    Self::Sib { name, inner } => {
                        frames.push(Frame::Sib { name });
                        pending = Some(inner);
                    }
                    leaf => done = Some(leaf.clone()),
                }
            }
            let Some(top) = frames.last_mut() else {
                return done.expect("the root normalizes to a result");
            };
            match top {
                Frame::Series { iter, flat } => {
                    if let Some(mut d) = done.take() {
                        // `Structure` has a manual `Drop`, so the normalized
                        // child cannot be destructured by value; drain nested
                        // series in place instead.
                        if let Self::Series(inner) = &mut d {
                            flat.append(inner);
                        } else {
                            flat.push(d);
                        }
                    }
                    pending = iter.next();
                }
                Frame::Parallel { iter, out, .. } => {
                    if let Some(d) = done.take() {
                        out.push(d);
                    }
                    pending = iter.next();
                }
                // A SIB has exactly one child; it closes below.
                Frame::Sib { .. } => {}
            }
            if pending.is_some() {
                continue;
            }
            match frames.pop().expect("an open frame was just inspected") {
                Frame::Series { mut flat, .. } => {
                    done = Some(if flat.len() == 1 {
                        flat.pop().expect("one element")
                    } else {
                        Self::Series(flat)
                    });
                }
                Frame::Parallel { out, mux, .. } => {
                    done = Some(Self::Parallel { branches: out, mux: mux.clone() });
                }
                Frame::Sib { name } => {
                    let inner = done.take().expect("a SIB inner normalizes to a result");
                    done = Some(Self::Sib { name: name.clone(), inner: Box::new(inner) });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r"
# A comment.
network demo {
  seg c0 len=8;
  sib s1 {
    seg d0 len=6 instrument(kind=bist);
  }
  parallel m0 {
    branch { seg c1 len=2 instrument(name=t0, kind=sensor); }
    branch { wire; }
  }
  // Another comment.
  seg c2 len=1;
}
";

    #[test]
    fn parses_the_example() {
        let (name, s) = parse_network(EXAMPLE).unwrap();
        assert_eq!(name, "demo");
        assert_eq!(s.count_segments(), 5); // c0, s1.cell, d0, c1, c2
        assert_eq!(s.count_muxes(), 2);
        assert_eq!(s.count_instruments(), 2);
        let (net, _) = s.build(&name).unwrap();
        assert_eq!(net.stats().segments, 5);
    }

    #[test]
    fn roundtrips_through_print_and_parse() {
        let (name, s) = parse_network(EXAMPLE).unwrap();
        let printed = print_network(&name, &s);
        let (name2, s2) = parse_network(&printed).unwrap();
        assert_eq!(name, name2);
        assert_eq!(s.normalized(), s2.normalized());
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "network x {\n  seg a len=;\n}";
        let err = parse_network(bad).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_unknown_elements() {
        let err = parse_network("network x { gadget; }").unwrap_err();
        assert!(err.message.contains("gadget"));
    }

    #[test]
    fn rejects_trailing_input() {
        let err = parse_network("network x { } network y { }").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn anonymous_segments_and_muxes_roundtrip() {
        let src = "network a { seg len=3; parallel { branch { seg len=1; } branch { wire; } } }";
        let (name, s) = parse_network(src).unwrap();
        let printed = print_network(&name, &s);
        let (_, s2) = parse_network(&printed).unwrap();
        assert_eq!(s.normalized(), s2.normalized());
    }

    #[test]
    fn normalized_flattens_nested_series() {
        let s = Structure::series(vec![
            Structure::series(vec![Structure::seg("a", 1), Structure::seg("b", 1)]),
            Structure::seg("c", 1),
        ]);
        match &s.normalized() {
            Structure::Series(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected series, got {other:?}"),
        }
    }

    #[test]
    fn deeply_nested_descriptions_parse_print_and_normalize_iteratively() {
        // The parser, printer, and normalizer all track nesting on explicit
        // stacks; the former recursive-descent versions overflowed the
        // test-thread stack well before this depth. Equality (`==`) is
        // deliberately avoided here: the derived `PartialEq` still recurses.
        const DEPTH: usize = 50_000;
        let mut src = String::from("network deep { ");
        for _ in 0..DEPTH {
            src.push_str("sib { ");
        }
        src.push_str("seg leaf len=1; ");
        for _ in 0..DEPTH {
            src.push_str("} ");
        }
        src.push('}');
        let (name, s) = parse_network(&src).unwrap();
        assert_eq!(name, "deep");
        assert_eq!(s.count_segments(), DEPTH + 1);
        assert_eq!(s.count_muxes(), DEPTH);
        let printed = print_network(&name, &s);
        let (_, s2) = parse_network(&printed).unwrap();
        let n2 = s2.normalized();
        assert_eq!(n2.count_segments(), DEPTH + 1);
        assert_eq!(n2.count_muxes(), DEPTH);
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let err = parse_network("network x { seg a len=99999999999999999999; }").unwrap_err();
        assert!(err.message.contains("overflow"));
    }

    #[test]
    fn chunked_pushes_match_the_one_shot_parse() {
        let (name, s) = parse_network(EXAMPLE).unwrap();
        // Any chunking — including one char at a time, splitting every token
        // and comment — must produce the identical structure.
        for chunk_len in [1, 2, 3, 7, 64] {
            let mut p = StreamingParser::new();
            let chars: Vec<char> = EXAMPLE.chars().collect();
            for chunk in chars.chunks(chunk_len) {
                p.push_str(&chunk.iter().collect::<String>()).unwrap();
            }
            let (name2, s2) = p.finish().unwrap();
            assert_eq!(name, name2, "chunk_len {chunk_len}");
            assert_eq!(s.normalized(), s2.normalized(), "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn byte_pushes_carry_split_utf8_sequences() {
        // The é in the comment is two bytes; push byte-by-byte so every
        // multi-byte sequence is split across a chunk boundary.
        let src = "network u { # caf\u{e9}\n seg a len=3; }";
        let mut p = StreamingParser::new();
        for b in src.as_bytes() {
            p.push_bytes(std::slice::from_ref(b)).unwrap();
        }
        let (name, s) = p.finish().unwrap();
        assert_eq!(name, "u");
        assert_eq!(s.count_segments(), 1);
        // A sequence left dangling at end of input is an error.
        let mut p = StreamingParser::new();
        p.push_bytes("network u { seg a len=3; }".as_bytes()).unwrap();
        p.push_bytes(&[0xc3]).unwrap();
        assert!(p.finish().unwrap_err().message.contains("UTF-8"));
        // An outright invalid byte fails immediately.
        let mut p = StreamingParser::new();
        assert!(p.push_bytes(&[0xff]).unwrap_err().message.contains("UTF-8"));
    }

    #[test]
    fn streaming_errors_surface_at_the_offending_chunk() {
        let mut p = StreamingParser::new();
        p.push_str("network x {\n  seg a len=").unwrap();
        let err = p.push_str(";\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("integer"));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut p = StreamingParser::new();
        p.push_str("network x { seg a len=3; ").unwrap();
        let err = p.finish().unwrap_err();
        assert!(err.message.contains("found None"), "{}", err.message);
        let p = StreamingParser::new();
        assert!(p.finish().is_err());
    }
}
