//! A small textual description language for structural RSNs.
//!
//! The format mirrors [`Structure`] one-to-one and is what the benchmark
//! suite and the examples use to persist networks:
//!
//! ```text
//! network demo {
//!   seg c0 len=8;
//!   sib s1 {
//!     seg d0 len=6 instrument(kind=bist);
//!   }
//!   parallel m0 {
//!     branch { seg c1 len=2; }
//!     branch { wire; }
//!   }
//! }
//! ```
//!
//! Body lists (`network`, `branch`, `sib`) are implicit series compositions.
//! Comments run from `#` or `//` to the end of the line.

use core::fmt;

use crate::instrument::InstrumentKind;
use crate::structure::{InstrumentSpec, MuxSpec, SegmentSpec, Structure};

/// Error raised when parsing the textual format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a `network <name> { ... }` description.
///
/// # Errors
///
/// Returns a [`ParseError`] with the line number of the first offending
/// token.
///
/// # Examples
///
/// ```
/// let (name, s) = rsn_model::format::parse_network("network t { seg a len=3; }")?;
/// assert_eq!(name, "t");
/// assert_eq!(s.count_segments(), 1);
/// # Ok::<(), rsn_model::format::ParseError>(())
/// ```
pub fn parse_network(input: &str) -> Result<(String, Structure), ParseError> {
    let mut p = Parser::new(input)?;
    p.expect_ident("network")?;
    let name = p.take_name()?;
    p.expect_sym('{')?;
    let body = p.parse_body()?;
    p.expect_sym('}')?;
    p.expect_eof()?;
    Ok((name, body))
}

/// Renders a structure in the textual format.
#[must_use]
pub fn print_network(name: &str, s: &Structure) -> String {
    let mut out = String::new();
    out.push_str(&format!("network {name} {{\n"));
    match s {
        Structure::Series(parts) => {
            for part in parts {
                print_element(part, 1, &mut out);
            }
        }
        other => print_element(other, 1, &mut out),
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_element(s: &Structure, depth: usize, out: &mut String) {
    match s {
        Structure::Segment(spec) => {
            indent(out, depth);
            out.push_str("seg");
            if let Some(n) = &spec.name {
                out.push(' ');
                out.push_str(n);
            }
            out.push_str(&format!(" len={}", spec.len));
            if let Some(inst) = &spec.instrument {
                out.push_str(" instrument(");
                let mut first = true;
                if let Some(n) = &inst.name {
                    out.push_str(&format!("name={n}"));
                    first = false;
                }
                if !first {
                    out.push_str(", ");
                }
                out.push_str(&format!("kind={}", kind_name(inst.kind)));
                out.push(')');
            }
            out.push_str(";\n");
        }
        Structure::Wire => {
            indent(out, depth);
            out.push_str("wire;\n");
        }
        Structure::Series(parts) => {
            indent(out, depth);
            out.push_str("series {\n");
            for part in parts {
                print_element(part, depth + 1, out);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Structure::Parallel { branches, mux } => {
            indent(out, depth);
            out.push_str("parallel");
            if let Some(n) = &mux.name {
                out.push(' ');
                out.push_str(n);
            }
            out.push_str(" {\n");
            for branch in branches {
                indent(out, depth + 1);
                out.push_str("branch {\n");
                match branch {
                    Structure::Series(parts) => {
                        for part in parts {
                            print_element(part, depth + 2, out);
                        }
                    }
                    other => print_element(other, depth + 2, out),
                }
                indent(out, depth + 1);
                out.push_str("}\n");
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Structure::Sib { name, inner } => {
            indent(out, depth);
            out.push_str("sib");
            if let Some(n) = name {
                out.push(' ');
                out.push_str(n);
            }
            out.push_str(" {\n");
            match inner.as_ref() {
                Structure::Series(parts) => {
                    for part in parts {
                        print_element(part, depth + 1, out);
                    }
                }
                other => print_element(other, depth + 1, out),
            }
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

fn kind_name(kind: InstrumentKind) -> &'static str {
    match kind {
        InstrumentKind::Sensor => "sensor",
        InstrumentKind::RuntimeAdaptive => "runtime",
        InstrumentKind::Bist => "bist",
        InstrumentKind::Debug => "debug",
        InstrumentKind::Generic => "generic",
    }
}

fn kind_from_name(name: &str) -> Option<InstrumentKind> {
    Some(match name {
        "sensor" => InstrumentKind::Sensor,
        "runtime" => InstrumentKind::RuntimeAdaptive,
        "bist" => InstrumentKind::Bist,
        "debug" => InstrumentKind::Debug,
        "generic" => InstrumentKind::Generic,
        _ => return None,
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Sym(char),
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, ParseError> {
        let mut toks = Vec::new();
        let mut chars = input.chars().peekable();
        let mut line = 1usize;
        while let Some(&c) = chars.peek() {
            match c {
                '\n' => {
                    line += 1;
                    chars.next();
                }
                c if c.is_whitespace() => {
                    chars.next();
                }
                '#' => {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                }
                '/' => {
                    chars.next();
                    if chars.peek() == Some(&'/') {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            chars.next();
                        }
                    } else {
                        return Err(ParseError {
                            line,
                            message: "stray '/' (use // for comments)".into(),
                        });
                    }
                }
                '{' | '}' | '(' | ')' | '=' | ',' | ';' => {
                    toks.push((line, Tok::Sym(c)));
                    chars.next();
                }
                c if c.is_ascii_digit() => {
                    let mut v = 0u64;
                    while let Some(&d) = chars.peek() {
                        if let Some(dig) = d.to_digit(10) {
                            v = v
                                .checked_mul(10)
                                .and_then(|v| v.checked_add(u64::from(dig)))
                                .ok_or_else(|| ParseError {
                                    line,
                                    message: "integer overflow".into(),
                                })?;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push((line, Tok::Int(v)));
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&d) = chars.peek() {
                        if d.is_alphanumeric() || d == '_' || d == '.' || d == '-' {
                            s.push(d);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push((line, Tok::Ident(s)));
                }
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("unexpected character {other:?}"),
                    })
                }
            }
        }
        Ok(Self { toks, pos: 0 })
    }

    /// Line of the token at `pos` (used before consuming).
    fn line_at_pos(&self) -> usize {
        self.toks.get(self.pos).map_or_else(|| self.toks.last().map_or(1, |(l, _)| *l), |(l, _)| *l)
    }

    /// Line of the most recently consumed token — the offending token for
    /// errors raised after a failed `next()` match.
    fn line(&self) -> usize {
        let i = self.pos.saturating_sub(1);
        self.toks.get(i).map_or(1, |(l, _)| *l)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), message: message.into() }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn expect_sym(&mut self, sym: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) if s == sym => Ok(()),
            other => Err(self.err(format!("expected {sym:?}, found {other:?}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(ParseError {
                line: self.line_at_pos(),
                message: format!("trailing input starting with {t:?}"),
            }),
        }
    }

    fn take_name(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected a name, found {other:?}"))),
        }
    }

    fn take_int(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(v),
            other => Err(self.err(format!("expected an integer, found {other:?}"))),
        }
    }

    /// Parses `element*` up to a closing `}` (not consumed) and wraps the
    /// result in a series.
    fn parse_body(&mut self) -> Result<Structure, ParseError> {
        let mut parts = Vec::new();
        while !matches!(self.peek(), Some(Tok::Sym('}')) | None) {
            parts.push(self.parse_element()?);
        }
        Ok(Structure::Series(parts))
    }

    fn parse_element(&mut self) -> Result<Structure, ParseError> {
        match self.next() {
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "seg" => self.parse_segment(),
                "wire" => {
                    self.expect_sym(';')?;
                    Ok(Structure::Wire)
                }
                "series" => {
                    self.expect_sym('{')?;
                    let body = self.parse_body()?;
                    self.expect_sym('}')?;
                    Ok(body)
                }
                "parallel" => self.parse_parallel(),
                "sib" => self.parse_sib(),
                other => Err(self.err(format!("unknown element {other:?}"))),
            },
            other => Err(self.err(format!("expected an element, found {other:?}"))),
        }
    }

    fn parse_segment(&mut self) -> Result<Structure, ParseError> {
        let name = match self.peek() {
            Some(Tok::Ident(s)) if s != "len" => {
                let n = s.clone();
                self.pos += 1;
                Some(n)
            }
            _ => None,
        };
        self.expect_ident("len")?;
        self.expect_sym('=')?;
        let len64 = self.take_int()?;
        let len = u32::try_from(len64).map_err(|_| self.err("segment length too large"))?;
        let mut instrument = None;
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "instrument") {
            self.pos += 1;
            self.expect_sym('(')?;
            let mut iname = None;
            let mut kind = InstrumentKind::Generic;
            loop {
                match self.next() {
                    Some(Tok::Ident(k)) if k == "name" => {
                        self.expect_sym('=')?;
                        iname = Some(self.take_name()?);
                    }
                    Some(Tok::Ident(k)) if k == "kind" => {
                        self.expect_sym('=')?;
                        let kn = self.take_name()?;
                        kind = kind_from_name(&kn)
                            .ok_or_else(|| self.err(format!("unknown instrument kind {kn:?}")))?;
                    }
                    Some(Tok::Sym(')')) => break,
                    Some(Tok::Sym(',')) => {}
                    other => {
                        return Err(
                            self.err(format!("expected instrument attribute, found {other:?}"))
                        )
                    }
                }
            }
            instrument = Some(InstrumentSpec { name: iname, kind });
        }
        self.expect_sym(';')?;
        Ok(Structure::Segment(SegmentSpec { name, len, instrument }))
    }

    fn parse_parallel(&mut self) -> Result<Structure, ParseError> {
        let name = match self.peek() {
            Some(Tok::Ident(s)) => {
                let n = s.clone();
                self.pos += 1;
                Some(n)
            }
            _ => None,
        };
        self.expect_sym('{')?;
        let mut branches = Vec::new();
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "branch") {
            self.pos += 1;
            self.expect_sym('{')?;
            branches.push(self.parse_body()?);
            self.expect_sym('}')?;
        }
        self.expect_sym('}')?;
        Ok(Structure::Parallel { branches, mux: MuxSpec { name } })
    }

    fn parse_sib(&mut self) -> Result<Structure, ParseError> {
        let name = match self.peek() {
            Some(Tok::Ident(s)) => {
                let n = s.clone();
                self.pos += 1;
                Some(n)
            }
            _ => None,
        };
        self.expect_sym('{')?;
        let inner = self.parse_body()?;
        self.expect_sym('}')?;
        Ok(Structure::Sib { name, inner: Box::new(inner) })
    }
}

impl Structure {
    /// Flattens nested series and unwraps singleton series, producing the
    /// canonical shape the parser emits. Useful to compare structures across
    /// a print/parse roundtrip.
    #[must_use]
    pub fn normalized(&self) -> Structure {
        match self {
            Self::Series(parts) => {
                let mut flat = Vec::new();
                for p in parts {
                    match p.normalized() {
                        Self::Series(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("one element")
                } else {
                    Self::Series(flat)
                }
            }
            Self::Parallel { branches, mux } => Self::Parallel {
                branches: branches.iter().map(Self::normalized).collect(),
                mux: mux.clone(),
            },
            Self::Sib { name, inner } => {
                Self::Sib { name: name.clone(), inner: Box::new(inner.normalized()) }
            }
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r"
# A comment.
network demo {
  seg c0 len=8;
  sib s1 {
    seg d0 len=6 instrument(kind=bist);
  }
  parallel m0 {
    branch { seg c1 len=2 instrument(name=t0, kind=sensor); }
    branch { wire; }
  }
  // Another comment.
  seg c2 len=1;
}
";

    #[test]
    fn parses_the_example() {
        let (name, s) = parse_network(EXAMPLE).unwrap();
        assert_eq!(name, "demo");
        assert_eq!(s.count_segments(), 5); // c0, s1.cell, d0, c1, c2
        assert_eq!(s.count_muxes(), 2);
        assert_eq!(s.count_instruments(), 2);
        let (net, _) = s.build(&name).unwrap();
        assert_eq!(net.stats().segments, 5);
    }

    #[test]
    fn roundtrips_through_print_and_parse() {
        let (name, s) = parse_network(EXAMPLE).unwrap();
        let printed = print_network(&name, &s);
        let (name2, s2) = parse_network(&printed).unwrap();
        assert_eq!(name, name2);
        assert_eq!(s.normalized(), s2.normalized());
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "network x {\n  seg a len=;\n}";
        let err = parse_network(bad).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_unknown_elements() {
        let err = parse_network("network x { gadget; }").unwrap_err();
        assert!(err.message.contains("gadget"));
    }

    #[test]
    fn rejects_trailing_input() {
        let err = parse_network("network x { } network y { }").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn anonymous_segments_and_muxes_roundtrip() {
        let src = "network a { seg len=3; parallel { branch { seg len=1; } branch { wire; } } }";
        let (name, s) = parse_network(src).unwrap();
        let printed = print_network(&name, &s);
        let (_, s2) = parse_network(&printed).unwrap();
        assert_eq!(s.normalized(), s2.normalized());
    }

    #[test]
    fn normalized_flattens_nested_series() {
        let s = Structure::series(vec![
            Structure::series(vec![Structure::seg("a", 1), Structure::seg("b", 1)]),
            Structure::seg("c", 1),
        ]);
        match s.normalized() {
            Structure::Series(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected series, got {other:?}"),
        }
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let err = parse_network("network x { seg a len=99999999999999999999; }").unwrap_err();
        assert!(err.message.contains("overflow"));
    }
}
