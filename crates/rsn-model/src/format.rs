//! A small textual description language for structural RSNs.
//!
//! The format mirrors [`Structure`] one-to-one and is what the benchmark
//! suite and the examples use to persist networks:
//!
//! ```text
//! network demo {
//!   seg c0 len=8;
//!   sib s1 {
//!     seg d0 len=6 instrument(kind=bist);
//!   }
//!   parallel m0 {
//!     branch { seg c1 len=2; }
//!     branch { wire; }
//!   }
//! }
//! ```
//!
//! Body lists (`network`, `branch`, `sib`) are implicit series compositions.
//! Comments run from `#` or `//` to the end of the line.

use core::fmt;

use crate::instrument::InstrumentKind;
use crate::structure::{InstrumentSpec, MuxSpec, SegmentSpec, Structure};

/// Error raised when parsing the textual format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a `network <name> { ... }` description.
///
/// # Errors
///
/// Returns a [`ParseError`] with the line number of the first offending
/// token.
///
/// # Examples
///
/// ```
/// let (name, s) = rsn_model::format::parse_network("network t { seg a len=3; }")?;
/// assert_eq!(name, "t");
/// assert_eq!(s.count_segments(), 1);
/// # Ok::<(), rsn_model::format::ParseError>(())
/// ```
pub fn parse_network(input: &str) -> Result<(String, Structure), ParseError> {
    let mut p = Parser::new(input)?;
    p.expect_ident("network")?;
    let name = p.take_name()?;
    p.expect_sym('{')?;
    let body = p.parse_body()?;
    p.expect_sym('}')?;
    p.expect_eof()?;
    Ok((name, body))
}

/// Renders a structure in the textual format.
#[must_use]
pub fn print_network(name: &str, s: &Structure) -> String {
    let mut out = String::new();
    out.push_str(&format!("network {name} {{\n"));
    match s {
        Structure::Series(parts) => {
            for part in parts {
                print_element(part, 1, &mut out);
            }
        }
        other => print_element(other, 1, &mut out),
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    // Indentation is purely cosmetic (whitespace is insignificant to the
    // parser); cap it so printing a 10⁵-level-deep tower stays linear in the
    // structure size instead of quadratic.
    const MAX_INDENT: usize = 40;
    for _ in 0..depth.min(MAX_INDENT) {
        out.push_str("  ");
    }
}

fn print_element(s: &Structure, depth: usize, out: &mut String) {
    /// One unit of pending print work; kept on an explicit stack so deeply
    /// nested structures render without call-stack recursion.
    enum Task<'a> {
        /// Render one element at the given depth.
        El(&'a Structure, usize),
        /// Render a structure as an implicit series body (sib inners and
        /// parallel branches print their series parts unwrapped).
        Body(&'a Structure, usize),
        /// Emit a `}` line closing a block at the given depth.
        Close(usize),
        /// Emit an indented `branch {` opener.
        OpenBranch(usize),
    }

    let mut stack = vec![Task::El(s, depth)];
    while let Some(task) = stack.pop() {
        match task {
            Task::Close(depth) => {
                indent(out, depth);
                out.push_str("}\n");
            }
            Task::OpenBranch(depth) => {
                indent(out, depth);
                out.push_str("branch {\n");
            }
            Task::Body(s, depth) => match s {
                Structure::Series(parts) => {
                    stack.extend(parts.iter().rev().map(|p| Task::El(p, depth)));
                }
                other => stack.push(Task::El(other, depth)),
            },
            Task::El(s, depth) => match s {
                Structure::Segment(spec) => {
                    indent(out, depth);
                    out.push_str("seg");
                    if let Some(n) = &spec.name {
                        out.push(' ');
                        out.push_str(n);
                    }
                    out.push_str(&format!(" len={}", spec.len));
                    if let Some(inst) = &spec.instrument {
                        out.push_str(" instrument(");
                        let mut first = true;
                        if let Some(n) = &inst.name {
                            out.push_str(&format!("name={n}"));
                            first = false;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("kind={}", kind_name(inst.kind)));
                        out.push(')');
                    }
                    out.push_str(";\n");
                }
                Structure::Wire => {
                    indent(out, depth);
                    out.push_str("wire;\n");
                }
                Structure::Series(parts) => {
                    indent(out, depth);
                    out.push_str("series {\n");
                    stack.push(Task::Close(depth));
                    stack.extend(parts.iter().rev().map(|p| Task::El(p, depth + 1)));
                }
                Structure::Parallel { branches, mux } => {
                    indent(out, depth);
                    out.push_str("parallel");
                    if let Some(n) = &mux.name {
                        out.push(' ');
                        out.push_str(n);
                    }
                    out.push_str(" {\n");
                    stack.push(Task::Close(depth));
                    for branch in branches.iter().rev() {
                        stack.push(Task::Close(depth + 1));
                        stack.push(Task::Body(branch, depth + 2));
                        stack.push(Task::OpenBranch(depth + 1));
                    }
                }
                Structure::Sib { name, inner } => {
                    indent(out, depth);
                    out.push_str("sib");
                    if let Some(n) = name {
                        out.push(' ');
                        out.push_str(n);
                    }
                    out.push_str(" {\n");
                    stack.push(Task::Close(depth));
                    stack.push(Task::Body(inner, depth + 1));
                }
            },
        }
    }
}

fn kind_name(kind: InstrumentKind) -> &'static str {
    match kind {
        InstrumentKind::Sensor => "sensor",
        InstrumentKind::RuntimeAdaptive => "runtime",
        InstrumentKind::Bist => "bist",
        InstrumentKind::Debug => "debug",
        InstrumentKind::Generic => "generic",
    }
}

fn kind_from_name(name: &str) -> Option<InstrumentKind> {
    Some(match name {
        "sensor" => InstrumentKind::Sensor,
        "runtime" => InstrumentKind::RuntimeAdaptive,
        "bist" => InstrumentKind::Bist,
        "debug" => InstrumentKind::Debug,
        "generic" => InstrumentKind::Generic,
        _ => return None,
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Sym(char),
}

/// A streaming recursive-descent-shaped parser.
///
/// Tokens are lexed on demand with a single token of lookahead, so parsing a
/// generated multi-hundred-megabyte network description never materializes a
/// token vector — peak memory is bounded by the output [`Structure`], not by
/// the input text. Nesting is tracked on an explicit frame stack (see
/// [`Parser::parse_body`]), so arbitrarily deep descriptions cannot overflow
/// the call stack either.
struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    /// Line the lexer is currently on.
    line: usize,
    /// One-token lookahead; `None` only at end of input.
    lookahead: Option<(usize, Tok)>,
    /// Line of the most recently consumed token (for error reports).
    last_line: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Result<Self, ParseError> {
        let mut p =
            Self { chars: input.chars().peekable(), line: 1, lookahead: None, last_line: 1 };
        p.lookahead = p.lex()?;
        Ok(p)
    }

    /// Lexes the next token from the raw input.
    fn lex(&mut self) -> Result<Option<(usize, Tok)>, ParseError> {
        while let Some(&c) = self.chars.peek() {
            match c {
                '\n' => {
                    self.line += 1;
                    self.chars.next();
                }
                c if c.is_whitespace() => {
                    self.chars.next();
                }
                '#' => {
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.chars.next();
                    }
                }
                '/' => {
                    self.chars.next();
                    if self.chars.peek() == Some(&'/') {
                        while let Some(&c) = self.chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.chars.next();
                        }
                    } else {
                        return Err(ParseError {
                            line: self.line,
                            message: "stray '/' (use // for comments)".into(),
                        });
                    }
                }
                '{' | '}' | '(' | ')' | '=' | ',' | ';' => {
                    self.chars.next();
                    return Ok(Some((self.line, Tok::Sym(c))));
                }
                c if c.is_ascii_digit() => {
                    let mut v = 0u64;
                    while let Some(&d) = self.chars.peek() {
                        if let Some(dig) = d.to_digit(10) {
                            v = v
                                .checked_mul(10)
                                .and_then(|v| v.checked_add(u64::from(dig)))
                                .ok_or_else(|| ParseError {
                                    line: self.line,
                                    message: "integer overflow".into(),
                                })?;
                            self.chars.next();
                        } else {
                            break;
                        }
                    }
                    return Ok(Some((self.line, Tok::Int(v))));
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&d) = self.chars.peek() {
                        if d.is_alphanumeric() || d == '_' || d == '.' || d == '-' {
                            s.push(d);
                            self.chars.next();
                        } else {
                            break;
                        }
                    }
                    return Ok(Some((self.line, Tok::Ident(s))));
                }
                other => {
                    return Err(ParseError {
                        line: self.line,
                        message: format!("unexpected character {other:?}"),
                    })
                }
            }
        }
        Ok(None)
    }

    /// Line at the lookahead position (used before consuming).
    fn line_at_pos(&self) -> usize {
        self.lookahead.as_ref().map_or(self.last_line, |(l, _)| *l)
    }

    /// Line of the most recently consumed token — the offending token for
    /// errors raised after a failed `next()` match.
    fn last_line(&self) -> usize {
        self.last_line
    }

    fn peek(&self) -> Option<&Tok> {
        self.lookahead.as_ref().map(|(_, t)| t)
    }

    fn next(&mut self) -> Result<Option<Tok>, ParseError> {
        let t = self.lookahead.take();
        match t {
            Some((l, t)) => {
                self.last_line = l;
                self.lookahead = self.lex()?;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.last_line(), message: message.into() }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next()? {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn expect_sym(&mut self, sym: char) -> Result<(), ParseError> {
        match self.next()? {
            Some(Tok::Sym(s)) if s == sym => Ok(()),
            other => Err(self.err(format!("expected {sym:?}, found {other:?}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(ParseError {
                line: self.line_at_pos(),
                message: format!("trailing input starting with {t:?}"),
            }),
        }
    }

    fn take_name(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected a name, found {other:?}"))),
        }
    }

    fn take_int(&mut self) -> Result<u64, ParseError> {
        match self.next()? {
            Some(Tok::Int(v)) => Ok(v),
            other => Err(self.err(format!("expected an integer, found {other:?}"))),
        }
    }

    /// Consumes the optional leading name of a `parallel`/`sib` element.
    fn opt_name(&mut self) -> Result<Option<String>, ParseError> {
        if matches!(self.peek(), Some(Tok::Ident(_))) {
            self.take_name().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Parses `element*` up to a closing `}` (not consumed) and wraps the
    /// result in a series.
    ///
    /// Nesting is tracked on an explicit frame stack, so arbitrarily deep
    /// `sib`/`series`/`parallel` towers parse in O(depth) heap instead of
    /// call-stack recursion. The frames replay the former recursive-descent
    /// order exactly.
    fn parse_body(&mut self) -> Result<Structure, ParseError> {
        /// What to build when a body's closing `}` is reached.
        enum BodyKind {
            /// The outermost body; its `}` is consumed by the caller.
            Top,
            /// A `series { ... }` element.
            Series,
            /// A `sib name? { ... }` element.
            Sib { name: Option<String> },
            /// A `branch { ... }` of the enclosing parallel frame.
            Branch,
        }
        enum Frame {
            /// An implicit series collecting elements.
            Body { parts: Vec<Structure>, kind: BodyKind },
            /// A parallel section between branches.
            Parallel { name: Option<String>, branches: Vec<Structure> },
        }
        fn attach(frames: &mut [Frame], s: Structure) {
            match frames.last_mut() {
                Some(Frame::Body { parts, .. }) => parts.push(s),
                _ => unreachable!("elements always attach to an open body"),
            }
        }

        let mut frames = vec![Frame::Body { parts: Vec::new(), kind: BodyKind::Top }];
        loop {
            if matches!(frames.last(), Some(Frame::Parallel { .. })) {
                // Between branches: either another `branch { ... }` opens or
                // the section closes.
                if matches!(self.peek(), Some(Tok::Ident(s)) if s == "branch") {
                    let _ = self.next()?;
                    self.expect_sym('{')?;
                    frames.push(Frame::Body { parts: Vec::new(), kind: BodyKind::Branch });
                } else {
                    self.expect_sym('}')?;
                    let Some(Frame::Parallel { name, branches }) = frames.pop() else {
                        unreachable!("top frame was just inspected")
                    };
                    attach(&mut frames, Structure::Parallel { branches, mux: MuxSpec { name } });
                }
                continue;
            }
            if matches!(self.peek(), Some(Tok::Sym('}')) | None) {
                // Close the innermost body.
                let Some(Frame::Body { parts, kind }) = frames.pop() else {
                    unreachable!("top frame was just inspected")
                };
                let body = Structure::Series(parts);
                match kind {
                    BodyKind::Top => return Ok(body),
                    BodyKind::Series => {
                        self.expect_sym('}')?;
                        attach(&mut frames, body);
                    }
                    BodyKind::Sib { name } => {
                        self.expect_sym('}')?;
                        attach(&mut frames, Structure::Sib { name, inner: Box::new(body) });
                    }
                    BodyKind::Branch => {
                        self.expect_sym('}')?;
                        match frames.last_mut() {
                            Some(Frame::Parallel { branches, .. }) => branches.push(body),
                            _ => unreachable!("branches open inside parallel frames"),
                        }
                    }
                }
                continue;
            }
            // An element starts here.
            match self.next()? {
                Some(Tok::Ident(kw)) => match kw.as_str() {
                    "seg" => {
                        let seg = self.parse_segment()?;
                        attach(&mut frames, seg);
                    }
                    "wire" => {
                        self.expect_sym(';')?;
                        attach(&mut frames, Structure::Wire);
                    }
                    "series" => {
                        self.expect_sym('{')?;
                        frames.push(Frame::Body { parts: Vec::new(), kind: BodyKind::Series });
                    }
                    "parallel" => {
                        let name = self.opt_name()?;
                        self.expect_sym('{')?;
                        frames.push(Frame::Parallel { name, branches: Vec::new() });
                    }
                    "sib" => {
                        let name = self.opt_name()?;
                        self.expect_sym('{')?;
                        frames
                            .push(Frame::Body { parts: Vec::new(), kind: BodyKind::Sib { name } });
                    }
                    other => return Err(self.err(format!("unknown element {other:?}"))),
                },
                other => return Err(self.err(format!("expected an element, found {other:?}"))),
            }
        }
    }

    fn parse_segment(&mut self) -> Result<Structure, ParseError> {
        let name = match self.peek() {
            Some(Tok::Ident(s)) if s != "len" => Some(self.take_name()?),
            _ => None,
        };
        self.expect_ident("len")?;
        self.expect_sym('=')?;
        let len64 = self.take_int()?;
        let len = u32::try_from(len64).map_err(|_| self.err("segment length too large"))?;
        let mut instrument = None;
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "instrument") {
            let _ = self.next()?;
            self.expect_sym('(')?;
            let mut iname = None;
            let mut kind = InstrumentKind::Generic;
            loop {
                match self.next()? {
                    Some(Tok::Ident(k)) if k == "name" => {
                        self.expect_sym('=')?;
                        iname = Some(self.take_name()?);
                    }
                    Some(Tok::Ident(k)) if k == "kind" => {
                        self.expect_sym('=')?;
                        let kn = self.take_name()?;
                        kind = kind_from_name(&kn)
                            .ok_or_else(|| self.err(format!("unknown instrument kind {kn:?}")))?;
                    }
                    Some(Tok::Sym(')')) => break,
                    Some(Tok::Sym(',')) => {}
                    other => {
                        return Err(
                            self.err(format!("expected instrument attribute, found {other:?}"))
                        )
                    }
                }
            }
            instrument = Some(InstrumentSpec { name: iname, kind });
        }
        self.expect_sym(';')?;
        Ok(Structure::Segment(SegmentSpec { name, len, instrument }))
    }
}

impl Structure {
    /// Flattens nested series and unwraps singleton series, producing the
    /// canonical shape the parser emits. Useful to compare structures across
    /// a print/parse roundtrip.
    #[must_use]
    pub fn normalized(&self) -> Structure {
        // Explicit continuation stack (same scheme as `Structure::build`'s
        // emitter): deeply nested structures normalize without call-stack
        // recursion.
        enum Frame<'a> {
            Series {
                iter: std::slice::Iter<'a, Structure>,
                flat: Vec<Structure>,
            },
            Parallel {
                iter: std::slice::Iter<'a, Structure>,
                out: Vec<Structure>,
                mux: &'a MuxSpec,
            },
            Sib {
                name: &'a Option<String>,
            },
        }

        let mut frames: Vec<Frame> = Vec::new();
        let mut pending: Option<&Structure> = Some(self);
        let mut done: Option<Structure> = None;
        loop {
            while let Some(s) = pending.take() {
                match s {
                    Self::Series(parts) => {
                        frames.push(Frame::Series { iter: parts.iter(), flat: Vec::new() });
                    }
                    Self::Parallel { branches, mux } => frames.push(Frame::Parallel {
                        iter: branches.iter(),
                        out: Vec::with_capacity(branches.len()),
                        mux,
                    }),
                    Self::Sib { name, inner } => {
                        frames.push(Frame::Sib { name });
                        pending = Some(inner);
                    }
                    leaf => done = Some(leaf.clone()),
                }
            }
            let Some(top) = frames.last_mut() else {
                return done.expect("the root normalizes to a result");
            };
            match top {
                Frame::Series { iter, flat } => {
                    if let Some(mut d) = done.take() {
                        // `Structure` has a manual `Drop`, so the normalized
                        // child cannot be destructured by value; drain nested
                        // series in place instead.
                        if let Self::Series(inner) = &mut d {
                            flat.append(inner);
                        } else {
                            flat.push(d);
                        }
                    }
                    pending = iter.next();
                }
                Frame::Parallel { iter, out, .. } => {
                    if let Some(d) = done.take() {
                        out.push(d);
                    }
                    pending = iter.next();
                }
                // A SIB has exactly one child; it closes below.
                Frame::Sib { .. } => {}
            }
            if pending.is_some() {
                continue;
            }
            match frames.pop().expect("an open frame was just inspected") {
                Frame::Series { mut flat, .. } => {
                    done = Some(if flat.len() == 1 {
                        flat.pop().expect("one element")
                    } else {
                        Self::Series(flat)
                    });
                }
                Frame::Parallel { out, mux, .. } => {
                    done = Some(Self::Parallel { branches: out, mux: mux.clone() });
                }
                Frame::Sib { name } => {
                    let inner = done.take().expect("a SIB inner normalizes to a result");
                    done = Some(Self::Sib { name: name.clone(), inner: Box::new(inner) });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r"
# A comment.
network demo {
  seg c0 len=8;
  sib s1 {
    seg d0 len=6 instrument(kind=bist);
  }
  parallel m0 {
    branch { seg c1 len=2 instrument(name=t0, kind=sensor); }
    branch { wire; }
  }
  // Another comment.
  seg c2 len=1;
}
";

    #[test]
    fn parses_the_example() {
        let (name, s) = parse_network(EXAMPLE).unwrap();
        assert_eq!(name, "demo");
        assert_eq!(s.count_segments(), 5); // c0, s1.cell, d0, c1, c2
        assert_eq!(s.count_muxes(), 2);
        assert_eq!(s.count_instruments(), 2);
        let (net, _) = s.build(&name).unwrap();
        assert_eq!(net.stats().segments, 5);
    }

    #[test]
    fn roundtrips_through_print_and_parse() {
        let (name, s) = parse_network(EXAMPLE).unwrap();
        let printed = print_network(&name, &s);
        let (name2, s2) = parse_network(&printed).unwrap();
        assert_eq!(name, name2);
        assert_eq!(s.normalized(), s2.normalized());
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "network x {\n  seg a len=;\n}";
        let err = parse_network(bad).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_unknown_elements() {
        let err = parse_network("network x { gadget; }").unwrap_err();
        assert!(err.message.contains("gadget"));
    }

    #[test]
    fn rejects_trailing_input() {
        let err = parse_network("network x { } network y { }").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn anonymous_segments_and_muxes_roundtrip() {
        let src = "network a { seg len=3; parallel { branch { seg len=1; } branch { wire; } } }";
        let (name, s) = parse_network(src).unwrap();
        let printed = print_network(&name, &s);
        let (_, s2) = parse_network(&printed).unwrap();
        assert_eq!(s.normalized(), s2.normalized());
    }

    #[test]
    fn normalized_flattens_nested_series() {
        let s = Structure::series(vec![
            Structure::series(vec![Structure::seg("a", 1), Structure::seg("b", 1)]),
            Structure::seg("c", 1),
        ]);
        match &s.normalized() {
            Structure::Series(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected series, got {other:?}"),
        }
    }

    #[test]
    fn deeply_nested_descriptions_parse_print_and_normalize_iteratively() {
        // The parser, printer, and normalizer all track nesting on explicit
        // stacks; the former recursive-descent versions overflowed the
        // test-thread stack well before this depth. Equality (`==`) is
        // deliberately avoided here: the derived `PartialEq` still recurses.
        const DEPTH: usize = 50_000;
        let mut src = String::from("network deep { ");
        for _ in 0..DEPTH {
            src.push_str("sib { ");
        }
        src.push_str("seg leaf len=1; ");
        for _ in 0..DEPTH {
            src.push_str("} ");
        }
        src.push('}');
        let (name, s) = parse_network(&src).unwrap();
        assert_eq!(name, "deep");
        assert_eq!(s.count_segments(), DEPTH + 1);
        assert_eq!(s.count_muxes(), DEPTH);
        let printed = print_network(&name, &s);
        let (_, s2) = parse_network(&printed).unwrap();
        let n2 = s2.normalized();
        assert_eq!(n2.count_segments(), DEPTH + 1);
        assert_eq!(n2.count_muxes(), DEPTH);
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let err = parse_network("network x { seg a len=99999999999999999999; }").unwrap_err();
        assert!(err.message.contains("overflow"));
    }
}
