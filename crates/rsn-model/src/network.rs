//! The [`ScanNetwork`] graph: storage, construction, and validation.

use serde::{Deserialize, Serialize};

use crate::error::NetworkError;
use crate::ids::{InstrumentId, NodeId};
use crate::instrument::{Instrument, InstrumentKind};
use crate::primitive::{ControlSource, Mux, Node, NodeKind, Segment};

/// A reconfigurable scan network modeled as a directed graph from one primary
/// scan-in port to one primary scan-out port (§III of the paper).
///
/// Vertices are scan primitives (segments and multiplexers), fan-outs, and
/// the two ports; edges are direct connectivities. Networks are built either
/// through [`NetworkBuilder`] (raw graph construction) or from a structural
/// series-parallel description via
/// [`Structure::build`](crate::structure::Structure::build).
///
/// # Examples
///
/// ```
/// use rsn_model::{NetworkBuilder, Segment};
///
/// let mut b = NetworkBuilder::new("tiny");
/// let s0 = b.add_segment("c0", Segment::new(4));
/// let s1 = b.add_segment("c1", Segment::new(2));
/// b.connect(b.scan_in(), s0)?;
/// b.connect(s0, s1)?;
/// b.connect(s1, b.scan_out())?;
/// let net = b.finish()?;
/// assert_eq!(net.stats().segments, 2);
/// # Ok::<(), rsn_model::NetworkError>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScanNetwork {
    name: String,
    nodes: Vec<Node>,
    instruments: Vec<Instrument>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    scan_in: NodeId,
    scan_out: NodeId,
}

/// Aggregate size figures of a network (columns 1–2 of Table I).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of scan segments (including SIB control cells).
    pub segments: usize,
    /// Number of scan multiplexers (including SIB bypass multiplexers).
    pub muxes: usize,
    /// Number of fan-out vertices.
    pub fanouts: usize,
    /// Number of embedded instruments.
    pub instruments: usize,
    /// Total number of scan cells over all segments.
    pub scan_cells: u64,
}

impl ScanNetwork {
    /// The network's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primary scan-in port.
    #[must_use]
    pub fn scan_in(&self) -> NodeId {
        self.scan_in
    }

    /// The primary scan-out port.
    #[must_use]
    pub fn scan_out(&self) -> NodeId {
        self.scan_out
    }

    /// Number of vertices (including ports and fan-outs).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the node stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; ids obtained from this network are
    /// always in range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the node stored under `id`, or `None` when out of range.
    #[must_use]
    pub fn get_node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Iterates over all `(id, node)` pairs in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId::new(i), n))
    }

    /// Iterates over the ids of all scan segments.
    pub fn segments(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| n.kind.is_segment()).map(|(id, _)| id)
    }

    /// Iterates over the ids of all scan multiplexers.
    pub fn muxes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| n.kind.is_mux()).map(|(id, _)| id)
    }

    /// Iterates over the ids of all scan primitives (segments and muxes).
    pub fn primitives(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| n.kind.is_primitive()).map(|(id, _)| id)
    }

    /// Successor nodes of `id`.
    #[must_use]
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// Predecessor nodes of `id`. For multiplexers the order matches the
    /// select-port order.
    #[must_use]
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// Returns the instrument stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn instrument(&self, id: InstrumentId) -> &Instrument {
        &self.instruments[id.index()]
    }

    /// Iterates over all `(id, instrument)` pairs.
    pub fn instruments(&self) -> impl Iterator<Item = (InstrumentId, &Instrument)> + '_ {
        self.instruments.iter().enumerate().map(|(i, inst)| (InstrumentId::new(i), inst))
    }

    /// Number of embedded instruments.
    #[must_use]
    pub fn instrument_count(&self) -> usize {
        self.instruments.len()
    }

    /// Returns the instrument hosted by segment `seg`, if any.
    #[must_use]
    pub fn instrument_at(&self, seg: NodeId) -> Option<InstrumentId> {
        self.node(seg).kind.as_segment().and_then(|s| s.instrument)
    }

    /// Returns the length in scan cells of segment `seg`.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is not a segment.
    #[must_use]
    pub fn segment_len(&self, seg: NodeId) -> u32 {
        self.node(seg).kind.as_segment().expect("node is a segment").len
    }

    /// Computes aggregate size figures.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        let mut stats = NetworkStats { instruments: self.instruments.len(), ..Default::default() };
        for node in &self.nodes {
            match &node.kind {
                NodeKind::Segment(s) => {
                    stats.segments += 1;
                    stats.scan_cells += u64::from(s.len);
                }
                NodeKind::Mux(_) => stats.muxes += 1,
                NodeKind::Fanout => stats.fanouts += 1,
                NodeKind::ScanIn | NodeKind::ScanOut => {}
            }
        }
        stats
    }

    /// Returns a topological order of all nodes (scan-in first).
    ///
    /// Validated networks are acyclic, so this always succeeds for them.
    #[must_use]
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).map(NodeId::new).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &w in &self.succs[v.index()] {
                indeg[w.index()] -= 1;
                if indeg[w.index()] == 0 {
                    queue.push(w);
                }
            }
        }
        order
    }

    /// Checks all structural invariants; returns the first violation found.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] describing the violated invariant: cycles,
    /// unreachable nodes, degree violations, inconsistent multiplexer inputs,
    /// invalid control cells, or zero-length segments.
    pub fn validate(&self) -> Result<(), NetworkError> {
        let n = self.nodes.len();
        // Degree rules and payload checks.
        for (id, node) in self.nodes() {
            match &node.kind {
                NodeKind::ScanIn => {
                    if self.succs[id.index()].is_empty() {
                        return Err(NetworkError::DisconnectedPort(id));
                    }
                    if !self.preds[id.index()].is_empty() {
                        return Err(NetworkError::MultiplePredecessors(id));
                    }
                }
                NodeKind::ScanOut => {
                    if self.preds[id.index()].is_empty() {
                        return Err(NetworkError::DisconnectedPort(id));
                    }
                    if !self.succs[id.index()].is_empty() {
                        return Err(NetworkError::MultipleSuccessors(id));
                    }
                    if self.preds[id.index()].len() > 1 {
                        return Err(NetworkError::MultiplePredecessors(id));
                    }
                }
                NodeKind::Segment(s) => {
                    if s.len == 0 {
                        return Err(NetworkError::EmptySegment(id));
                    }
                    if self.preds[id.index()].len() > 1 {
                        return Err(NetworkError::MultiplePredecessors(id));
                    }
                    if self.succs[id.index()].len() > 1 {
                        return Err(NetworkError::MultipleSuccessors(id));
                    }
                }
                NodeKind::Mux(m) => {
                    if m.inputs.len() < 2 {
                        return Err(NetworkError::TooFewMuxInputs(id));
                    }
                    if m.inputs != self.preds[id.index()] {
                        return Err(NetworkError::InconsistentMuxInputs(id));
                    }
                    if self.succs[id.index()].len() > 1 {
                        return Err(NetworkError::MultipleSuccessors(id));
                    }
                    if let ControlSource::Cell { segment, bit } = m.control {
                        let ok = self
                            .get_node(segment)
                            .and_then(|c| c.kind.as_segment())
                            .is_some_and(|s| bit < s.len);
                        if !ok {
                            return Err(NetworkError::BadControlCell { mux: id, cell: segment });
                        }
                    }
                }
                NodeKind::Fanout => {
                    if self.preds[id.index()].len() > 1 {
                        return Err(NetworkError::MultiplePredecessors(id));
                    }
                }
            }
        }
        // Acyclicity.
        if self.topological_order().len() != n {
            return Err(NetworkError::Cyclic);
        }
        // Reachability: every node lies on some scan-in → scan-out path.
        let fwd = self.reachable_from(self.scan_in);
        let bwd = self.reachable_to(self.scan_out);
        for i in 0..n {
            if !fwd[i] {
                return Err(NetworkError::UnreachableFromScanIn(NodeId::new(i)));
            }
            if !bwd[i] {
                return Err(NetworkError::ScanOutUnreachable(NodeId::new(i)));
            }
        }
        Ok(())
    }

    /// Forward reachability bitmap from `start`.
    #[must_use]
    pub fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        self.reach(start, false)
    }

    /// Backward reachability bitmap to `target` (nodes that can reach it).
    #[must_use]
    pub fn reachable_to(&self, target: NodeId) -> Vec<bool> {
        self.reach(target, true)
    }

    fn reach(&self, start: NodeId, backward: bool) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(v) = stack.pop() {
            let next = if backward { &self.preds[v.index()] } else { &self.succs[v.index()] };
            for &w in next {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            }
        }
        seen
    }
}

/// Incremental builder for [`ScanNetwork`] graphs.
///
/// The builder owns the scan-in/scan-out ports from the start; add segments,
/// multiplexers, and fan-outs, wire them with [`connect`](Self::connect), and
/// call [`finish`](Self::finish) to validate and obtain the network.
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    name: String,
    nodes: Vec<Node>,
    instruments: Vec<Instrument>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    scan_in: NodeId,
    scan_out: NodeId,
}

impl NetworkBuilder {
    /// Creates an empty network with its two ports.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let mut b = Self {
            name: name.into(),
            nodes: Vec::new(),
            instruments: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            scan_in: NodeId::new(0),
            scan_out: NodeId::new(1),
        };
        b.scan_in = b.push(Node::named("scan-in", NodeKind::ScanIn));
        b.scan_out = b.push(Node::named("scan-out", NodeKind::ScanOut));
        b
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(node);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// The primary scan-in port.
    #[must_use]
    pub fn scan_in(&self) -> NodeId {
        self.scan_in
    }

    /// The primary scan-out port.
    #[must_use]
    pub fn scan_out(&self) -> NodeId {
        self.scan_out
    }

    /// Number of nodes added so far (including the two ports).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Adds a named scan segment and returns its id.
    pub fn add_segment(&mut self, name: impl Into<String>, segment: Segment) -> NodeId {
        self.push(Node::named(name, NodeKind::Segment(segment)))
    }

    /// Adds an anonymous scan segment and returns its id.
    pub fn add_anon_segment(&mut self, segment: Segment) -> NodeId {
        self.push(Node::new(NodeKind::Segment(segment)))
    }

    /// Adds a fan-out vertex and returns its id.
    pub fn add_fanout(&mut self, name: impl Into<String>) -> NodeId {
        self.push(Node::named(name, NodeKind::Fanout))
    }

    /// Adds a multiplexer over the given inputs, wiring the input edges, and
    /// returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownNode`] if an input id is out of range
    /// and [`NetworkError::DuplicateEdge`] if an input is listed twice.
    pub fn add_mux(
        &mut self,
        name: impl Into<String>,
        inputs: Vec<NodeId>,
        control: ControlSource,
    ) -> Result<NodeId, NetworkError> {
        for &i in &inputs {
            if i.index() >= self.nodes.len() {
                return Err(NetworkError::UnknownNode(i));
            }
        }
        let id =
            self.push(Node::named(name, NodeKind::Mux(Mux { inputs: inputs.clone(), control })));
        for input in inputs {
            self.add_edge(input, id)?;
        }
        Ok(id)
    }

    /// Registers an instrument on segment `seg` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownNode`] if `seg` is not a segment.
    pub fn add_instrument(
        &mut self,
        name: impl Into<String>,
        seg: NodeId,
        kind: InstrumentKind,
    ) -> Result<InstrumentId, NetworkError> {
        let id = InstrumentId::new(self.instruments.len());
        match self.nodes.get_mut(seg.index()).map(|n| &mut n.kind) {
            Some(NodeKind::Segment(s)) => s.instrument = Some(id),
            _ => return Err(NetworkError::UnknownNode(seg)),
        }
        self.instruments.push(Instrument::named(name, seg, kind));
        Ok(id)
    }

    /// Registers an anonymous instrument on segment `seg` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownNode`] if `seg` is not a segment.
    pub fn add_anon_instrument(
        &mut self,
        seg: NodeId,
        kind: InstrumentKind,
    ) -> Result<InstrumentId, NetworkError> {
        let id = InstrumentId::new(self.instruments.len());
        match self.nodes.get_mut(seg.index()).map(|n| &mut n.kind) {
            Some(NodeKind::Segment(s)) => s.instrument = Some(id),
            _ => return Err(NetworkError::UnknownNode(seg)),
        }
        self.instruments.push(Instrument::new(seg, kind));
        Ok(id)
    }

    /// Connects `from` to `to` with a direct edge.
    ///
    /// Multiplexer inputs are wired by [`add_mux`](Self::add_mux); use this
    /// for all other edges.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownNode`] for out-of-range ids and
    /// [`NetworkError::DuplicateEdge`] if the edge already exists.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> Result<(), NetworkError> {
        if from.index() >= self.nodes.len() {
            return Err(NetworkError::UnknownNode(from));
        }
        if to.index() >= self.nodes.len() {
            return Err(NetworkError::UnknownNode(to));
        }
        self.add_edge(from, to)
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), NetworkError> {
        if self.succs[from.index()].contains(&to) {
            return Err(NetworkError::DuplicateEdge(from, to));
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        Ok(())
    }

    /// Changes the control source of multiplexer `mux` (used to retrofit
    /// SIB-style scan control after the cell has been created).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownNode`] if `mux` is not a multiplexer.
    pub fn set_mux_control(
        &mut self,
        mux: NodeId,
        control: ControlSource,
    ) -> Result<(), NetworkError> {
        match self.nodes.get_mut(mux.index()).map(|n| &mut n.kind) {
            Some(NodeKind::Mux(m)) => {
                m.control = control;
                Ok(())
            }
            _ => Err(NetworkError::UnknownNode(mux)),
        }
    }

    /// Validates the graph and returns the finished network.
    ///
    /// # Errors
    ///
    /// Returns the first invariant violation found; see
    /// [`ScanNetwork::validate`].
    pub fn finish(self) -> Result<ScanNetwork, NetworkError> {
        let net = ScanNetwork {
            name: self.name,
            nodes: self.nodes,
            instruments: self.instruments,
            succs: self.succs,
            preds: self.preds,
            scan_in: self.scan_in,
            scan_out: self.scan_out,
        };
        net.validate()?;
        Ok(net)
    }

    /// Returns the network without running validation.
    ///
    /// Useful in tests that deliberately construct malformed graphs.
    #[must_use]
    pub fn finish_unchecked(self) -> ScanNetwork {
        ScanNetwork {
            name: self.name,
            nodes: self.nodes,
            instruments: self.instruments,
            succs: self.succs,
            preds: self.preds,
            scan_in: self.scan_in,
            scan_out: self.scan_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(lens: &[u32]) -> ScanNetwork {
        let mut b = NetworkBuilder::new("chain");
        let mut prev = b.scan_in();
        for (i, &len) in lens.iter().enumerate() {
            let s = b.add_segment(format!("c{i}"), Segment::new(len));
            b.connect(prev, s).unwrap();
            prev = s;
        }
        let out = b.scan_out();
        b.connect(prev, out).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builds_a_simple_chain() {
        let net = chain(&[4, 2, 8]);
        let stats = net.stats();
        assert_eq!(stats.segments, 3);
        assert_eq!(stats.muxes, 0);
        assert_eq!(stats.scan_cells, 14);
    }

    #[test]
    fn builds_a_parallel_section() {
        let mut b = NetworkBuilder::new("par");
        let f = b.add_fanout("f0");
        let a = b.add_segment("a", Segment::new(3));
        let c = b.add_segment("c", Segment::new(5));
        let si = b.scan_in();
        b.connect(si, f).unwrap();
        b.connect(f, a).unwrap();
        b.connect(f, c).unwrap();
        let m = b.add_mux("m0", vec![a, c], ControlSource::Direct).unwrap();
        let so = b.scan_out();
        b.connect(m, so).unwrap();
        let net = b.finish().unwrap();
        assert_eq!(net.stats().muxes, 1);
        assert_eq!(net.predecessors(m), &[a, c]);
    }

    #[test]
    fn rejects_cycles() {
        // A cycle through a multiplexer satisfies all degree rules: the mux
        // takes `a` as its second input while also (indirectly) driving it.
        let mut b = NetworkBuilder::new("cyc");
        let f = b.add_fanout("f");
        let z = b.add_segment("z", Segment::new(1));
        let a = b.add_segment("a", Segment::new(1));
        let (si, so) = (b.scan_in(), b.scan_out());
        b.connect(si, f).unwrap();
        b.connect(f, z).unwrap();
        b.connect(z, so).unwrap();
        let m = b.add_mux("m", vec![f, a], ControlSource::Direct).unwrap();
        b.connect(m, a).unwrap();
        assert_eq!(b.finish().unwrap_err(), NetworkError::Cyclic);
    }

    #[test]
    fn rejects_unreachable_nodes() {
        let mut b = NetworkBuilder::new("dangling");
        let a = b.add_segment("a", Segment::new(1));
        let (si, so) = (b.scan_in(), b.scan_out());
        b.connect(si, a).unwrap();
        b.connect(a, so).unwrap();
        b.add_segment("orphan", Segment::new(1));
        assert!(matches!(b.finish(), Err(NetworkError::UnreachableFromScanIn(_))));
    }

    #[test]
    fn rejects_zero_length_segment() {
        let mut b = NetworkBuilder::new("zero");
        let a = b.add_segment("a", Segment::new(0));
        let (si, so) = (b.scan_in(), b.scan_out());
        b.connect(si, a).unwrap();
        b.connect(a, so).unwrap();
        assert!(matches!(b.finish(), Err(NetworkError::EmptySegment(_))));
    }

    #[test]
    fn rejects_bad_control_cell() {
        let mut b = NetworkBuilder::new("ctl");
        let f = b.add_fanout("f");
        let a = b.add_segment("a", Segment::new(1));
        let c = b.add_segment("c", Segment::new(1));
        let (si, so) = (b.scan_in(), b.scan_out());
        b.connect(si, f).unwrap();
        b.connect(f, a).unwrap();
        b.connect(f, c).unwrap();
        let m = b.add_mux("m", vec![a, c], ControlSource::Cell { segment: a, bit: 5 }).unwrap();
        b.connect(m, so).unwrap();
        assert!(matches!(b.finish(), Err(NetworkError::BadControlCell { .. })));
    }

    #[test]
    fn instruments_attach_to_segments() {
        let mut b = NetworkBuilder::new("inst");
        let a = b.add_segment("a", Segment::new(4));
        let (si, so) = (b.scan_in(), b.scan_out());
        b.connect(si, a).unwrap();
        b.connect(a, so).unwrap();
        let i = b.add_instrument("temp", a, InstrumentKind::Sensor).unwrap();
        let net = b.finish().unwrap();
        assert_eq!(net.instrument_at(a), Some(i));
        assert_eq!(net.instrument(i).segment(), a);
        assert_eq!(net.instrument_count(), 1);
    }

    #[test]
    fn topological_order_is_complete_and_respects_edges() {
        let net = chain(&[1, 1, 1, 1]);
        let order = net.topological_order();
        assert_eq!(order.len(), net.node_count());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (id, _) in net.nodes() {
            for &s in net.successors(id) {
                assert!(pos[&id] < pos[&s]);
            }
        }
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = NetworkBuilder::new("dup");
        let a = b.add_segment("a", Segment::new(1));
        let si = b.scan_in();
        b.connect(si, a).unwrap();
        assert_eq!(b.connect(si, a), Err(NetworkError::DuplicateEdge(si, a)));
    }
}
