//! Error types for network construction, validation, and simulation.

use core::fmt;

use crate::ids::NodeId;

/// Error raised while building or validating a [`ScanNetwork`](crate::ScanNetwork).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A referenced node does not exist in the network.
    UnknownNode(NodeId),
    /// The network graph contains a cycle.
    Cyclic,
    /// A node is not reachable from the primary scan-in.
    UnreachableFromScanIn(NodeId),
    /// The primary scan-out is not reachable from a node.
    ScanOutUnreachable(NodeId),
    /// A non-multiplexer node has more than one predecessor.
    MultiplePredecessors(NodeId),
    /// A non-fan-out node drives more than one successor.
    MultipleSuccessors(NodeId),
    /// A multiplexer has fewer than two inputs.
    TooFewMuxInputs(NodeId),
    /// A multiplexer's input list disagrees with the graph predecessors.
    InconsistentMuxInputs(NodeId),
    /// A scan-controlled multiplexer references a control cell that is not a
    /// segment, or a bit index beyond the segment length.
    BadControlCell {
        /// The multiplexer whose control is invalid.
        mux: NodeId,
        /// The referenced control node.
        cell: NodeId,
    },
    /// A segment has zero length.
    EmptySegment(NodeId),
    /// The scan-in port drives no node or the scan-out port has no driver.
    DisconnectedPort(NodeId),
    /// An edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// A parallel composition contains more than one pure bypass wire, which
    /// makes the multiplexer inputs indistinguishable.
    DuplicateWire(NodeId),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode(n) => write!(f, "unknown node {n}"),
            Self::Cyclic => write!(f, "network graph contains a cycle"),
            Self::UnreachableFromScanIn(n) => {
                write!(f, "node {n} is not reachable from the scan-in port")
            }
            Self::ScanOutUnreachable(n) => {
                write!(f, "the scan-out port is not reachable from node {n}")
            }
            Self::MultiplePredecessors(n) => {
                write!(f, "non-multiplexer node {n} has more than one predecessor")
            }
            Self::MultipleSuccessors(n) => {
                write!(f, "non-fan-out node {n} drives more than one successor")
            }
            Self::TooFewMuxInputs(n) => write!(f, "multiplexer {n} has fewer than two inputs"),
            Self::InconsistentMuxInputs(n) => {
                write!(f, "multiplexer {n} input list disagrees with graph predecessors")
            }
            Self::BadControlCell { mux, cell } => {
                write!(f, "multiplexer {mux} has an invalid control cell reference {cell}")
            }
            Self::EmptySegment(n) => write!(f, "segment {n} has zero length"),
            Self::DisconnectedPort(n) => write!(f, "port {n} is disconnected"),
            Self::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            Self::DuplicateWire(n) => {
                write!(f, "parallel composition at {n} has more than one bypass wire")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Error raised while configuring or running the scan simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A multiplexer select value is out of range for its input count.
    SelectOutOfRange {
        /// The multiplexer being configured.
        mux: NodeId,
        /// The requested select value.
        select: usize,
        /// The number of inputs of the multiplexer.
        inputs: usize,
    },
    /// The supplied shift data does not match the active path length.
    ShiftLengthMismatch {
        /// Number of bits supplied.
        got: usize,
        /// Active path length in scan cells.
        expected: usize,
    },
    /// The referenced node is not a segment.
    NotASegment(NodeId),
    /// The referenced node is not a multiplexer.
    NotAMux(NodeId),
    /// The active scan path could not be traced (e.g. a select loops through
    /// an inconsistent configuration).
    PathTraceFailed(NodeId),
    /// The requested instrument does not exist.
    UnknownInstrument(crate::ids::InstrumentId),
    /// Instrument data does not match the width of the hosting segment.
    DataWidthMismatch {
        /// The instrument being loaded.
        instrument: crate::ids::InstrumentId,
        /// Number of bits supplied.
        got: usize,
        /// Width of the instrument's segment in scan cells.
        expected: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SelectOutOfRange { mux, select, inputs } => write!(
                f,
                "select value {select} out of range for multiplexer {mux} with {inputs} inputs"
            ),
            Self::ShiftLengthMismatch { got, expected } => {
                write!(f, "shift data has {got} bits but the active path has {expected} cells")
            }
            Self::NotASegment(n) => write!(f, "node {n} is not a segment"),
            Self::NotAMux(n) => write!(f, "node {n} is not a multiplexer"),
            Self::PathTraceFailed(n) => write!(f, "active path trace failed at node {n}"),
            Self::UnknownInstrument(i) => write!(f, "unknown instrument {i}"),
            Self::DataWidthMismatch { instrument, got, expected } => write!(
                f,
                "instrument {instrument} data has {got} bits but its segment has {expected} cells"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            NetworkError::Cyclic.to_string(),
            NetworkError::UnknownNode(NodeId::new(3)).to_string(),
            SimError::NotASegment(NodeId::new(1)).to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "message {m:?} should not end with a period");
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(NetworkError::Cyclic);
        takes_error(SimError::PathTraceFailed(NodeId::new(0)));
    }
}
