//! Strongly typed identifiers for network entities.
//!
//! All identifiers are small `u32`-backed newtypes ([C-NEWTYPE]) indexing into
//! the arenas owned by a [`ScanNetwork`](crate::ScanNetwork). They are `Copy`
//! and order/hash like their index, which makes them usable as keys in dense
//! vectors (via [`NodeId::index`]) as well as in hash maps.

use core::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// Identifiers are normally handed out by the owning arena;
            /// constructing one manually is useful for tests and for dense
            /// table indexing.
            #[must_use]
            pub const fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the raw index backing this identifier.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a vertex (scan primitive, fan-out, or port) in a
    /// [`ScanNetwork`](crate::ScanNetwork).
    NodeId,
    "n"
);

id_type!(
    /// Identifier of an embedded instrument attached to a scan segment.
    InstrumentId,
    "i"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_index() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn debug_and_display_are_prefixed() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{}", InstrumentId::new(7)), "i7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&InstrumentId::new(9)).unwrap();
        assert_eq!(json, "9");
        let back: InstrumentId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, InstrumentId::new(9));
    }
}
