//! Scan primitives: segments, multiplexers, fan-outs, and ports.

use serde::{Deserialize, Serialize};

use crate::ids::{InstrumentId, NodeId};

/// How a scan multiplexer's address (select) port is driven.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlSource {
    /// The select is driven by external control logic (e.g. TAP-level
    /// signals). The simulator exposes it as directly writable state.
    Direct,
    /// The select is driven by the update stage of a scan cell, as in a
    /// Segment Insertion Bit (SIB): `bit` of the named segment.
    Cell {
        /// The control segment.
        segment: NodeId,
        /// Bit position within the control segment (0 = first shifted out).
        bit: u32,
    },
}

/// A scan segment: a shift register of one or more scan cells, optionally
/// hosting an embedded instrument.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Number of scan cells (≥ 1).
    pub len: u32,
    /// Instrument observed/controlled through this segment, if any.
    pub instrument: Option<InstrumentId>,
    /// Whether this segment is the 1-bit control cell of a SIB.
    pub sib_cell: bool,
}

impl Segment {
    /// Creates a plain segment of `len` cells.
    #[must_use]
    pub fn new(len: u32) -> Self {
        Self { len, instrument: None, sib_cell: false }
    }

    /// Creates a segment hosting an instrument.
    #[must_use]
    pub fn with_instrument(len: u32, instrument: InstrumentId) -> Self {
        Self { len, instrument: Some(instrument), sib_cell: false }
    }

    /// Creates a 1-bit SIB control cell.
    #[must_use]
    pub fn sib_cell() -> Self {
        Self { len: 1, instrument: None, sib_cell: true }
    }
}

/// A scan multiplexer joining two or more alternative branches.
///
/// `inputs` lists the driving nodes in select order: select value `k`
/// propagates data from `inputs[k]`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mux {
    /// Ordered input drivers; `inputs[k]` is selected by address value `k`.
    pub inputs: Vec<NodeId>,
    /// How the select port is driven.
    pub control: ControlSource,
}

impl Mux {
    /// Creates a directly controlled multiplexer over the given inputs.
    #[must_use]
    pub fn new(inputs: Vec<NodeId>) -> Self {
        Self { inputs, control: ControlSource::Direct }
    }

    /// Creates a scan-cell controlled multiplexer over the given inputs.
    #[must_use]
    pub fn scan_controlled(inputs: Vec<NodeId>, segment: NodeId, bit: u32) -> Self {
        Self { inputs, control: ControlSource::Cell { segment, bit } }
    }

    /// Number of selectable inputs.
    #[must_use]
    pub fn fan_in(&self) -> usize {
        self.inputs.len()
    }
}

/// A vertex of the RSN graph (§III, Fig. 2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NodeKind {
    /// The primary scan-in port (unique).
    ScanIn,
    /// The primary scan-out port (unique).
    ScanOut,
    /// A scan segment.
    Segment(Segment),
    /// A scan multiplexer.
    Mux(Mux),
    /// A fan-out stem distributing one driver to several branches.
    Fanout,
}

impl NodeKind {
    /// Returns `true` for segments.
    #[must_use]
    pub fn is_segment(&self) -> bool {
        matches!(self, Self::Segment(_))
    }

    /// Returns `true` for multiplexers.
    #[must_use]
    pub fn is_mux(&self) -> bool {
        matches!(self, Self::Mux(_))
    }

    /// Returns `true` for scan primitives subject to permanent faults in the
    /// paper's fault model (segments and multiplexers; SIBs are composed of
    /// one of each).
    #[must_use]
    pub fn is_primitive(&self) -> bool {
        self.is_segment() || self.is_mux()
    }

    /// Returns the segment payload, if this node is a segment.
    #[must_use]
    pub fn as_segment(&self) -> Option<&Segment> {
        match self {
            Self::Segment(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the multiplexer payload, if this node is a multiplexer.
    #[must_use]
    pub fn as_mux(&self) -> Option<&Mux> {
        match self {
            Self::Mux(m) => Some(m),
            _ => None,
        }
    }
}

/// A named vertex with its payload.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Optional human-readable name (kept for benchmark fidelity and
    /// diagnostics; anonymous nodes display as their id).
    pub name: Option<String>,
    /// The vertex payload.
    pub kind: NodeKind,
}

impl Node {
    /// Creates an anonymous node.
    #[must_use]
    pub fn new(kind: NodeKind) -> Self {
        Self { name: None, kind }
    }

    /// Creates a named node.
    #[must_use]
    pub fn named(name: impl Into<String>, kind: NodeKind) -> Self {
        Self { name: Some(name.into()), kind }
    }

    /// Returns a display label: the name if present, otherwise the id.
    #[must_use]
    pub fn label(&self, id: NodeId) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => id.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sib_cell_is_one_bit() {
        let c = Segment::sib_cell();
        assert_eq!(c.len, 1);
        assert!(c.sib_cell);
        assert!(c.instrument.is_none());
    }

    #[test]
    fn primitive_classification() {
        assert!(NodeKind::Segment(Segment::new(3)).is_primitive());
        assert!(NodeKind::Mux(Mux::new(vec![NodeId::new(0), NodeId::new(1)])).is_primitive());
        assert!(!NodeKind::Fanout.is_primitive());
        assert!(!NodeKind::ScanIn.is_primitive());
        assert!(!NodeKind::ScanOut.is_primitive());
    }

    #[test]
    fn mux_fan_in_counts_inputs() {
        let m = Mux::new(vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(m.fan_in(), 3);
        assert_eq!(m.control, ControlSource::Direct);
    }

    #[test]
    fn scan_controlled_mux_references_cell() {
        let m = Mux::scan_controlled(vec![NodeId::new(0), NodeId::new(1)], NodeId::new(9), 0);
        assert_eq!(m.control, ControlSource::Cell { segment: NodeId::new(9), bit: 0 });
    }

    #[test]
    fn node_label_prefers_name() {
        let n = Node::named("m0", NodeKind::Fanout);
        assert_eq!(n.label(NodeId::new(7)), "m0");
        let anon = Node::new(NodeKind::Fanout);
        assert_eq!(anon.label(NodeId::new(7)), "n7");
    }
}
