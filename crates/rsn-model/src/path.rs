//! Multiplexer configurations and active scan paths.
//!
//! A [`Config`] assigns a select value to every scan multiplexer. Under a
//! configuration, exactly one **active scan path** runs from the scan-in to
//! the scan-out port; it is traced *backward* from the scan-out, following
//! the selected input at every multiplexer (forward tracing through fan-outs
//! would be ambiguous).

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::ids::NodeId;
use crate::network::ScanNetwork;
use crate::primitive::NodeKind;

/// A select-value assignment for every multiplexer of a network.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    /// Dense per-node select values; meaningful only at multiplexer indices.
    selects: Vec<u16>,
}

impl Config {
    /// Creates the all-zero configuration (every multiplexer selects port 0).
    #[must_use]
    pub fn new(net: &ScanNetwork) -> Self {
        Self { selects: vec![0; net.node_count()] }
    }

    /// The select value of multiplexer `mux`.
    #[must_use]
    pub fn select(&self, mux: NodeId) -> u16 {
        self.selects[mux.index()]
    }

    /// Sets the select value of multiplexer `mux`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotAMux`] if `mux` is not a multiplexer and
    /// [`SimError::SelectOutOfRange`] if `value` exceeds its input count.
    pub fn set_select(
        &mut self,
        net: &ScanNetwork,
        mux: NodeId,
        value: u16,
    ) -> Result<(), SimError> {
        let m = net.node(mux).kind.as_mux().ok_or(SimError::NotAMux(mux))?;
        if usize::from(value) >= m.fan_in() {
            return Err(SimError::SelectOutOfRange {
                mux,
                select: usize::from(value),
                inputs: m.fan_in(),
            });
        }
        self.selects[mux.index()] = value;
        Ok(())
    }

    /// Enumerates every configuration of `net` (the cartesian product of all
    /// multiplexer select values).
    ///
    /// The number of configurations is exponential in the multiplexer count;
    /// intended for exhaustive oracles on small networks.
    pub fn enumerate(net: &ScanNetwork) -> ConfigIter<'_> {
        let muxes: Vec<(NodeId, u16)> = net
            .muxes()
            .map(|m| (m, net.node(m).kind.as_mux().expect("mux").fan_in() as u16))
            .collect();
        ConfigIter { net, muxes, current: Some(Config::new(net)) }
    }
}

/// Iterator over all configurations of a network; see [`Config::enumerate`].
#[derive(Debug)]
pub struct ConfigIter<'a> {
    net: &'a ScanNetwork,
    muxes: Vec<(NodeId, u16)>,
    current: Option<Config>,
}

impl Iterator for ConfigIter<'_> {
    type Item = Config;

    fn next(&mut self) -> Option<Config> {
        let out = self.current.clone()?;
        // Odometer increment over the mux select values.
        let mut next = out.clone();
        let mut done = true;
        for &(m, fan_in) in &self.muxes {
            let v = next.selects[m.index()];
            if v + 1 < fan_in {
                next.selects[m.index()] = v + 1;
                done = false;
                break;
            }
            next.selects[m.index()] = 0;
        }
        self.current = if done { None } else { Some(next) };
        let _ = self.net;
        Some(out)
    }
}

/// The active scan path under a configuration: the ordered chain of vertices
/// from scan-in to scan-out, with per-segment scan-cell positions.
///
/// Cell positions run from `0` (adjacent to scan-in) to `bit_len() - 1`
/// (adjacent to scan-out); one shift cycle moves every bit one position up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanPath {
    nodes: Vec<NodeId>,
    segments: Vec<NodeId>,
    seg_start: Vec<usize>,
    bit_len: usize,
}

impl ScanPath {
    /// All vertices on the path in scan order, including ports and fan-outs.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The segments on the path in scan order.
    #[must_use]
    pub fn segments(&self) -> &[NodeId] {
        &self.segments
    }

    /// Total number of scan cells on the path.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Returns `true` if `node` lies on the path.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// The cell-position range occupied by segment `seg`, or `None` when the
    /// segment is not on the path.
    #[must_use]
    pub fn segment_range(&self, seg: NodeId) -> Option<core::ops::Range<usize>> {
        let i = self.segments.iter().position(|&s| s == seg)?;
        let start = self.seg_start[i];
        let end = self.seg_start.get(i + 1).copied().unwrap_or(self.bit_len);
        Some(start..end)
    }

    /// Converts desired register contents (indexed by cell position) into the
    /// input bit sequence that loads them: the bit shifted in at cycle `t`
    /// ends at position `bit_len - 1 - t` after `bit_len` shifts.
    #[must_use]
    pub fn to_shift_sequence(&self, desired: &[bool]) -> Vec<bool> {
        desired.iter().rev().copied().collect()
    }

    /// Converts the bit sequence observed at scan-out over `bit_len` shifts
    /// back into register contents indexed by cell position.
    #[must_use]
    pub fn from_shift_sequence(&self, observed: &[bool]) -> Vec<bool> {
        observed.iter().rev().copied().collect()
    }
}

/// Traces the active scan path of `net` under `config`.
///
/// # Errors
///
/// Returns [`SimError::PathTraceFailed`] if the backward trace encounters a
/// vertex without a driver (only possible on unvalidated networks) and
/// [`SimError::SelectOutOfRange`] if a select exceeds a multiplexer's inputs.
pub fn active_path(net: &ScanNetwork, config: &Config) -> Result<ScanPath, SimError> {
    active_path_with(net, |m| config.select(m))
}

/// Traces the active scan path with an arbitrary select function (used by the
/// simulator to apply stuck-at overrides and scan-cell driven controls).
///
/// # Errors
///
/// Same as [`active_path`].
pub fn active_path_with(
    net: &ScanNetwork,
    mut select: impl FnMut(NodeId) -> u16,
) -> Result<ScanPath, SimError> {
    let mut rev = vec![net.scan_out()];
    let mut cur = net.scan_out();
    let limit = net.node_count() + 1;
    while cur != net.scan_in() {
        let prev = match &net.node(cur).kind {
            NodeKind::Mux(m) => {
                let sel = usize::from(select(cur));
                *m.inputs.get(sel).ok_or(SimError::SelectOutOfRange {
                    mux: cur,
                    select: sel,
                    inputs: m.fan_in(),
                })?
            }
            _ => *net.predecessors(cur).first().ok_or(SimError::PathTraceFailed(cur))?,
        };
        rev.push(prev);
        cur = prev;
        if rev.len() > limit {
            return Err(SimError::PathTraceFailed(cur));
        }
    }
    rev.reverse();
    let mut segments = Vec::new();
    let mut seg_start = Vec::new();
    let mut bit_len = 0usize;
    for &n in &rev {
        if let NodeKind::Segment(s) = &net.node(n).kind {
            segments.push(n);
            seg_start.push(bit_len);
            bit_len += s.len as usize;
        }
    }
    Ok(ScanPath { nodes: rev, segments, seg_start, bit_len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Structure;

    fn two_branch() -> (ScanNetwork, NodeId) {
        let s = Structure::series(vec![
            Structure::seg("head", 2),
            Structure::parallel(vec![Structure::seg("a", 3), Structure::seg("b", 5)], "m0"),
            Structure::seg("tail", 1),
        ]);
        let (net, _) = s.build("t").unwrap();
        let m = net.muxes().next().unwrap();
        (net, m)
    }

    #[test]
    fn traces_selected_branch() {
        let (net, m) = two_branch();
        let mut cfg = Config::new(&net);
        let path = active_path(&net, &cfg).unwrap();
        let names: Vec<_> =
            path.segments().iter().map(|&s| net.node(s).name.clone().unwrap()).collect();
        assert_eq!(names, ["head", "a", "tail"]);
        assert_eq!(path.bit_len(), 6);

        cfg.set_select(&net, m, 1).unwrap();
        let path = active_path(&net, &cfg).unwrap();
        let names: Vec<_> =
            path.segments().iter().map(|&s| net.node(s).name.clone().unwrap()).collect();
        assert_eq!(names, ["head", "b", "tail"]);
        assert_eq!(path.bit_len(), 8);
    }

    #[test]
    fn segment_ranges_partition_the_path() {
        let (net, _) = two_branch();
        let cfg = Config::new(&net);
        let path = active_path(&net, &cfg).unwrap();
        let mut covered = vec![false; path.bit_len()];
        for &s in path.segments() {
            for i in path.segment_range(s).unwrap() {
                assert!(!covered[i], "overlapping ranges");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn off_path_segment_has_no_range() {
        let (net, _) = two_branch();
        let cfg = Config::new(&net);
        let path = active_path(&net, &cfg).unwrap();
        let b = net.segments().find(|&s| net.node(s).name.as_deref() == Some("b")).unwrap();
        assert!(!path.contains(b));
        assert_eq!(path.segment_range(b), None);
    }

    #[test]
    fn set_select_validates() {
        let (net, m) = two_branch();
        let mut cfg = Config::new(&net);
        assert!(cfg.set_select(&net, m, 2).is_err());
        let seg = net.segments().next().unwrap();
        assert!(cfg.set_select(&net, seg, 0).is_err());
    }

    #[test]
    fn enumerate_covers_all_products() {
        let s = Structure::series(vec![
            Structure::parallel(vec![Structure::seg("a", 1), Structure::seg("b", 1)], "m0"),
            Structure::parallel(
                vec![Structure::seg("c", 1), Structure::seg("d", 1), Structure::seg("e", 1)],
                "m1",
            ),
        ]);
        let (net, _) = s.build("t").unwrap();
        let configs: Vec<_> = Config::enumerate(&net).collect();
        assert_eq!(configs.len(), 6);
        let unique: std::collections::HashSet<_> =
            configs.iter().map(|c| format!("{c:?}")).collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn shift_sequence_roundtrip() {
        let (net, _) = two_branch();
        let path = active_path(&net, &Config::new(&net)).unwrap();
        let desired: Vec<bool> = (0..path.bit_len()).map(|i| i % 2 == 0).collect();
        let seq = path.to_shift_sequence(&desired);
        assert_eq!(path.from_shift_sequence(&seq), desired);
    }
}
