//! Convenience re-exports for building and simulating scan networks.
//!
//! ```
//! use rsn_model::prelude::*;
//! ```
//!
//! brings the structure DSL ([`Structure`], [`InstrumentKind`]), the network
//! types and the fault model into scope. Pair it with `robust_rsn::prelude`
//! for the analysis side.

pub use crate::csr::Csr;
pub use crate::error::{NetworkError, SimError};
pub use crate::fault::{enumerate_single_faults, Fault, FaultKind};
pub use crate::ids::{InstrumentId, NodeId};
pub use crate::instrument::{Instrument, InstrumentKind};
pub use crate::network::{NetworkBuilder, NetworkStats, ScanNetwork};
pub use crate::path::{active_path, Config, ScanPath};
pub use crate::patterns::{AccessKind, AccessPattern};
pub use crate::primitive::{ControlSource, Mux, Node, NodeKind, Segment};
pub use crate::sim::Simulator;
pub use crate::structure::{BuiltStructure, InstrumentSpec, MuxSpec, SegmentSpec, Structure};
